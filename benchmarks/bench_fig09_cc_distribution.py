"""Figure 9: distribution of cardinalities in the WLc constraint set.

The paper plots a histogram (log10 scale) of the 351 CC cardinalities derived
from the complex TPC-DS workload, spanning a few tuples up to ~1e9 rows at
the 100 GB scale.  We reproduce the same histogram after scaling the measured
cardinalities up to the nominal 100 GB configuration via the CODD path.
"""

from __future__ import annotations

from repro.codd.scaling import scale_constraints
from benchmarks.conftest import FACT_SCALE, QUICK


def test_fig09_cc_cardinality_distribution(benchmark, tpcds_env, bench):
    ccs = tpcds_env["wlc"]
    nominal = scale_constraints(ccs, 1.0 / FACT_SCALE, name="WLc@100GB")

    with bench.time("histogram_seconds"):
        histogram = nominal.cardinality_histogram()
    benchmark(nominal.cardinality_histogram)

    summary = nominal.summary()
    bench.record("cc_count", summary["count"], unit="constraints",
                 direction="info")
    bench.record("max_cardinality", summary["max"], unit="tuples",
                 direction="info")
    print("\n[Figure 9] WLc cardinality-constraint distribution (log10 bins)")
    print(f"  constraints: {summary['count']}, queries: {summary['num_queries']}, "
          f"cardinalities {summary['min']} .. {summary['max']:,}")
    for lo, count in zip(histogram["bin_edges"], histogram["counts"]):
        print(f"  10^{lo:>4.1f}+ : {'#' * int(count)} ({count})")

    assert summary["count"] >= (100 if QUICK else 300)   # paper: 351 CCs
    assert summary["max"] >= 10**7            # wide dynamic range after scaling
    assert sum(histogram["counts"]) == summary["count"]
