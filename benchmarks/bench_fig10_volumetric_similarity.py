"""Figure 10: quality of volumetric similarity, Hydra vs DataSynth (WLs).

The paper plots, for the simplified workload WLs, the percentage of CCs whose
relative error stays within a given bound: Hydra satisfies ~90% exactly and
everything within ~10%, whereas DataSynth needs up to ~60% error for full
coverage and also produces negative errors (missing rows).
"""

from __future__ import annotations

import pytest

from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.metrics.similarity import evaluate_on_database, evaluate_on_summary
from repro.tuplegen.generator import materialize_database

THRESHOLDS = [0.0, 0.01, 0.05, 0.10, 0.20, 0.40, 0.60, 1.00]


def test_fig10_volumetric_similarity(benchmark, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wls"]

    hydra_result = benchmark(lambda: Hydra(schema).build_summary(ccs))
    # total_seconds is the pipeline's own end-to-end wall clock (one
    # perf_counter span, no per-view summation).
    bench.record_seconds("hydra_build_seconds", hydra_result.total_seconds)
    hydra_report = evaluate_on_summary(ccs, hydra_result.summary, schema)

    try:
        datasynth_result = DataSynth(schema, DataSynthConfig(seed=3)).generate(ccs)
        datasynth_report = evaluate_on_database(ccs, datasynth_result.database)
    except LPTooLargeError:  # pragma: no cover - depends on workload draw
        datasynth_report = None

    print("\n[Figure 10] % of CCs within a relative error bound (WLs)")
    print("  error bound   Hydra     DataSynth")
    for threshold in THRESHOLDS:
        hydra_pct = 100.0 * hydra_report.fraction_within(threshold)
        ds_pct = (100.0 * datasynth_report.fraction_within(threshold)
                  if datasynth_report else float("nan"))
        print(f"  {threshold:>10.2f}   {hydra_pct:6.1f}%   {ds_pct:6.1f}%")
    bench.record("fraction_exact", hydra_report.fraction_within(0.0),
                 direction="higher", tolerance=0.02)
    bench.record("fraction_within_10pct", hydra_report.fraction_within(0.10),
                 direction="higher", tolerance=0.02)
    bench.record("fraction_negative", hydra_report.fraction_negative(),
                 direction="lower")
    print(f"  Hydra negative-error CCs    : {hydra_report.fraction_negative():.1%}")
    if datasynth_report:
        print(f"  DataSynth negative-error CCs: {datasynth_report.fraction_negative():.1%}")

    # Shape checks: Hydra dominates DataSynth at every bound and produces no
    # negative errors (only additive integrity tuples).
    assert hydra_report.fraction_negative() == 0.0
    if datasynth_report is not None:
        for threshold in THRESHOLDS:
            assert hydra_report.fraction_within(threshold) >= \
                datasynth_report.fraction_within(threshold) - 0.05
