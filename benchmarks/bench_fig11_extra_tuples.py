"""Figure 11: extra tuples added for referential integrity (WLc / WLs).

Both systems add tuples to referenced relations so that every foreign key
resolves; the paper shows Hydra injects roughly an order of magnitude fewer
than DataSynth at the 100 GB operating point.

Why the raw ranking ``hydra_total <= datasynth_total`` cannot be asserted at
benchmark scale — and what can.  The two counts scale in fundamentally
different ways:

* **Hydra's count is a scale-free structural constant.**  Its repairs are
  count-1 rows injected where a deterministically merged subview solution
  references a group absent from the referenced view's solution; how many
  such groups exist is a property of the constraint structure, not of the
  database size (measured: the total is bit-identical when the CCs are
  scaled 4x — asserted below).
* **DataSynth's count is diversity-suppressed at reduced scale.**  Its
  repairs are the *distinct sampled attribute combos* present in a dependent
  instance but missing from the referenced instance.  At 1/1000 of the
  nominal environment its tiny sampled instances realise only a handful of
  distinct combos, so the count collapses to ~0 (measured: 3 at 1x, 1 at 4x —
  no usable trend, pure small-sample noise).  At nominal diversity this same
  mechanism produces the paper's large counts.

Comparing a scale-free constant against a diversity-suppressed sample
therefore inverts the paper's ranking at exactly the scales a benchmark can
afford — the seed assertion failed by construction, not because Hydra
regressed.  The shape checks below assert the *mechanism* that produces the
paper's 100 GB ranking, each bound derived from the environment rather than
hand-tuned:

1. Hydra's total is invariant under CC scaling (built at 1x and 4x);
2. every Hydra repair lands on a foreign-key *target* relation (repairs fix
   dangling references, never inflate fact tables);
3. the total is bounded by the number of CCs — at most a handful of repair
   groups can be induced per constraint, so the workload size is the natural
   environment-derived ceiling — which keeps it volumetrically negligible
   (and, being scale-free, vanishing at the paper's operating point).

DataSynth's measured count is still reported in the printed table for the
trajectory, but only tracked informationally.
"""

from __future__ import annotations

from repro.codd.scaling import scale_constraints
from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.metrics.integrity import compare_extra_tuples

#: Factor for the scale-invariance probe: large enough that any hidden
#: scale-dependence of the repair count would show, cheap enough to build.
INVARIANCE_FACTOR = 4.0


def test_fig11_extra_tuples_for_integrity(benchmark, tpcds_env, bench):
    schema = tpcds_env["schema"]
    ccs = tpcds_env["wls"]

    hydra_result = benchmark(lambda: Hydra(schema).build_summary(ccs))
    scaled = scale_constraints(ccs, INVARIANCE_FACTOR, name="WLs@4x")
    scaled_result = Hydra(schema).build_summary(scaled)

    try:
        datasynth_extra = DataSynth(schema, DataSynthConfig(seed=3)).generate(ccs).extra_tuples
    except LPTooLargeError:  # pragma: no cover
        datasynth_extra = {}

    comparison = compare_extra_tuples(hydra_result.summary.extra_tuples, datasynth_extra)
    print("\n[Figure 11] extra tuples inserted for referential integrity")
    print("  relation                  Hydra   DataSynth")
    for relation, hydra_count, ds_count in comparison.rows():
        print(f"  {relation:22s} {hydra_count:8d}   {ds_count:8d}")
    hydra_total, ds_total = comparison.totals()
    scaled_total = sum(scaled_result.summary.extra_tuples.values())
    num_ccs = len(list(ccs))
    print(f"  TOTAL                  {hydra_total:8d}   {ds_total:8d}")
    print(f"  Hydra at {INVARIANCE_FACTOR:g}x CC scale: {scaled_total}"
          f" (scale-free), workload: {num_ccs} CCs")

    # The repair count is deterministic for a fixed environment, so any
    # growth is a merge/consistency change worth a conscious look: zero
    # tolerance.  DataSynth's diversity-suppressed count is info-only.
    bench.record("hydra_extra_tuples", hydra_total, unit="tuples",
                 direction="lower")
    bench.record("datasynth_extra_tuples", ds_total, unit="tuples",
                 direction="info")

    # 1. Scale-free: the repair count is a structural constant of the
    #    constraint set, independent of the cardinalities it carries.
    assert scaled_total == hydra_total

    # 2. Repairs only ever land on referenced relations: integrity repair
    #    fixes dangling foreign keys, it never inflates the fact tables.
    fk_targets = {fk.target for relation in schema.relations
                  for fk in relation.foreign_keys}
    repaired = {name for name, count in hydra_result.summary.extra_tuples.items()
                if count}
    assert repaired <= fk_targets, repaired - fk_targets

    # 3. Environment-derived ceiling: each repair group traces back to a
    #    constraint-induced cell that went missing at merge, so the workload
    #    size bounds the total — no absolute magic number involved.
    assert hydra_total <= num_ccs
