"""Figure 11: extra tuples added for referential integrity (WLc / WLs).

Both systems add tuples to referenced relations so that every foreign key
resolves; the paper shows Hydra injects roughly an order of magnitude fewer
than DataSynth because its deterministic view solutions diverge less across
views than DataSynth's sampled instances.
"""

from __future__ import annotations

from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.metrics.integrity import compare_extra_tuples


def test_fig11_extra_tuples_for_integrity(benchmark, tpcds_env):
    schema = tpcds_env["schema"]
    ccs = tpcds_env["wls"]

    hydra_result = benchmark(lambda: Hydra(schema).build_summary(ccs))

    try:
        datasynth_extra = DataSynth(schema, DataSynthConfig(seed=3)).generate(ccs).extra_tuples
    except LPTooLargeError:  # pragma: no cover
        datasynth_extra = {}

    comparison = compare_extra_tuples(hydra_result.summary.extra_tuples, datasynth_extra)
    print("\n[Figure 11] extra tuples inserted for referential integrity")
    print("  relation                  Hydra   DataSynth")
    for relation, hydra_count, ds_count in comparison.rows():
        print(f"  {relation:22s} {hydra_count:8d}   {ds_count:8d}")
    hydra_total, ds_total = comparison.totals()
    print(f"  TOTAL                  {hydra_total:8d}   {ds_total:8d}")

    # Shape check: Hydra needs no more extra tuples than DataSynth overall.
    if ds_total:
        assert hydra_total <= ds_total
