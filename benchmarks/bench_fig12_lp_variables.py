"""Figure 12: number of LP variables per relation, Hydra vs DataSynth (WLc).

The paper reports reductions of many orders of magnitude: e.g. catalog_sales
drops from ~5.5 million grid variables to ~1620 regions, and item from ~1e11
to ~3700.  We reproduce the per-relation comparison; grid counts are computed
arithmetically so astronomically large formulations are reported rather than
materialised.
"""

from __future__ import annotations

from benchmarks.conftest import QUICK
from repro.metrics.lpsize import compare_lp_sizes


def test_fig12_lp_variables_per_relation(benchmark, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wlc"]

    with bench.time("formulate_seconds"):
        comparison = compare_lp_sizes(schema, ccs)
    benchmark(lambda: compare_lp_sizes(schema, ccs))

    print("\n[Figure 12] LP variables per relation (WLc)")
    print("  relation                  region (Hydra)    grid (DataSynth)    reduction")
    for relation, region, grid, reduction in comparison.rows():
        print(f"  {relation:22s} {region:>14,d} {grid:>19,.0f} {reduction:>12,.0f}x")

    region_total = comparison.total("region")
    grid_total = comparison.total("grid")
    print(f"  TOTAL                  {region_total:>14,d} {grid_total:>19,.0f}")

    # The region formulation size is deterministic for a fixed environment:
    # any growth is a formulation change and should be a conscious baseline
    # refresh, hence zero tolerance.
    bench.record("region_variables_total", region_total, unit="vars",
                 direction="lower")
    bench.record("grid_variables_total", grid_total, unit="vars",
                 direction="info")
    bench.record("max_region_variables_per_relation",
                 max(comparison.region.values()), unit="vars", direction="lower")

    # Shape checks: the region formulation is consistently smaller (by orders
    # of magnitude for the widest views at full constant diversity) and every
    # relation stays within a few thousand variables (paper: <= ~3700).
    assert grid_total > region_total
    widest_reduction = max(comparison.reduction_factor(r) for r in comparison.relations())
    assert widest_reduction >= (2 if QUICK else 5)
    assert max(comparison.region.values()) <= 20_000
