"""Figure 13 (table): LP processing time for WLc and WLs.

In the paper, DataSynth's grid formulation crashes the solver on WLc and
takes ~50 minutes on WLs, while Hydra solves WLc in 58 s and WLs in 13 s.  We
reproduce the four cells of that table: Hydra's LP time on both workloads,
DataSynth's on WLs, and the "crash" (LPTooLargeError) on WLc.
"""

from __future__ import annotations

from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.metrics.timing import Timer


def test_fig13_lp_processing_time(benchmark, tpcds_env):
    schema = tpcds_env["schema"]
    wlc, wls = tpcds_env["wlc"], tpcds_env["wls"]

    hydra_wlc = benchmark(lambda: Hydra(schema).build_summary(wlc))
    hydra_wlc_time = hydra_wlc.lp_seconds()

    with Timer() as hydra_wls_timer:
        Hydra(schema).build_summary(wls)

    # DataSynth on WLc: the grid formulation exceeds what the solver can take
    # (the paper reports an outright solver crash); we detect it via the
    # arithmetic variable count instead of materialising the doomed LP.
    wlc_grid_counts = DataSynth(schema).count_lp_variables(wlc)
    datasynth_wlc = "crash" if max(wlc_grid_counts.values()) > 100_000 else "ok"

    with Timer() as datasynth_wls_timer:
        try:
            result = DataSynth(schema, DataSynthConfig(seed=3)).generate(wls)
            datasynth_wls = f"{result.lp_seconds:.1f} s"
        except LPTooLargeError:  # pragma: no cover - depends on workload draw
            datasynth_wls = "crash"

    print("\n[Figure 13] LP processing time")
    print("                 WLc (complex)      WLs (simple)")
    print(f"  DataSynth      {datasynth_wlc:>12s}     {datasynth_wls:>12s}")
    print(f"  Hydra          {hydra_wlc_time:>10.1f} s     {hydra_wls_timer.seconds:>10.1f} s")

    # Shape checks: Hydra handles the complex workload the grid approach
    # cannot, and is faster than DataSynth on the simple one.
    assert datasynth_wlc == "crash"
    assert hydra_wlc_time < 120
    assert hydra_wls_timer.seconds < datasynth_wls_timer.seconds
