"""Figure 13 (table): LP processing time for WLc and WLs.

In the paper, DataSynth's grid formulation crashes the solver on WLc and
takes ~50 minutes on WLs, while Hydra solves WLc in 58 s and WLs in 13 s.  We
reproduce the four cells of that table — Hydra's LP time on both workloads,
DataSynth's on WLs, and the grid blow-up on WLc — plus the scale-out
extension: the multi-view LP batch solved serially versus with the
decomposing, caching :class:`~repro.lp.solver.ParallelLPSolver` (cold and
with a warm component cache, the repeated-regeneration serving scenario).
"""

from __future__ import annotations

from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.lp.formulate import formulate_view_lp
from repro.lp.solver import LPSolver, ParallelLPSolver
from repro.metrics.timing import Timer
from repro.views.preprocess import Preprocessor


def _view_models(schema, *constraint_sets):
    """Formulate the region-partitioned view LPs of the given workloads."""
    preprocessor = Preprocessor(schema)
    models = []
    for constraints in constraint_sets:
        for relation, ccs in constraints.by_relation().items():
            task = preprocessor.build_task(relation, ccs)
            if task.subviews:
                models.append(formulate_view_lp(task).model)
    return models


def test_fig13_lp_processing_time(benchmark, tpcds_env, bench):
    schema = tpcds_env["schema"]
    wlc, wls = tpcds_env["wlc"], tpcds_env["wls"]

    hydra_wlc = benchmark(lambda: Hydra(schema).build_summary(wlc))
    # lp_seconds() is wall-clock by construction: it uses the batched solve
    # phase's lp_wall_seconds, never the sum of per-view solve_seconds that
    # overlap under the worker pool.
    hydra_wlc_time = hydra_wlc.lp_seconds()
    bench.record_seconds("hydra_wlc_lp_seconds", hydra_wlc_time)

    with Timer() as hydra_wls_timer:
        Hydra(schema).build_summary(wls)
    bench.record_seconds("hydra_wls_build_seconds", hydra_wls_timer.seconds)

    # DataSynth on WLc: at full 100 GB scale the grid formulation exceeds
    # what the solver can take (the paper reports an outright crash).  At
    # this reduced scale we report the blow-up factor of the grid versus
    # Hydra's region partitioning instead of materialising the doomed LP.
    wlc_grid_counts = DataSynth(schema).count_lp_variables(wlc)
    grid_ceiling = DataSynthConfig().max_grid_variables
    if max(wlc_grid_counts.values()) > grid_ceiling:
        datasynth_wlc = "crash"
    else:
        datasynth_wlc = f"{max(wlc_grid_counts.values())} vars"

    with Timer() as datasynth_wls_timer:
        try:
            result = DataSynth(schema, DataSynthConfig(seed=3)).generate(wls)
            datasynth_wls = f"{result.lp_seconds:.1f} s"
        except LPTooLargeError:  # pragma: no cover - depends on workload draw
            datasynth_wls = "crash"

    print("\n[Figure 13] LP processing time")
    print("                 WLc (complex)      WLs (simple)")
    print(f"  DataSynth      {datasynth_wlc:>12s}     {datasynth_wls:>12s}")
    print(f"  Hydra          {hydra_wlc_time:>10.1f} s     {hydra_wls_timer.seconds:>10.1f} s")

    # Shape checks: the grid formulation needs strictly more variables than
    # Hydra's region partitioning on the complex workload (the gap widens
    # with scale until the paper-reported crash), Hydra stays fast on both
    # workloads, and it beats DataSynth on the simple one.
    grid_total = sum(wlc_grid_counts.values())
    region_total = sum(hydra_wlc.lp_variable_counts.values())
    print(f"  WLc variables: grid={grid_total}  region={region_total}"
          f"  (blow-up x{grid_total / max(region_total, 1):.1f})")
    bench.record("wlc_region_variables", region_total, unit="vars",
                 direction="lower")
    bench.record("wlc_grid_blowup_factor", grid_total / max(region_total, 1),
                 direction="info")
    assert grid_total > region_total
    assert hydra_wlc_time < 120
    assert hydra_wls_timer.seconds < datasynth_wls_timer.seconds


def test_fig13_parallel_vs_serial_multiview_solve(tpcds_env, bench):
    """Scale-out extension of Figure 13: the whole multi-view LP batch,
    solved serially (one monolithic solve per view) versus with the
    decomposing parallel solver."""
    schema = tpcds_env["schema"]
    models = _view_models(schema, tpcds_env["wlc"], tpcds_env["wls"])
    assert len(models) > 1

    # All three phases are timed by one stopwatch around the whole batch
    # (wall-clock); per-solution solve_seconds overlap on the pool and are
    # never summed here.
    serial = LPSolver()
    with Timer() as serial_timer:
        serial_solutions = [serial.solve(model) for model in models]

    parallel = ParallelLPSolver(workers=4, cache_size=1024)
    with Timer() as cold_timer:
        parallel_solutions = parallel.solve_many(models)
    with Timer() as warm_timer:
        warm_solutions = parallel.solve_many(models)
    bench.record_seconds("multiview_serial_seconds", serial_timer.seconds)
    bench.record_seconds("multiview_parallel_cold_seconds", cold_timer.seconds)
    bench.record_seconds("multiview_parallel_warm_seconds", warm_timer.seconds)
    cache = parallel.cache_info
    lookups = cache["hits"] + cache["misses"]
    bench.record("warm_cache_hit_rate", cache["hits"] / max(lookups, 1),
                 direction="higher", tolerance=0.05)

    print("\n[Figure 13+] multi-view LP batch "
          f"({len(models)} views, {sum(m.num_variables for m in models)} vars)")
    print(f"  serial LPSolver          {serial_timer.seconds:8.2f} s")
    print(f"  ParallelLPSolver (cold)  {cold_timer.seconds:8.2f} s   "
          f"components={parallel.stats.components_solved}")
    print(f"  ParallelLPSolver (warm)  {warm_timer.seconds:8.2f} s   "
          f"cache={parallel.cache_info}")

    # Exactness: every view whose LP fits the (per-component) MILP path is
    # satisfied exactly; views above the size limit fall back to the
    # continuous + rounding path under both solvers and may carry a few
    # tuples of rounding residual — negligible relative to the constrained
    # cardinalities.
    worst = 0.0
    for model, serial_solution, parallel_solution in zip(
            models, serial_solutions, parallel_solutions):
        if model.num_variables <= serial.milp_variable_limit:
            assert parallel_solution.max_violation == 0.0, model.name
        else:
            largest_rhs = max(c.rhs for c in model.constraints)
            assert parallel_solution.max_violation <= 1e-3 * largest_rhs, model.name
            assert serial_solution.max_violation <= 1e-3 * largest_rhs, model.name
        worst = max(worst, parallel_solution.max_violation)
    print(f"  worst residual violation: {worst:g} tuples")
    assert all(s.feasible for s in parallel_solutions)
    for cold, warm in zip(parallel_solutions, warm_solutions):
        assert warm.max_violation == cold.max_violation

    # Wall-clock: with a warm component cache (the serving scenario) the
    # parallel solver must beat the serial baseline outright; cold it must
    # stay in the same ballpark despite the decomposition overhead.  Both
    # checks only bite above an absolute floor — sub-second solves on a
    # loaded CI runner are timer noise.
    assert warm_timer.seconds < max(serial_timer.seconds, 0.05)
    assert cold_timer.seconds < max(serial_timer.seconds * 3.0, 2.0)
