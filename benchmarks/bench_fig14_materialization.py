"""Figure 14 (table): data materialisation time at 10 / 100 / 1000 GB.

The paper reports minutes for Hydra versus hours-to-weeks for DataSynth.  We
measure both systems' per-row materialisation throughput at the benchmark
scale and extrapolate linearly to the paper's target sizes (both pipelines
are row-linear in this phase), printing the same three-row table.
"""

from __future__ import annotations

from repro.benchdata.tpcds import NOMINAL_ROW_COUNTS
from repro.datasynth.pipeline import DataSynth, DataSynthConfig
from repro.errors import LPTooLargeError
from repro.hydra.pipeline import Hydra
from repro.metrics.costmodel import ThroughputModel, format_duration, materialization_table
from repro.metrics.timing import Timer
from repro.tuplegen.generator import materialize_database


def test_fig14_materialization_time(benchmark, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wls"]

    hydra_result = Hydra(schema).build_summary(ccs)
    synthetic = benchmark(lambda: materialize_database(hydra_result.summary, schema))
    with Timer() as hydra_timer:
        materialize_database(hydra_result.summary, schema)
    hydra_model = ThroughputModel(measured_rows=synthetic.total_rows(),
                                  measured_seconds=max(hydra_timer.seconds, 1e-3))
    bench.record_seconds("hydra_materialize_seconds", hydra_timer.seconds)
    bench.record("hydra_tuples_per_second", hydra_model.rows_per_second,
                 unit="tuples/s", direction="higher", tolerance=0.50,
                 abs_tolerance=1000.0)
    bench.record("materialized_rows", synthetic.total_rows(), unit="rows",
                 direction="info")

    datasynth_model = None
    try:
        with Timer() as datasynth_timer:
            result = DataSynth(schema, DataSynthConfig(seed=3)).generate(ccs)
        datasynth_model = ThroughputModel(
            measured_rows=result.database.total_rows(),
            measured_seconds=max(datasynth_timer.seconds, 1e-3),
        )
    except LPTooLargeError:  # pragma: no cover
        pass

    table = materialization_table(schema, NOMINAL_ROW_COUNTS, hydra_model, datasynth_model)
    print("\n[Figure 14] projected data materialisation time")
    print("  size        Hydra              DataSynth")
    for row in table:
        datasynth = format_duration(row["datasynth_seconds"]) if "datasynth_seconds" in row else "n/a"
        print(f"  {row['size_gb']:>5d} GB   {format_duration(row['hydra_seconds']):>14s}   {datasynth:>14s}")

    # Shape checks: Hydra is much faster at every size and scales linearly.
    if datasynth_model is not None:
        for row in table:
            assert row["hydra_seconds"] < row["datasynth_seconds"]
    assert table[1]["hydra_seconds"] > table[0]["hydra_seconds"]
