"""Figure 15 (table): data supply times — disk scan vs dynamic generation.

The paper compares, for the five largest TPC-DS relations, the time to supply
tuples to the executor from a materialised relation on disk against the Tuple
Generator producing them on the fly from the summary, and finds dynamic
generation competitive or faster.  We reproduce the same table (at benchmark
scale) using the engine's two scan paths.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.benchdata.tpcds import LARGEST_RELATIONS
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.hydra.pipeline import Hydra
from repro.metrics.timing import Timer
from repro.tuplegen.generator import dynamic_database, materialize_database
from repro.workload.query import Query


def test_fig15_data_supply_times(benchmark, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wlc"]
    summary = Hydra(schema).build_summary(ccs).summary

    with tempfile.TemporaryDirectory() as tmp:
        materialized = materialize_database(summary, schema)
        materialized.dump(Path(tmp))

        rows = []
        for relation in LARGEST_RELATIONS:
            query = Query(query_id=f"scan_{relation}", root=relation, relations=(relation,))

            disk_db = Database.load(schema, Path(tmp), name="disk")
            with Timer() as disk_timer:
                disk_rows = Executor(disk_db).execute(query).plan.output_cardinality()

            dyn_db = dynamic_database(summary, schema)
            with Timer() as dynamic_timer:
                dyn_rows = Executor(dyn_db).execute(query).plan.output_cardinality()

            assert disk_rows == dyn_rows
            rows.append((relation, disk_rows, disk_timer.seconds, dynamic_timer.seconds))

        def scan_largest_dynamically():
            db = dynamic_database(summary, schema)
            return Executor(db).execute(
                Query(query_id="scan", root=LARGEST_RELATIONS[-1],
                      relations=(LARGEST_RELATIONS[-1],))
            ).plan.output_cardinality()

        benchmark(scan_largest_dynamically)

    print("\n[Figure 15] data supply times (disk scan vs dynamic generation)")
    print("  relation            rows        disk (s)   dynamic (s)")
    for relation, count, disk_seconds, dynamic_seconds in rows:
        print(f"  {relation:18s} {count:>10,d}   {disk_seconds:9.3f}   {dynamic_seconds:9.3f}")

    # Shape check: dynamic generation is competitive with reading from disk
    # (within 2x overall, and typically faster).  Both paths finish in
    # microseconds at reduced scale, where the ratio is pure timer noise, so
    # the relative check only applies above an absolute floor.
    # Both totals are sums of sequential single-threaded Timer spans (no
    # overlap), so summing them is wall-clock safe.
    total_disk = sum(r[2] for r in rows)
    total_dynamic = sum(r[3] for r in rows)
    total_rows = sum(r[1] for r in rows)
    bench.record_seconds("disk_supply_seconds", total_disk)
    bench.record_seconds("dynamic_supply_seconds", total_dynamic)
    bench.record("dynamic_tuples_per_second",
                 total_rows / max(total_dynamic, 1e-9), unit="tuples/s",
                 direction="higher", tolerance=0.50, abs_tolerance=1000.0)
    assert total_dynamic <= max(2.0 * total_disk, 0.25)
