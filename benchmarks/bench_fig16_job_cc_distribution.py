"""Figure 16: cardinality distribution of the CCs in the JOB workload.

Like Figure 9 but for the JOB (IMDB) environment: 260 queries yielding ~523
cardinality constraints with a highly varied cardinality distribution.
"""

from __future__ import annotations

from benchmarks.conftest import QUICK
from repro.codd.scaling import scale_constraints


def test_fig16_job_cc_distribution(benchmark, job_env, bench):
    ccs = job_env["ccs"]
    nominal = scale_constraints(ccs, 1.0 / 0.002, name="JOB@full")

    with bench.time("histogram_seconds"):
        histogram = nominal.cardinality_histogram()
    benchmark(nominal.cardinality_histogram)

    summary = nominal.summary()
    bench.record("cc_count", summary["count"], unit="constraints",
                 direction="info")
    print("\n[Figure 16] JOB cardinality-constraint distribution (log10 bins)")
    print(f"  constraints: {summary['count']}, queries: {summary['num_queries']}, "
          f"cardinalities {summary['min']} .. {summary['max']:,}")
    for lo, count in zip(histogram["bin_edges"], histogram["counts"]):
        print(f"  10^{lo:>4.1f}+ : {'#' * min(int(count), 80)} ({count})")

    assert summary["count"] >= (100 if QUICK else 300)
    assert sum(histogram["counts"]) == summary["count"]
