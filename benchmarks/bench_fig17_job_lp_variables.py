"""Figure 17: number of LP variables per JOB view, plus overall fidelity.

The paper reports that on the JOB workload Hydra's per-view LPs stay in the
thousands (never above a hundred thousand), the summary is generated in ~20
seconds, and all constraints are met within 2% relative error.
"""

from __future__ import annotations

from benchmarks.conftest import QUICK
from repro.hydra.pipeline import Hydra
from repro.metrics.similarity import evaluate_on_summary


def test_fig17_job_lp_variables_and_fidelity(benchmark, job_env):
    schema, ccs = job_env["schema"], job_env["ccs"]

    result = benchmark(lambda: Hydra(schema).build_summary(ccs))

    counts = {k: v for k, v in result.lp_variable_counts.items() if v}
    print("\n[Figure 17] LP variables per JOB view (region partitioning)")
    for relation, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {relation:18s} {count:>10,d}")
    print(f"  summary generated in {result.total_seconds:.1f}s")

    report = evaluate_on_summary(ccs, result.summary, schema)
    print(f"  constraints within 2% error: {report.fraction_within(0.02):.1%}"
          f" (max error {report.max_error():.2%})")

    # Shape checks: per-view LPs stay far below 100k variables and the bulk
    # of the constraints are met within the paper's 2% bound.
    assert max(counts.values()) < 100_000
    assert result.total_seconds < 120
    assert report.fraction_within(0.02) >= (0.75 if QUICK else 0.9)
