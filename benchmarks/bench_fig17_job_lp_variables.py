"""Figure 17: number of LP variables per JOB view, plus overall fidelity.

The paper reports that on the JOB workload Hydra's per-view LPs stay in the
thousands (never above a hundred thousand), the summary is generated in ~20
seconds, and all constraints are met within 2% relative error.

Two aspects of the paper's operating point matter for reproducing the
fidelity number, and both are configured explicitly here rather than patched
over with a looser threshold:

* **Region-variable budget.**  JOB's fact views (``cast_info``,
  ``movie_info``, ...) are dense two-subview views whose aligned region
  partitioning needs ~3e4-8e4 variables.  The default
  ``max_region_variables=8000`` budget forces the formulation's escalation
  ladder all the way to its last rung — dropping subview alignment entirely —
  which scrambles the cross-subview joint distributions when the subview
  solutions are merged, and shows up as wild relative errors on multi-relation
  CCs.  The paper's own envelope for this experiment is "LPs never exceed
  100 000 variables" (the figure's y-axis, asserted below), so the budget is
  set to exactly that envelope: every JOB view then keeps its alignment and
  still stays under the paper's bound.

* **Evaluation scale.**  The summary build is scale-independent, but relative
  error is not: the LP rounding residual (a couple of tuples per constraint)
  and the count-1 referential-integrity rows are *absolute*, scale-free
  artifacts.  Against cardinalities scaled down by 1/500 they dominate the
  relative error; against the paper's nominal cardinalities they vanish into
  the 2% band.  The experiment therefore scales the measured CCs back to the
  nominal JOB instance through the CODD metadata path (the same mechanism the
  paper uses to pose 100 GB experiments on a small client database) and both
  builds and evaluates the summary at that operating point.
"""

from __future__ import annotations

from benchmarks.conftest import QUICK
from repro.codd.scaling import scale_constraints
from repro.hydra.pipeline import Hydra, HydraConfig
from repro.metrics.similarity import evaluate_on_summary

#: The paper's stated envelope for this figure: per-view LPs stay below 1e5
#: variables.  Used both as the formulation budget (so the escalation ladder
#: never has to drop subview alignment on JOB's dense fact views) and as the
#: assertion bound on the realised LP sizes.
PAPER_VARIABLE_ENVELOPE = 100_000

#: ``job_env`` extracts CCs on a 1/500-scale client instance; the paper's
#: fidelity numbers are quoted at nominal scale, so scale them back up.
NOMINAL_FACTOR = 1.0 / 0.002


def test_fig17_job_lp_variables_and_fidelity(benchmark, job_env, bench):
    schema, ccs = job_env["schema"], job_env["ccs"]
    nominal = scale_constraints(ccs, NOMINAL_FACTOR, name="JOB@nominal")
    config = HydraConfig(max_region_variables=PAPER_VARIABLE_ENVELOPE)

    result = benchmark(lambda: Hydra(schema, config).build_summary(nominal))
    # total_seconds is the pipeline's single end-to-end wall-clock span.
    bench.record_seconds("job_build_seconds", result.total_seconds)

    counts = {k: v for k, v in result.lp_variable_counts.items() if v}
    print("\n[Figure 17] LP variables per JOB view (region partitioning)")
    for relation, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {relation:18s} {count:>10,d}")
    print(f"  summary generated in {result.total_seconds:.1f}s")
    bench.record("max_lp_variables_per_view", max(counts.values()), unit="vars",
                 direction="lower", tolerance=0.10)

    report = evaluate_on_summary(nominal, result.summary, schema)
    print(f"  constraints within 2% error: {report.fraction_within(0.02):.1%}"
          f" (max error {report.max_error():.2%})")
    bench.record("fraction_within_2pct", report.fraction_within(0.02),
                 direction="higher", tolerance=0.02)
    bench.record("max_relative_error", report.max_error(), direction="info")

    # Shape checks: per-view LPs stay within the paper's 1e5 envelope and the
    # bulk of the constraints are met within the paper's 2% bound.
    assert max(counts.values()) < PAPER_VARIABLE_ENVELOPE
    assert result.total_seconds < 120
    assert report.fraction_within(0.02) >= (0.75 if QUICK else 0.9)
