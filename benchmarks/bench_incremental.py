"""Incremental re-summarization: cold epoch build vs one-constraint drift.

The serving scenario behind ``resummarize``: a workload is summarized once
(the cold epoch build), then drifts by a single constraint — here one
observed cardinality moving by 1, the smallest real drift — and the service
re-summarizes against the warm base epoch.  Because the constraint-graph
decomposition localises the edit, only the affected component is re-solved;
every other component's cached solution is reused verbatim.  We measure both
wall times and the components-solved count on the Figure 13 simple workload
(WLs), the workload whose LP time the paper reports for Hydra.
"""

from __future__ import annotations

from dataclasses import replace

from repro.constraints.workload import ConstraintSet
from repro.service.service import RegenerationService


def one_constraint_drift(ccs: ConstraintSet) -> ConstraintSet:
    """The workload after minimal drift: one CC's cardinality moves by 1."""
    constraints = list(ccs.constraints)
    index = next(i for i, cc in enumerate(constraints) if cc.query_id)
    constraints[index] = replace(constraints[index],
                                 cardinality=constraints[index].cardinality + 1)
    return ConstraintSet(constraints, name=f"{ccs.name}-drift")


def test_incremental_resummarize_vs_cold(tpcds_env, bench, tmp_path):
    schema = tpcds_env["schema"]
    wls = tpcds_env["wls"]
    drifted = one_constraint_drift(wls)

    with RegenerationService(schema, store=str(tmp_path / "epochs")) as service:
        with bench.time("cold_build_seconds"):
            service.summarize(wls, timeout=600)
        base_fingerprint = service.fingerprint(wls)

        before = service.stats()
        with bench.time("drift_resummarize_seconds"):
            report = service.resummarize(base_fingerprint, drifted,
                                         timeout=600)
        after = service.stats()
        solved = (after["solver_components_solved"]
                  - before["solver_components_solved"])
        reused = len(report.reused_components)

        print("\n[Incremental] one-constraint drift on WLs"
              f" ({len(wls)} CCs, {report.total_components} components)")
        print(f"  components reused : {reused}")
        print(f"  components solved : {solved}"
              f" (delta plan: {len(report.solved_components)})")
        print(f"  retired           : {len(report.retired_components)}")

        bench.record("components_total", report.total_components,
                     unit="components", direction="info")
        bench.record("drift_components_solved", solved, unit="components",
                     direction="lower", abs_tolerance=2.0)

        # The point of the epoch machinery: a one-constraint drift must not
        # re-solve the whole workload, and the new epoch must be linked to
        # the base it was derived from.
        assert not report.warm
        assert reused > 0
        assert solved < report.total_components
        chain = service.store.list_lineage(report.fingerprint)
        assert chain[1]["fingerprint"] == base_fingerprint
