"""Pipelined vs. materialized execution: working set and equivalence.

Not a paper figure — this benchmark guards the engine property the serving
path depends on: AQP collection over a dynamically regenerated database in
pipelined mode holds at most one batch of the fact relation in flight,
produces cardinalities identical to table-at-a-time execution, and never
pays a full-relation materialisation.
"""

from __future__ import annotations

from conftest import QUICK

from repro.benchdata.tpcds import simple_workload
from repro.engine.executor import Executor
from repro.hydra.pipeline import Hydra
from repro.metrics.timing import Timer
from repro.tuplegen.generator import DEFAULT_BATCH_SIZE, dynamic_database

NUM_QUERIES = 10 if QUICK else 25


def test_pipelined_memory_footprint(benchmark, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wls"]
    summary = Hydra(schema).build_summary(ccs).summary
    workload = simple_workload(schema, num_queries=NUM_QUERIES, seed=3)

    runs = {}
    for mode in ("materialize", "pipelined"):
        executor = Executor(dynamic_database(summary, schema), mode=mode)
        with Timer() as timer:
            plans = executor.execute_workload(workload)
        runs[mode] = (plans, executor.stats, timer.seconds)

    def replay_pipelined():
        executor = Executor(dynamic_database(summary, schema), mode="pipelined")
        return executor.execute_workload(workload)

    benchmark(replay_pipelined)

    print("\n[pipelined memory] AQP collection over"
          f" {NUM_QUERIES} queries, {summary.total_rows():,} regenerated tuples")
    print("  mode          peak rows in flight    batches      wall (s)")
    for mode, (plans, stats, seconds) in runs.items():
        print(f"  {mode:12s}  {stats.peak_batch_rows:>15,d}   {stats.batches:>8,d}"
              f"   {seconds:9.3f}")

    # Equivalence: identical AQPs from both modes.
    materialized, pipelined = runs["materialize"], runs["pipelined"]
    # The working set is a structural property (batch-size bound), so any
    # growth is a pipelining regression, not noise: zero tolerance.
    bench.record("pipelined_peak_batch_rows", pipelined[1].peak_batch_rows,
                 unit="rows", direction="lower")
    bench.record_seconds("pipelined_workload_seconds", pipelined[2])
    bench.record_seconds("materialize_workload_seconds", materialized[2])
    assert [p.operator_cardinalities() for p in materialized[0]] == \
        [p.operator_cardinalities() for p in pipelined[0]]
    # Constant memory: the pipelined working set is bounded by the batch
    # size, not the regenerated fact scale.
    assert pipelined[1].peak_batch_rows <= DEFAULT_BATCH_SIZE
    assert materialized[1].peak_batch_rows >= pipelined[1].peak_batch_rows
