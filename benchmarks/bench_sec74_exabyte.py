"""Section 7.4: scaling to Big Data volumes (the exabyte scenario).

The paper models an exabyte-sized database by scaling the AQP cardinalities
obtained at 100 GB and shows that Hydra still builds the database summary in
under two minutes, because nothing in the pipeline depends on the data scale.
We reproduce the experiment by scaling our measured CCs to 10^18 bytes and
checking that summary size and construction time stay flat.
"""

from __future__ import annotations

from repro.codd.scaling import scale_constraints, scale_factor_for_bytes
from repro.hydra.pipeline import Hydra
from repro.metrics.timing import Timer

EXABYTE = 10**18


def test_sec74_exabyte_summary_construction(benchmark, tpcds_env, bench):
    schema, database, ccs = tpcds_env["schema"], tpcds_env["database"], tpcds_env["wlc"]
    factor = scale_factor_for_bytes(schema, EXABYTE, database.row_counts())
    exabyte_ccs = scale_constraints(ccs, factor, name="WLc@1EB")

    result = benchmark(lambda: Hydra(schema).build_summary(exabyte_ccs))

    with Timer() as baseline_timer:
        baseline = Hydra(schema).build_summary(ccs)

    print("\n[Section 7.4] summary construction is independent of data scale")
    print(f"  benchmark scale : {baseline.summary.total_rows():>22,d} tuples described,"
          f" {baseline.summary.nbytes():>10,d} B summary, {baseline.total_seconds:6.1f}s")
    print(f"  exabyte scale   : {result.summary.total_rows():>22,d} tuples described,"
          f" {result.summary.nbytes():>10,d} B summary, {result.total_seconds:6.1f}s")

    # total_seconds is one perf_counter span around the whole build phase
    # list — a single wall-clock stopwatch, not a sum of per-view timings.
    bench.record_seconds("exabyte_build_seconds", result.total_seconds)
    bench.record("exabyte_summary_bytes", result.summary.nbytes(), unit="bytes",
                 direction="lower", tolerance=0.20)
    bench.record("exabyte_tuples_described", result.summary.total_rows(),
                 unit="rows", direction="info")

    # Shape checks: the summary describes a vastly larger database but its
    # size (number of rows / bytes) and build time stay in the same ballpark.
    assert result.summary.total_rows() > 10**12
    assert result.summary.nbytes() < 4 * baseline.summary.nbytes() + 10_000
    assert result.total_seconds < 120
