"""HTTP serving throughput: N concurrent clients against a warm store.

Not a paper figure — this benchmark guards the network front-end the
regenerate-on-demand loop serves through: concurrent clients POST the warm
workload (zero LP solves) and stream disjoint NDJSON shards of the largest
relation, recording warm-summarize and stream latency quantiles plus
end-to-end tuple throughput across the socket.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from conftest import QUICK

from repro.server import RegenerationServer, constraint_set_to_wire
from repro.service.service import RegenerationService

CLIENTS = 4 if QUICK else 12
ROUNDS = 3 if QUICK else 8


def quantile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))]


def test_serve_http_concurrent_clients(tmp_path, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wls"]
    store = str(tmp_path / "store")
    with RegenerationService(schema, store=store) as builder:
        summary = builder.summarize(ccs, timeout=600)
        fingerprint = builder.fingerprint(ccs)
    relation = max(summary.relations,
                   key=lambda name: summary.relation(name).total_rows())
    total_rows = summary.relation(relation).total_rows()

    # A fresh service: its registry must stay at zero LP solves throughout.
    service = RegenerationService(schema, store=store)
    server = RegenerationServer(service, max_connections=2 * CLIENTS).start()
    url = server.url
    wire_body = json.dumps(
        {"workload": constraint_set_to_wire(ccs)}).encode("utf-8")

    summarize_latencies: list = []
    stream_latencies: list = []
    rows_streamed = [0]
    failures: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    def client(index: int) -> None:
        try:
            barrier.wait(timeout=60)
            for round_number in range(ROUNDS):
                started = time.perf_counter()
                request = urllib.request.Request(
                    url + "/v1/summarize", data=wire_body,
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=120) as response:
                    payload = json.loads(response.read())
                summarize_seconds = time.perf_counter() - started
                assert payload["warm"] is True
                assert payload["fingerprint"] == fingerprint

                started = time.perf_counter()
                shard = f"{index + 1}/{CLIENTS}"
                with urllib.request.urlopen(
                        f"{url}/v1/stream/{fingerprint}/{relation}"
                        f"?shard={shard}&batch_size=4096",
                        timeout=120) as response:
                    lines = response.read().count(b"\n")
                stream_seconds = time.perf_counter() - started
                with lock:
                    summarize_latencies.append(summarize_seconds)
                    stream_latencies.append(stream_seconds)
                    rows_streamed[0] += lines
        except Exception as error:  # surfaced after join
            with lock:
                failures.append(f"client {index}: {error!r}")

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(CLIENTS)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall_seconds = time.perf_counter() - wall_started
    server.shutdown()

    assert not failures, failures
    # Every round covers the relation exactly once across the client shards.
    assert rows_streamed[0] == ROUNDS * total_rows
    stats = service.stats()
    assert stats["solver_components_solved"] == 0
    assert stats["pipeline_runs"] == 0
    assert stats["hits"] == CLIENTS * ROUNDS
    service.close()

    tuples_per_second = rows_streamed[0] / wall_seconds
    bench.record_seconds("warm_summarize_p50_seconds",
                         quantile(summarize_latencies, 0.50))
    bench.record_seconds("warm_summarize_p99_seconds",
                         quantile(summarize_latencies, 0.99))
    bench.record_seconds("stream_p50_seconds",
                         quantile(stream_latencies, 0.50))
    bench.record_seconds("stream_p99_seconds",
                         quantile(stream_latencies, 0.99))
    bench.record("tuples_per_second", tuples_per_second, unit="tuples/s",
                 direction="higher", tolerance=0.50)
    bench.record("rows_streamed", float(rows_streamed[0]), unit="rows",
                 direction="info")

    print(f"\n[serve http] {CLIENTS} clients x {ROUNDS} rounds against warm"
          f" {relation} ({total_rows:,} rows/round, zero LP solves)")
    print(f"  summarize p50/p99:"
          f" {quantile(summarize_latencies, 0.5) * 1e3:.1f}ms /"
          f" {quantile(summarize_latencies, 0.99) * 1e3:.1f}ms")
    print(f"  stream    p50/p99:"
          f" {quantile(stream_latencies, 0.5) * 1e3:.1f}ms /"
          f" {quantile(stream_latencies, 0.99) * 1e3:.1f}ms")
    print(f"  {rows_streamed[0]:,} tuples in {wall_seconds:.2f}s ->"
          f" {tuples_per_second:,.0f} tuples/s over HTTP")
