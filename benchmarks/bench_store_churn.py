"""Store lifecycle under cold-build churn: cap adherence and warm latency.

Not a paper figure — this benchmark guards the serving-fleet hardening
properties: a summary store capped at ``max_store_bytes`` stays under its
cap across continuous cold-build churn with ``compact()`` GC passes, evicts
strictly LRU-first (the warm-hit entry always survives), and the warm-hit
read path for surviving entries is not measurably slowed by lifecycle
bookkeeping (recency touches + occasional compaction).
"""

from __future__ import annotations

import time

from conftest import QUICK

from repro.benchdata.tpcds import simple_workload, tpcds_schema
from repro.hydra.pipeline import Hydra
from repro.service.store import SummaryStore

CHURN_PUTS = 40 if QUICK else 200
WARM_READS = 200 if QUICK else 1_000


def test_store_churn_cap_and_warm_latency(benchmark, tmp_path, tpcds_env, bench):
    schema, ccs = tpcds_env["schema"], tpcds_env["wls"]
    summary = Hydra(schema).build_summary(ccs).summary

    # Size the cap at ~4 entries, then churn many distinct "cold builds"
    # (same summary payload under distinct fingerprints) through the store.
    probe = SummaryStore(tmp_path / "probe")
    probe.put_summary("0" * 64, summary)
    entry_bytes = probe.store_bytes()
    cap = 4 * entry_bytes + entry_bytes // 2

    store = SummaryStore(tmp_path / "store", max_store_bytes=cap)
    hot = "f" * 64
    store.put_summary(hot, summary)
    over_cap = 0
    for i in range(CHURN_PUTS):
        store.put_summary(f"{i:04d}" * 16, summary)
        store.get_summary(hot)  # keep the hot entry most-recently-used
        if store.compact()["store_bytes"] > cap:
            over_cap += 1

    counters = store.counters()
    assert over_cap == 0, f"{over_cap} churn steps left the store over its cap"
    assert counters["store_bytes"] <= cap
    assert counters["evictions"] >= CHURN_PUTS - 4
    # Strictly LRU: the continuously-touched hot entry survived every pass.
    assert store.has_summary(hot)

    # Warm-hit latency of a surviving entry: measure the uncapped baseline
    # store and the churned, capped store on the same read path.
    def read_many(target: SummaryStore, fingerprint: str) -> float:
        started = time.perf_counter()
        for _ in range(WARM_READS):
            assert target.get_summary(fingerprint) is not None
        return time.perf_counter() - started

    read_many(probe, "0" * 64)  # warm both paths before timing
    read_many(store, hot)
    baseline = read_many(probe, "0" * 64)
    capped = read_many(store, hot)
    benchmark(lambda: store.get_summary(hot))

    bench.record("churn_evictions", counters["evictions"], unit="evictions",
                 direction="info")
    bench.record("final_store_bytes", counters["store_bytes"], unit="bytes",
                 direction="lower", tolerance=0.20)
    bench.record_seconds("warm_read_seconds", capped)
    print(f"\n[store churn] {CHURN_PUTS} cold puts through a {cap:,}-byte cap:"
          f" {counters['evictions']} evictions,"
          f" final occupancy {counters['store_bytes']:,} bytes")
    print(f"  warm-hit reads x{WARM_READS}: uncapped {baseline:.4f}s,"
          f" capped+churned {capped:.4f}s")
    # "Unchanged" with headroom for timer noise on sub-ms loops: lifecycle
    # bookkeeping must not turn the memory-layer hit into a slow path.
    assert capped <= max(5.0 * baseline, baseline + 0.25)
