"""Replicated SummaryStore: propagation latency, warm reads and catch-up.

Not a paper figure — this benchmark guards the ``repro.cluster`` serving
properties: a put through a follower becomes visible on a *second*,
independently-tailing follower within a small multiple of its poll
interval; warm-hit reads on a follower replica stay on the local-disk
fast path (no leader round-trip); and a freshly-attached empty follower
drains a multi-hundred-record change-log backlog at bulk throughput
rather than one request per record.
"""

from __future__ import annotations

import statistics
import time

from conftest import QUICK

from repro.cluster import DiskBackend, ReplicatedStore, StoreServer
from repro.summary.relation_summary import DatabaseSummary, RelationSummary

REPL_PUTS = 12 if QUICK else 60
WARM_READS = 100 if QUICK else 600
#: The catch-up backlog stays at full size even in quick mode: draining a
#: couple hundred tiny records is what the metric *is*, and it is fast.
BACKLOG = 200
POLL_INTERVAL = 0.02


def _summary(seed: int, rows: int = 64) -> DatabaseSummary:
    summary = DatabaseSummary()
    per_value = max(1, rows // 4)
    summary.relations["S"] = RelationSummary(
        relation="S", primary_key="S_pk", columns=("A",),
        rows=[((seed * 10 + i,), per_value) for i in range(4)],
    )
    return summary


def _fp(seed: str) -> str:
    import hashlib

    return hashlib.sha256(seed.encode()).hexdigest()


def _percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def test_store_replication(benchmark, tmp_path, bench):
    leader = DiskBackend(tmp_path / "leader")
    server = StoreServer(leader, port=0).start()
    writer = ReplicatedStore(server.url, tmp_path / "writer",
                             poll_interval=POLL_INTERVAL)
    observer = ReplicatedStore(server.url, tmp_path / "observer",
                               poll_interval=POLL_INTERVAL)
    try:
        # -- put -> replicated-visible latency ------------------------- #
        # The writer acks at the leader (read-your-writes); the observer
        # only learns about the record from its background tailer, so the
        # observed delta is the real replication propagation time.
        visible = []
        for i in range(REPL_PUTS):
            key = _fp(f"repl-{i}")
            started = time.perf_counter()
            writer.put_summary(key, _summary(i))
            while not observer.local.has_summary(key):
                time.sleep(0.001)
            visible.append(time.perf_counter() - started)
        p50 = statistics.median(visible)
        p99 = _percentile(visible, 0.99)

        # -- follower warm-hit vs plain local disk --------------------- #
        hot = _fp("repl-0")
        local = DiskBackend(tmp_path / "local")
        local.put_summary(hot, _summary(0))

        def read_many(store) -> float:
            started = time.perf_counter()
            for _ in range(WARM_READS):
                assert store.get_summary(hot) is not None
            return time.perf_counter() - started

        read_many(local)      # warm both memory layers before timing
        read_many(observer)
        disk_reads = read_many(local)
        follower_reads = read_many(observer)
        benchmark(lambda: observer.get_summary(hot))

        # -- catch-up throughput over a backlog ------------------------ #
        for i in range(BACKLOG):
            leader.put_summary(_fp(f"backlog-{i}"), _summary(i, rows=16))
        fresh = ReplicatedStore(server.url, tmp_path / "fresh",
                                poll_interval=POLL_INTERVAL,
                                start_tailer=False)
        try:
            started = time.perf_counter()
            applied = fresh.catch_up()
            catchup_seconds = time.perf_counter() - started
        finally:
            fresh.close()
        assert applied >= BACKLOG
        assert fresh.local.has_summary(_fp(f"backlog-{BACKLOG - 1}"))
        rate = applied / catchup_seconds
    finally:
        observer.close()
        writer.close()
        server.shutdown()

    bench.record_seconds("put_visible_p50_seconds", p50)
    bench.record_seconds("put_visible_p99_seconds", p99)
    bench.record_seconds("follower_warm_read_seconds", follower_reads)
    bench.record_seconds("local_warm_read_seconds", disk_reads)
    bench.record("catchup_records_per_second", round(rate, 1),
                 unit="records/s", direction="higher", tolerance=0.50)
    print(f"\n[store replication] {REPL_PUTS} puts ->"
          f" replicated-visible p50 {p50 * 1e3:.1f}ms p99 {p99 * 1e3:.1f}ms"
          f" (poll interval {POLL_INTERVAL * 1e3:.0f}ms)")
    print(f"  warm-hit reads x{WARM_READS}: local disk {disk_reads:.4f}s,"
          f" follower replica {follower_reads:.4f}s")
    print(f"  catch-up: {applied} records in {catchup_seconds:.3f}s"
          f" ({rate:,.0f} records/s)")
    # Propagation is bounded by tail polling, not by data volume: even p99
    # stays within a handful of poll intervals plus apply time.
    assert p99 <= 50 * POLL_INTERVAL + 1.0
    # Warm hits never leave the local replica; allow generous timer noise.
    assert follower_reads <= max(5.0 * disk_reads, disk_reads + 0.25)
    assert rate > BACKLOG / 30.0  # i.e. the drain took well under 30s
