"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 7) at a reduced scale: the client database is a scaled-down
TPC-DS-like / JOB-like instance, and cardinalities are scaled up through the
CODD metadata path where the experiment calls for nominal 100 GB numbers.
The printed output of each benchmark is the reproduced table/series.
"""

from __future__ import annotations

import pytest

from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import complex_workload, simple_workload, tpcds_schema
from repro.hydra.client import extract_constraints

#: Scale used for the client instances backing the experiments: fact tables
#: at 1/1000 of the 100 GB configuration, dimensions at 1/50.
FACT_SCALE = 0.001
DIMENSION_SCALE = 0.02


@pytest.fixture(scope="session")
def tpcds_env():
    """Schema, client database and both workloads' constraint sets."""
    schema = tpcds_schema(scale_factor=FACT_SCALE, dimension_scale=DIMENSION_SCALE)
    database = generate_database(schema, seed=1)
    wlc = complex_workload(schema, num_queries=131)
    wls = simple_workload(schema, num_queries=110)
    package_c = extract_constraints(database, wlc, name="WLc")
    package_s = extract_constraints(database, wls, name="WLs")
    return {
        "schema": schema,
        "database": database,
        "wlc": package_c.constraints,
        "wls": package_s.constraints,
    }


@pytest.fixture(scope="session")
def job_env():
    """Schema, client database and constraints for the JOB environment."""
    schema = job_schema(scale_factor=0.002)
    database = generate_database(schema, seed=11)
    workload = job_workload(schema, num_queries=260)
    package = extract_constraints(database, workload, name="JOB")
    return {"schema": schema, "database": database, "ccs": package.constraints}
