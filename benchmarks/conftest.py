"""Shared fixtures for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section 7) at a reduced scale: the client database is a scaled-down
TPC-DS-like / JOB-like instance, and cardinalities are scaled up through the
CODD metadata path where the experiment calls for nominal 100 GB numbers.
The printed output of each benchmark is the reproduced table/series.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest

from repro.bench import BenchRecorder
from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import complex_workload, simple_workload, tpcds_schema
from repro.hydra.client import extract_constraints

#: ``BENCH_QUICK=1`` shrinks every experiment environment so the benchmarks
#: double as a fast CI smoke check (the reproduced numbers are then only
#: indicative, not the paper-scale figures).
QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")

#: Scale used for the client instances backing the experiments: fact tables
#: at 1/1000 of the 100 GB configuration, dimensions at 1/50.
FACT_SCALE = 0.0005 if QUICK else 0.001
DIMENSION_SCALE = 0.01 if QUICK else 0.02
WLC_QUERIES = 40 if QUICK else 131
WLS_QUERIES = 30 if QUICK else 110
JOB_QUERIES = 60 if QUICK else 260


@pytest.fixture(scope="module")
def bench(request):
    """The perf-trajectory recorder for one benchmark file.

    Module-scoped: every test in ``bench_<name>.py`` records into the same
    :class:`~repro.bench.BenchRecorder`, and at module teardown the collected
    metrics are written atomically as ``BENCH_<name>.json`` into
    ``BENCH_OUTPUT_DIR`` — defaulting to an *out-of-tree* directory under the
    system temp dir, so an ad-hoc run (especially a full-scale one) can never
    silently overwrite the committed quick-mode baselines.  Deliberate
    baseline refreshes opt in with ``BENCH_OUTPUT_DIR=benchmarks``.
    Durations must be wall-clock — use
    ``bench.time(...)``/``bench.record_seconds(...)``.
    """
    module_path = Path(str(request.fspath))
    recorder = BenchRecorder(module_path.stem.removeprefix("bench_"), quick=QUICK)
    yield recorder
    if recorder.metrics:
        output_dir = os.environ.get("BENCH_OUTPUT_DIR") or (
            Path(tempfile.gettempdir()) / "repro-bench"
        )
        target = recorder.write(output_dir)
        print(f"\n[bench] telemetry written to {target}")


@pytest.fixture(scope="session")
def tpcds_env():
    """Schema, client database and both workloads' constraint sets."""
    schema = tpcds_schema(scale_factor=FACT_SCALE, dimension_scale=DIMENSION_SCALE)
    database = generate_database(schema, seed=1)
    wlc = complex_workload(schema, num_queries=WLC_QUERIES)
    wls = simple_workload(schema, num_queries=WLS_QUERIES)
    package_c = extract_constraints(database, wlc, name="WLc")
    package_s = extract_constraints(database, wls, name="WLs")
    return {
        "schema": schema,
        "database": database,
        "wlc": package_c.constraints,
        "wls": package_s.constraints,
    }


@pytest.fixture(scope="session")
def job_env():
    """Schema, client database and constraints for the JOB environment."""
    schema = job_schema(scale_factor=0.002)
    database = generate_database(schema, seed=11)
    workload = job_workload(schema, num_queries=JOB_QUERIES)
    package = extract_constraints(database, workload, name="JOB")
    return {"schema": schema, "database": database, "ccs": package.constraints}
