"""Dynamic regeneration during query execution (Sections 6, 7.4 and 7.5).

The script shows the two features that distinguish Hydra from materialising
regenerators: the database summary is tiny and scale independent, and the
engine can answer queries by generating tuples on demand from it (the
``datagen`` scan of Section 6) instead of reading a materialised database.

Run with:  python examples/dynamic_generation.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    Database,
    Executor,
    Hydra,
    Query,
    col,
    complex_workload,
    dynamic_database,
    extract_constraints,
    generate_database,
    materialize_database,
    tpcds_schema,
)
from repro.codd.scaling import scale_constraints, scale_factor_for_bytes


def main() -> None:
    schema = tpcds_schema(scale_factor=0.0005)
    client_db = generate_database(schema, seed=3)
    workload = complex_workload(schema, num_queries=60, seed=21)
    package = extract_constraints(client_db, workload)

    # ------------------------------------------------------------------ #
    # exabyte modelling: scale the CCs, the summary stays minuscule
    # ------------------------------------------------------------------ #
    exabyte = 10**18
    factor = scale_factor_for_bytes(schema, exabyte, client_db.row_counts())
    scaled_ccs = scale_constraints(package.constraints, factor, name="exabyte")
    started = time.perf_counter()
    result = Hydra(schema).build_summary(scaled_ccs)
    elapsed = time.perf_counter() - started
    print(f"Summary for an exabyte-scale database built in {elapsed:.1f}s; "
          f"it describes {result.summary.total_rows():,} tuples "
          f"in {result.summary.nbytes():,} bytes")

    # ------------------------------------------------------------------ #
    # dynamic generation vs disk scan at a materialisable scale
    # ------------------------------------------------------------------ #
    local = Hydra(schema).build_summary(package.constraints)
    query = Query(query_id="agg", root="store_sales", relations=("store_sales",),
                  filters={"store_sales": col("ss_quantity").between(1, 50)})

    with tempfile.TemporaryDirectory() as tmp:
        materialised = materialize_database(local.summary, schema)
        materialised.dump(Path(tmp))
        loaded = Database.load(schema, Path(tmp), name="from-disk")

        started = time.perf_counter()
        disk_result = Executor(loaded).execute(query)
        disk_time = time.perf_counter() - started

        dynamic = dynamic_database(local.summary, schema)
        started = time.perf_counter()
        dyn_result = Executor(dynamic).execute(query)
        dynamic_time = time.perf_counter() - started

    print(f"\nScan of store_sales ({disk_result.plan.output_cardinality():,} matching rows):")
    print(f"  from disk           : {disk_time * 1000:7.1f} ms")
    print(f"  dynamic generation  : {dynamic_time * 1000:7.1f} ms")
    assert disk_result.plan.output_cardinality() == dyn_result.plan.output_cardinality()
    print("  identical query answers from both access paths")


if __name__ == "__main__":
    main()
