"""Regenerating the JOB (IMDB) environment (Section 7.6).

The JOB benchmark has a very different schema shape from TPC-DS — several
association relations around ``title`` with tiny type dimensions — and the
paper uses it to show that Hydra's behaviour is not a TPC-DS artefact.

Run with:  python examples/job_regeneration.py
"""

from __future__ import annotations

import time

from repro import (
    Hydra,
    evaluate_on_summary,
    extract_constraints,
    generate_database,
    job_schema,
    job_workload,
)


def main() -> None:
    schema = job_schema(scale_factor=0.002)
    client_db = generate_database(schema, seed=11)
    workload = job_workload(schema, num_queries=260)
    package = extract_constraints(client_db, workload)
    print(f"JOB workload: {len(workload)} queries -> {len(package.constraints)} CCs")

    started = time.perf_counter()
    result = Hydra(schema).build_summary(package.constraints)
    elapsed = time.perf_counter() - started

    counts = result.lp_variable_counts
    print(f"Summary generated in {elapsed:.1f}s")
    print(f"LP variables per view: max {max(counts.values()):,}, "
          f"median {sorted(counts.values())[len(counts) // 2]:,}")

    report = evaluate_on_summary(package.constraints, result.summary, schema)
    print(f"Volumetric similarity: {report.fraction_within(0.02):.1%} of CCs within 2%, "
          f"max error {report.max_error():.1%}")


if __name__ == "__main__":
    main()
