"""Pipelined (batch-at-a-time) execution over regenerated data.

The executor's ``mode="pipelined"`` runs the fact side of every plan through
the volcano-style operators of ``repro.engine.pipeline``: the root relation
streams out of the tuple generator batch-at-a-time, filters and PK-FK joins
are applied per batch, and a cardinality-accumulating sink produces the AQP
— so the fact relation is never materialised, whatever scale the summary
regenerates to.  The script measures the memory-footprint gap between the
two modes (peak batch rows vs. full intermediate tables), asserts the AQPs
are identical, and demonstrates the serving-side regenerate-then-verify
loop.

Run with:  PYTHONPATH=src python examples/pipelined_execution.py
"""

from __future__ import annotations

import time

from repro import (
    Executor,
    RegenerationService,
    complex_workload,
    dynamic_database,
    extract_constraints,
    generate_database,
    tpcds_schema,
)
from repro.codd.scaling import scale_constraints


def main() -> None:
    schema = tpcds_schema(scale_factor=0.0005)
    client_db = generate_database(schema, seed=3)
    workload = complex_workload(schema, num_queries=40, seed=21)
    package = extract_constraints(client_db, workload)

    # ------------------------------------------------------------------ #
    # vendor side: regenerate at 20x the client scale, then verify
    # ------------------------------------------------------------------ #
    scaled = scale_constraints(package.constraints, 20.0, name="20x")
    service = RegenerationService(schema)
    summary = service.summarize(scaled)
    print(f"Summary regenerates {summary.total_rows():,} tuples "
          f"from {summary.nbytes():,} bytes")

    results = {}
    for mode in ("pipelined", "materialize"):
        database = dynamic_database(summary, schema, batch_size=65_536)
        executor = Executor(database, mode=mode)
        started = time.perf_counter()
        plans = executor.execute_workload(workload)
        elapsed = time.perf_counter() - started
        results[mode] = (plans, executor.stats, elapsed)

    pipelined, materialized = results["pipelined"], results["materialize"]
    assert [p.operator_cardinalities() for p in pipelined[0]] == \
        [p.operator_cardinalities() for p in materialized[0]], \
        "modes must produce identical AQPs"

    print(f"\nAQP collection over {len(workload)} queries "
          "(identical plans in both modes):")
    print("  mode          peak rows in flight      wall time")
    for mode in ("materialize", "pipelined"):
        plans, stats, elapsed = results[mode]
        print(f"  {mode:12s}  {stats.peak_batch_rows:>15,d} rows   "
              f"{elapsed * 1000:8.1f} ms")
    ratio = materialized[1].peak_batch_rows / max(pipelined[1].peak_batch_rows, 1)
    print(f"  -> pipelined execution holds {ratio:,.0f}x fewer rows in memory")

    # ------------------------------------------------------------------ #
    # the same loop through the serving front-end
    # ------------------------------------------------------------------ #
    service.execute_workload(scaled, workload)   # AQP replay, warm summary
    report = service.verify(scaled)              # volumetric similarity
    stats = service.stats()
    print(f"\nServing path: {stats['workloads_executed']} workload replay, "
          f"{stats['verifications']} verification, "
          f"peak {stats['executor_peak_batch_rows']:,} rows in flight, "
          f"{100 * report.fraction_within(0.01):.1f}% of CCs within 1%")
    service.close()


if __name__ == "__main__":
    main()
