"""Quickstart: regenerate the paper's toy database (Figure 1) end to end.

The script builds the R/S/T client database and drives the whole pipeline
through the ``repro.api`` session facade: ``extract`` the cardinality
constraints from the example query's annotated plan, ``summarize`` them
into a scale-free database summary, ``regenerate`` a (lazy) database from
it — including at 10x the original volume — and ``verify`` that every
operator cardinality is reproduced.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Attribute,
    Database,
    ForeignKey,
    Interval,
    Query,
    RegenConfig,
    Relation,
    Schema,
    Session,
    Table,
    Workload,
    col,
)


def build_client_database() -> Database:
    """Create the Figure 1 schema and a data instance matching its AQP."""
    schema = Schema([
        Relation("S", primary_key="S_pk", row_count=700,
                 attributes=[Attribute("A", Interval(0, 100)), Attribute("B", Interval(0, 50))]),
        Relation("T", primary_key="T_pk", row_count=1500,
                 attributes=[Attribute("C", Interval(0, 10))]),
        Relation("R", primary_key="R_pk", row_count=80_000,
                 foreign_keys=[ForeignKey("S_fk", "S"), ForeignKey("T_fk", "T")]),
    ], name="toy")

    rng = np.random.default_rng(7)
    s = Table({
        "S_pk": np.arange(1, 701),
        "A": np.concatenate([rng.integers(20, 60, 400), rng.integers(60, 100, 300)]),
        "B": rng.integers(0, 50, 700),
    }, name="S")
    t = Table({
        "T_pk": np.arange(1, 1501),
        "C": np.concatenate([np.full(900, 2), rng.integers(3, 10, 600)]),
    }, name="T")
    r = Table({
        "R_pk": np.arange(1, 80_001),
        "S_fk": np.concatenate([rng.integers(1, 401, 50_000), rng.integers(401, 701, 30_000)]),
        "T_fk": np.concatenate([rng.integers(1, 901, 30_000), rng.integers(901, 1501, 20_000),
                                rng.integers(1, 1501, 30_000)]),
    }, name="R")

    database = Database(schema, name="client")
    for name, table in (("S", s), ("T", t), ("R", r)):
        database.attach(name, table)
    return database


def main() -> None:
    client_db = build_client_database()
    schema = client_db.schema

    # The example query of Figure 1(b).
    workload = Workload(name="toy", queries=[
        Query(query_id="fig1", root="R", relations=("R", "S", "T"),
              filters={"S": col("A").between(20, 60), "T": col("C").between(2, 3)}),
    ])

    session = Session(schema, config=RegenConfig(workers=2))

    # Client side: execute the workload, collect AQPs, derive CCs.
    constraints = session.extract(client_db, workload)
    print("Cardinality constraints shipped to the vendor:")
    for cc in constraints:
        print("  ", cc)

    # Vendor side: build the scale-free database summary.
    handle = session.summarize(constraints)
    summary = handle.summary
    print(f"\nDatabase summary: {summary.total_rows()} tuples described in "
          f"{sum(len(r) for r in summary.relations.values())} summary rows "
          f"({summary.nbytes()} bytes, fingerprint {handle.fingerprint[:12]}…)")

    # Regenerate lazily and verify through the pipelined executor.
    database = session.regenerate(handle)
    report = session.verify(database)
    print("\nVolumetric similarity on the regenerated database:")
    for res in report.results:
        print(f"  expected {res.expected:>8d}   regenerated {res.actual:>8d}   "
              f"error {res.absolute_relative_error:.3%}")
    print(f"\nmax relative error: {report.max_error():.3%}")

    # The summary is scale-free: the same handle regenerates any volume.
    big = session.regenerate(handle, scale=10.0)
    print(f"\nAt scale 10x: {sum(big.row_counts().values())} tuples from the"
          f" same {summary.nbytes()}-byte summary (nothing materialised)")


if __name__ == "__main__":
    main()
