"""Concurrent serving demo: many clients, overlapping workloads, one service.

Models the serving-fleet scenario of the paper's dynamic-generation pitch
(Section 6): a :class:`~repro.service.RegenerationService` in front of a
persistent summary store handles a burst of overlapping regeneration
requests from many threads.  Distinct workloads are built exactly once
(single-flight dedups identical in-flight requests); every warm request is
answered from the store *without invoking the LP solver*, which the demo
asserts by watching the solver's component counter.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import random
import tempfile
import threading
from pathlib import Path

from repro import RegenerationService, extract_constraints, generate_database
from repro.benchdata.tpcds import simple_workload, tpcds_schema

NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 6


def main() -> None:
    schema = tpcds_schema(scale_factor=0.0002)
    client_db = generate_database(schema, seed=7)

    # Three overlapping workload variants; clients request them repeatedly.
    workloads = [
        extract_constraints(client_db, simple_workload(schema, num_queries=n, seed=3)).constraints
        for n in (6, 8, 10)
    ]

    store_dir = Path(tempfile.mkdtemp(prefix="hydra-serving-")) / "store"
    with RegenerationService(schema, store=store_dir) as service:
        print(f"Warming {len(workloads)} distinct workloads into {store_dir} ...")
        for ccs in workloads:
            service.summarize(ccs)
        warm_stats = service.stats()
        solves_after_warm = warm_stats["solver_components_solved"]
        print(f"  pipeline_runs={warm_stats['pipeline_runs']} "
              f"lp_components_solved={solves_after_warm} "
              f"store_bytes={warm_stats['store_bytes']}")

        print(f"\n{NUM_CLIENTS} clients x {REQUESTS_PER_CLIENT} overlapping requests ...")

        def client(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(REQUESTS_PER_CLIENT):
                ccs = rng.choice(workloads)
                ticket = service.submit(ccs)
                summary = ticket.result(timeout=60.0)
                relation = rng.choice(list(summary.relations))
                batches = 0
                for _batch in service.stream(ticket.fingerprint, relation,
                                             batch_size=16_384):
                    batches += 1
                    if batches >= 3:
                        break

        threads = [threading.Thread(target=client, args=(i,)) for i in range(NUM_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = service.stats()
        print(f"  requests={stats['requests']} hits={stats['hits']} "
              f"misses={stats['misses']} inflight_dedup={stats['inflight_dedup']}")
        print(f"  batches_streamed={stats['batches_streamed']} "
              f"store_bytes={stats['store_bytes']}")

        # The acceptance property: warm-path requests never invoke the solver.
        assert stats["solver_components_solved"] == solves_after_warm, \
            "warm requests must not trigger LP solves"
        assert stats["pipeline_runs"] == len(workloads), \
            "every distinct workload is built exactly once"
        print("\nOK: all warm requests were served with zero LP solver invocations.")


if __name__ == "__main__":
    main()
