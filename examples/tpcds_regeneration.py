"""Regenerate a TPC-DS-like warehouse from a 131-query workload (Section 7).

The script builds a scaled-down TPC-DS-like client instance, derives the
complex workload WLc, runs both Hydra and (on the simplified workload WLs)
the DataSynth baseline, and prints the headline comparisons of the paper's
evaluation: LP sizes, summary construction time and volumetric similarity.

Run with:  python examples/tpcds_regeneration.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    DataSynth,
    Hydra,
    SummaryStore,
    compare_lp_sizes,
    complex_workload,
    evaluate_on_database,
    evaluate_on_summary,
    extract_constraints,
    generate_database,
    simple_workload,
    tpcds_schema,
)
from repro.errors import LPTooLargeError


def main() -> None:
    schema = tpcds_schema(scale_factor=0.001, dimension_scale=0.02)
    print("Generating the client database instance ...")
    client_db = generate_database(schema, seed=1)
    print(f"  {client_db.total_rows():,} rows across {len(schema)} relations")

    # ------------------------------------------------------------------ #
    # complex workload: Hydra succeeds, DataSynth's grid LP explodes
    # ------------------------------------------------------------------ #
    wlc = complex_workload(schema, num_queries=131)
    package_c = extract_constraints(client_db, wlc)
    print(f"\nWLc: {len(wlc)} queries -> {len(package_c.constraints)} cardinality constraints")

    store = SummaryStore(Path(tempfile.mkdtemp(prefix="hydra-store-")) / "store")
    started = time.perf_counter()
    hydra_result = Hydra(schema, store=store).build_summary(package_c.constraints)
    print(f"Hydra summary built in {time.perf_counter() - started:.1f}s "
          f"({hydra_result.summary.nbytes():,} bytes)")
    counters = hydra_result.cache_counters()
    print(f"  LP component cache: {counters['hits']} hits / {counters['misses']} misses; "
          f"store now {counters['store_bytes']:,} bytes on disk")

    # A second build of the same workload — e.g. another worker process of a
    # serving fleet mounting the same store — skips the pipeline entirely.
    started = time.perf_counter()
    warm = Hydra(schema, store=SummaryStore(store.root)).build_summary(package_c.constraints)
    warm_counters = warm.cache_counters()
    print(f"  Warm rebuild from store: summary_store_hits={warm_counters['summary_store_hits']}, "
          f"zero LP solves, {time.perf_counter() - started:.3f}s")

    comparison = compare_lp_sizes(schema, package_c.constraints)
    print("\nLP variables per relation (region vs grid partitioning):")
    for relation, region, grid, reduction in comparison.rows():
        print(f"  {relation:20s} region {region:>8,d}   grid {grid:>16,.0f}   x{reduction:,.0f}")

    report = evaluate_on_summary(package_c.constraints, hydra_result.summary, schema)
    print(f"\nHydra volumetric similarity on WLc: "
          f"{report.fraction_within(0.1):.1%} of CCs within 10% relative error")

    # ------------------------------------------------------------------ #
    # simplified workload: both systems run, compare accuracy
    # ------------------------------------------------------------------ #
    wls = simple_workload(schema, num_queries=110)
    package_s = extract_constraints(client_db, wls)
    print(f"\nWLs: {len(wls)} queries -> {len(package_s.constraints)} cardinality constraints")

    hydra_s = Hydra(schema).build_summary(package_s.constraints)
    hydra_report = evaluate_on_summary(package_s.constraints, hydra_s.summary, schema)
    print(f"Hydra     : {hydra_report.fraction_within(0.1):.1%} of CCs within 10%")

    try:
        datasynth = DataSynth(schema).generate(package_s.constraints)
        ds_report = evaluate_on_database(package_s.constraints, datasynth.database)
        print(f"DataSynth : {ds_report.fraction_within(0.1):.1%} of CCs within 10% "
              f"(max error {ds_report.max_error():.1%})")
        print(f"Extra tuples for referential integrity — Hydra: "
              f"{sum(hydra_s.summary.extra_tuples.values())}, "
              f"DataSynth: {sum(datasynth.extra_tuples.values())}")
    except LPTooLargeError as exc:
        print(f"DataSynth could not run: {exc}")


if __name__ == "__main__":
    main()
