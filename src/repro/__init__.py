"""Hydra — scalable and dynamic regeneration of big data volumes.

A from-scratch Python reproduction of *Sanghi, Sood, Haritsa, Tirthapura:
"Scalable and Dynamic Regeneration of Big Data Volumes", EDBT 2018*, including
the DataSynth baseline, an in-memory relational engine producing annotated
query plans, TPC-DS-like / JOB-like benchmark environments, and the full
experiment harness.

Typical use (the :mod:`repro.api` session facade)::

    from repro import Session, RegenConfig, tpcds_schema, complex_workload, generate_database

    schema = tpcds_schema(scale_factor=0.0005)
    client_db = generate_database(schema, seed=1)
    workload = complex_workload(schema)

    session = Session(schema, config=RegenConfig(workers=4))
    constraints = session.extract(client_db, workload)
    handle = session.summarize(constraints)        # or engine="datasynth"
    database = session.regenerate(handle)          # lazy, streamable
    report = session.verify(database)

The per-layer symbols (``Hydra``, ``DataSynth``, ``RegenerationService``,
solvers, partitioners...) remain importable for experiments and extensions;
``docs/API.md`` maps the old entry points onto the session facade.
"""

from repro.api import (
    DatabaseHandle,
    EpochDiff,
    RegenConfig,
    Session,
    SummaryHandle,
    available_backends,
    register_backend,
)
from repro.cluster import (
    DiskBackend,
    HashRing,
    ReplicatedStore,
    ShardedStore,
    StoreBackend,
    StoreServer,
    open_store,
)
from repro.benchdata import (
    complex_workload,
    generate_database,
    job_schema,
    job_workload,
    simple_workload,
    tpcds_schema,
)
from repro.constraints import CardinalityConstraint, ConstraintSet
from repro.datasynth import DataSynth, DataSynthConfig, DataSynthResult
from repro.engine import EXECUTOR_MODES, Database, Executor, PipelineStats, Table
from repro.errors import ReproError
from repro.hydra import Hydra, HydraConfig, HydraResult, extract_constraints
from repro.metrics import (
    SimilarityReport,
    compare_extra_tuples,
    compare_lp_sizes,
    evaluate_on_database,
    evaluate_on_summary,
    evaluate_with_executor,
)
from repro.predicates import Conjunct, DNFPredicate, Interval, IntervalSet, col
from repro.schema import Attribute, ForeignKey, Relation, Schema
from repro.server import RegenerationServer
from repro.service import (
    ManifestDiff,
    RegenerationService,
    ResummarizeReport,
    ServiceStats,
    SummaryStore,
    TenantStats,
    Ticket,
    workload_fingerprint,
)
from repro.summary import DatabaseSummary, RelationSummary
from repro.tuplegen import TupleGenerator, dynamic_database, materialize_database
from repro.workload import Query, Workload, WorkloadGenerator, WorkloadProfile

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # unified api facade
    "Session",
    "RegenConfig",
    "SummaryHandle",
    "DatabaseHandle",
    "EpochDiff",
    "register_backend",
    "available_backends",
    # schema
    "Schema",
    "Relation",
    "Attribute",
    "ForeignKey",
    # predicates
    "Interval",
    "IntervalSet",
    "Conjunct",
    "DNFPredicate",
    "col",
    # constraints
    "CardinalityConstraint",
    "ConstraintSet",
    # engine
    "Table",
    "Database",
    "Executor",
    "EXECUTOR_MODES",
    "PipelineStats",
    # workload
    "Query",
    "Workload",
    "WorkloadGenerator",
    "WorkloadProfile",
    # benchmark environments
    "tpcds_schema",
    "complex_workload",
    "simple_workload",
    "job_schema",
    "job_workload",
    "generate_database",
    # pipelines
    "Hydra",
    "HydraConfig",
    "HydraResult",
    "extract_constraints",
    "DataSynth",
    "DataSynthConfig",
    "DataSynthResult",
    # summaries and generation
    "DatabaseSummary",
    "RelationSummary",
    "TupleGenerator",
    "materialize_database",
    "dynamic_database",
    # serving
    "RegenerationServer",
    "RegenerationService",
    "ServiceStats",
    "TenantStats",
    "Ticket",
    "SummaryStore",
    "workload_fingerprint",
    "ManifestDiff",
    "ResummarizeReport",
    # cluster
    "StoreBackend",
    "DiskBackend",
    "StoreServer",
    "ReplicatedStore",
    "ShardedStore",
    "HashRing",
    "open_store",
    # metrics
    "SimilarityReport",
    "evaluate_on_database",
    "evaluate_on_summary",
    "evaluate_with_executor",
    "compare_lp_sizes",
    "compare_extra_tuples",
]
