"""Entry point: ``python -m repro <command> ...`` (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
