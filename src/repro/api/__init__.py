"""The unified public API: one config, one entry point, pluggable backends.

``repro.api`` is the supported surface for driving the whole pipeline:

* :class:`RegenConfig` — every result-affecting and performance knob in one
  frozen dataclass, from which the per-engine configs are derived and which
  namespaces store fingerprints;
* :class:`Session` — the facade with the paper's four verbs
  (``extract`` → ``summarize`` → ``regenerate`` → ``verify``) plus
  ``serve()`` to lift the same configuration into a concurrent
  :class:`~repro.service.RegenerationService`;
* :class:`SummaryHandle` / :class:`DatabaseHandle` — the values flowing
  between the verbs (summary + fingerprint + diagnostics; lazy database +
  execute/stream/row_counts);
* :func:`register_backend` — plug in new engines by name; Hydra and
  DataSynth are pre-registered, and the serving layer routes through the
  same registry.

Older entry points (``Hydra(schema).build_summary``, ``DataSynth.generate``,
``python -m repro.service``) keep working but delegate here; see
``docs/API.md`` for the migration mapping.
"""

from repro.api.backends import (
    BackendBuild,
    PipelineBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.api.config import BUILTIN_ENGINES, RegenConfig
from repro.api.session import DatabaseHandle, EpochDiff, Session, SummaryHandle

__all__ = [
    "Session",
    "RegenConfig",
    "SummaryHandle",
    "DatabaseHandle",
    "EpochDiff",
    "PipelineBackend",
    "BackendBuild",
    "register_backend",
    "available_backends",
    "create_backend",
    "BUILTIN_ENGINES",
]
