"""The pluggable pipeline-backend registry.

A *backend* adapts one regeneration engine (Hydra, DataSynth, or anything a
user registers) to the uniform contract the :class:`~repro.api.Session`
facade and the :class:`~repro.service.RegenerationService` route requests
through:

* ``fingerprint(constraints, relations)`` — the canonical store/dedup key,
  namespaced by the backend's result-affecting configuration;
* ``build(constraints, relations)`` — run the engine and return a
  :class:`BackendBuild` whose :class:`~repro.summary.DatabaseSummary` fully
  describes the regenerated database (instance-producing engines are
  run-length encoded via :func:`repro.summary.summary_from_database`, so the
  summary regenerates their output byte-identically).

Backends are selected by name — ``register_backend("myengine", factory)``
makes ``Session(schema).summarize(ccs, engine="myengine")`` and
``RegenerationService(schema, engine="myengine")`` work without either layer
knowing the engine exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

from repro.api.config import RegenConfig
from repro.constraints.workload import ConstraintSet
from repro.errors import UnknownBackendError
from repro.obs.trace import span as trace_span
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary

if TYPE_CHECKING:
    from repro.service.store import SummaryStore


@dataclass
class BackendBuild:
    """What one backend build hands back to the session/service layer."""

    #: The (scale-free) summary the request regenerates from.
    summary: DatabaseSummary
    #: Engine-specific diagnostics (solver stats, timings, extra tuples...).
    diagnostics: Dict[str, object] = field(default_factory=dict)
    #: ``True`` when the whole result came from the store, skipping the
    #: pipeline.
    from_store: bool = False


class PipelineBackend:
    """Base class (and documentation of the contract) for pipeline backends.

    Subclasses must set :attr:`name`, expose the underlying engine object as
    :attr:`pipeline` (whose ``solver.stats`` feeds serving telemetry) and
    implement :meth:`fingerprint` and :meth:`build`.
    """

    #: Registry name of the engine.
    name: str = ""
    #: The wrapped engine object (must expose ``solver.stats``).
    pipeline: object = None

    def fingerprint(self, constraints: ConstraintSet,
                    relations: Optional[Sequence[str]] = None) -> str:
        raise NotImplementedError

    def build(self, constraints: ConstraintSet,
              relations: Optional[Sequence[str]] = None) -> BackendBuild:
        raise NotImplementedError


#: A backend factory: ``factory(schema, config, store) -> PipelineBackend``.
BackendFactory = Callable[[Schema, RegenConfig, Optional["SummaryStore"]],
                          PipelineBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register (or replace) a pipeline backend under ``name``."""
    if not name:
        raise UnknownBackendError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, schema: Schema, config: RegenConfig,
                   store: Optional["SummaryStore"] = None) -> PipelineBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(
            f"no pipeline backend registered under {name!r};"
            f" available: {', '.join(available_backends())}"
        ) from None
    return factory(schema, config, store)


# ---------------------------------------------------------------------- #
# built-in backends
# ---------------------------------------------------------------------- #
class HydraBackend(PipelineBackend):
    """Hydra: summary-producing, store-aware (warm builds skip the LP)."""

    name = "hydra"

    def __init__(self, schema: Schema, config: RegenConfig,
                 store: Optional["SummaryStore"] = None) -> None:
        from repro.hydra.pipeline import Hydra

        self.config = config
        self.pipeline = Hydra(schema, config.hydra_config(), store=store)

    def fingerprint(self, constraints: ConstraintSet,
                    relations: Optional[Sequence[str]] = None) -> str:
        return self.pipeline.request_fingerprint(constraints, relations)

    def build(self, constraints: ConstraintSet,
              relations: Optional[Sequence[str]] = None) -> BackendBuild:
        with trace_span("backend.build", engine=self.name,
                        constraints=len(constraints)) as span:
            result = self.pipeline.build_summary(constraints, relations)
            build = BackendBuild(
                summary=result.summary,
                diagnostics={
                    "total_seconds": result.total_seconds,
                    "lp_wall_seconds": result.lp_wall_seconds,
                    "solver_stats": dict(result.solver_stats),
                    "view_reports": result.view_reports,
                },
                from_store=bool(result.solver_stats.get("summary_store_hits", 0)),
            )
            span.set_attribute("from_store", build.from_store)
        return build


class DataSynthBackend(PipelineBackend):
    """DataSynth: instance-producing; the materialised database is run-length
    encoded into an exact summary so the serving layer (store, streaming,
    scaling) works identically for both engines.  With a store attached, the
    baseline gains a whole-result warm path it never had."""

    name = "datasynth"

    def __init__(self, schema: Schema, config: RegenConfig,
                 store: Optional["SummaryStore"] = None) -> None:
        from repro.datasynth.pipeline import DataSynth

        self.config = config
        self.schema = schema
        self.store = store
        self.pipeline = DataSynth(schema, config.datasynth_config(), store=store)

    def fingerprint(self, constraints: ConstraintSet,
                    relations: Optional[Sequence[str]] = None) -> str:
        from repro.service.fingerprint import workload_fingerprint

        config = self.config
        # Only result-affecting knobs namespace the fingerprint: the sampling
        # seed and the grid budget change the instance; time_limit does not
        # (DataSynth's continuous formulation never takes the MILP pass).
        return workload_fingerprint(
            self.schema, constraints, relations=relations,
            profile=["datasynth", config.seed, config.max_grid_variables],
        )

    def build(self, constraints: ConstraintSet,
              relations: Optional[Sequence[str]] = None) -> BackendBuild:
        with trace_span("backend.build", engine=self.name,
                        constraints=len(constraints)) as span:
            build = self._build(constraints, relations)
            span.set_attribute("from_store", build.from_store)
        return build

    def _build(self, constraints: ConstraintSet,
               relations: Optional[Sequence[str]] = None) -> BackendBuild:
        from repro.summary.relation_summary import summary_from_database

        if self.store is not None:
            fingerprint = self.fingerprint(constraints, relations)
            cached = self.store.get_summary(fingerprint)
            if cached is not None:
                return BackendBuild(summary=cached, from_store=True,
                                    diagnostics={"summary_store_hits": 1})
        result = self.pipeline.generate(constraints, relations)
        summary = summary_from_database(result.database)
        summary.extra_tuples = dict(result.extra_tuples)
        summary.lp_variable_counts = dict(result.lp_variable_counts)
        summary.timings = {
            "total_seconds": result.total_seconds,
            "lp_seconds": result.lp_seconds,
            "instantiation_seconds": result.instantiation_seconds,
        }
        if self.store is not None:
            self.store.put_summary(fingerprint, summary, meta={
                "schema": self.schema.name,
                "constraints": len(constraints),
                "engine": self.name,
            })
        return BackendBuild(
            summary=summary,
            diagnostics={
                "total_seconds": result.total_seconds,
                "lp_seconds": result.lp_seconds,
                "instantiation_seconds": result.instantiation_seconds,
                "extra_tuples": dict(result.extra_tuples),
            },
        )


register_backend("hydra", HydraBackend)
register_backend("datasynth", DataSynthBackend)
