"""The one canonical configuration of the regeneration pipeline.

Before :class:`RegenConfig`, result-affecting knobs were scattered across
``HydraConfig``, ``DataSynthConfig``, ``ParallelLPSolver``, ``Executor`` and
``RegenerationService``, each with its own defaults and calling convention.
``RegenConfig`` consolidates every knob in one frozen (hashable, immutable)
dataclass from which the per-engine configs are *derived*, and it is the
canonical input to store-fingerprint namespacing: two sessions whose configs
differ in a result-affecting knob can never share a store entry, while
performance-only knobs (workers, cache sizes, batch size) never split the
store.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # the engine configs are derived lazily to avoid cycles
    from repro.datasynth.pipeline import DataSynthConfig
    from repro.hydra.pipeline import HydraConfig

from repro.engine.executor import EXECUTOR_MODES
from repro.errors import ConfigError
from repro.lp.formulate import STRATEGY_GRID, STRATEGY_REGION
from repro.lp.solver import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_MILP_TIME_LIMIT,
    DEFAULT_MILP_VARIABLE_LIMIT,
    DEFAULT_WORKERS,
)

#: Default number of tuples per streamed batch (mirrors
#: :data:`repro.tuplegen.generator.DEFAULT_BATCH_SIZE` without importing the
#: generator — config must stay import-light).
DEFAULT_BATCH_SIZE = 65_536

#: Engines shipped with the library (more can be added via
#: :func:`repro.api.register_backend`).
BUILTIN_ENGINES = ("hydra", "datasynth")


@dataclass(frozen=True)
class RegenConfig:
    """Every knob of the regeneration pipeline, in one frozen object.

    Result-affecting knobs (they change the produced summary/database and
    therefore namespace store fingerprints):

    * ``strategy`` — ``"region"`` (Hydra proper) or ``"grid"`` (the
      DataSynth-style formulation);
    * ``prefer_integer`` — ask for an exactly integral LP solution first;
    * ``milp_variable_limit`` / ``time_limit`` — bounds of the exact MILP
      pass (per connected component);
    * ``max_grid_variables`` / ``max_region_variables`` — partitioning
      budgets;
    * ``seed`` — the DataSynth sampling seed.

    Error-mode knob: ``strict`` raises
    :class:`~repro.errors.InfeasibleLPError` on residual constraint
    violation instead of reporting it in the diagnostics (same values on
    success, so it does not namespace fingerprints).

    Performance-only knobs (never fingerprinted): ``workers``,
    ``cache_size``, ``use_processes``, ``batch_size``, ``executor_mode``,
    ``max_workers``, ``max_pending``, ``max_pending_per_tenant``.

    Store lifecycle knobs (also never fingerprinted — they bound the store,
    not the artefacts): ``max_store_bytes``, ``max_entries``,
    ``ttl_seconds``, ``gc_interval``, ``cursor_idle_timeout``.

    HTTP serving knobs (never fingerprinted — they shape the network
    front-end, not the artefacts): ``listen_host`` / ``listen_port`` are the
    default bind address of ``serve --listen`` (port ``0`` binds an
    ephemeral port); ``max_connections`` caps concurrently in-flight HTTP
    requests (excess answered 503); ``request_timeout`` is the per-request
    socket/wait bound of the server; ``max_request_bytes`` caps the request
    body the HTTP front-ends accept (oversized POSTs answered 413).

    Cluster knobs (never fingerprinted — they place the store, not the
    artefacts): ``store_url`` mounts the store as a
    :class:`~repro.cluster.replica.ReplicatedStore` follower of the leader
    at that URL; ``store_peers`` (comma-separated URLs) shards fingerprints
    across one replicated group per peer
    (:class:`~repro.cluster.sharded.ShardedStore`); ``store_role`` declares
    the node's intent (``"auto"`` | ``"leader"`` | ``"follower"`` — a
    follower requires a ``store_url`` to follow).

    Observability knobs (never fingerprinted — they change what is
    *recorded*, not what is produced): ``obs_enabled`` switches the
    :mod:`repro.obs` metrics registry the service/store instrument through
    (``False`` turns every update into a no-op and ``stats()`` reports
    zeros); ``trace_sample`` is the root-sampling rate of request tracing
    (``0.0`` disables it); ``log_format`` picks the ``"text"`` or ``"json"``
    handler the service attaches to the ``repro.*`` loggers (``json`` only —
    plain text stays opt-in via
    :func:`repro.obs.configure_logging`).
    """

    engine: str = "hydra"
    # -- result-affecting pipeline knobs ------------------------------- #
    strategy: str = STRATEGY_REGION
    prefer_integer: bool = True
    milp_variable_limit: int = DEFAULT_MILP_VARIABLE_LIMIT
    time_limit: Optional[float] = DEFAULT_MILP_TIME_LIMIT
    max_grid_variables: int = 200_000
    max_region_variables: int = 8_000
    seed: int = 7
    # -- error mode ---------------------------------------------------- #
    strict: bool = False
    # -- performance knobs --------------------------------------------- #
    workers: int = DEFAULT_WORKERS
    cache_size: int = DEFAULT_CACHE_SIZE
    use_processes: bool = False
    batch_size: int = DEFAULT_BATCH_SIZE
    executor_mode: str = "pipelined"
    # -- serving knobs ------------------------------------------------- #
    max_workers: int = 2
    max_pending: Optional[int] = None
    max_pending_per_tenant: Optional[int] = None
    # -- HTTP front-end knobs ------------------------------------------ #
    listen_host: str = "127.0.0.1"
    listen_port: int = 0
    max_connections: int = 64
    request_timeout: float = 30.0
    max_request_bytes: int = 64 * 1024 * 1024
    # -- cluster knobs -------------------------------------------------- #
    store_url: Optional[str] = None
    store_role: str = "auto"
    store_peers: Optional[str] = None
    # -- store lifecycle knobs ----------------------------------------- #
    max_store_bytes: Optional[int] = None
    max_entries: Optional[int] = None
    ttl_seconds: Optional[float] = None
    gc_interval: Optional[float] = None
    cursor_idle_timeout: Optional[float] = None
    # -- observability knobs ------------------------------------------- #
    obs_enabled: bool = True
    trace_sample: float = 0.0
    log_format: str = "text"

    def __post_init__(self) -> None:
        if self.strategy not in (STRATEGY_REGION, STRATEGY_GRID):
            raise ConfigError(
                f"unknown strategy {self.strategy!r}; expected"
                f" {STRATEGY_REGION!r} or {STRATEGY_GRID!r}"
            )
        if self.executor_mode not in EXECUTOR_MODES:
            raise ConfigError(
                f"unknown executor mode {self.executor_mode!r};"
                f" expected one of {EXECUTOR_MODES}"
            )
        for knob in ("workers", "max_workers", "batch_size"):
            if getattr(self, knob) < 1:
                raise ConfigError(f"{knob} must be at least 1")
        for knob in ("cache_size", "milp_variable_limit", "max_grid_variables",
                     "max_region_variables"):
            if getattr(self, knob) < 0:
                raise ConfigError(f"{knob} must be non-negative")
        for knob in ("max_pending", "max_pending_per_tenant",
                     "max_store_bytes", "max_entries", "ttl_seconds"):
            value = getattr(self, knob)
            if value is not None and value < 0:
                raise ConfigError(f"{knob} must be non-negative (or None)")
        if self.gc_interval is not None and self.gc_interval <= 0:
            raise ConfigError("gc_interval must be positive (or None)")
        if self.cursor_idle_timeout is not None and self.cursor_idle_timeout <= 0:
            raise ConfigError("cursor_idle_timeout must be positive (or None)")
        if not 0 <= self.listen_port <= 65535:
            raise ConfigError("listen_port must be within [0, 65535]")
        if self.max_connections < 1:
            raise ConfigError("max_connections must be at least 1")
        if self.request_timeout <= 0:
            raise ConfigError("request_timeout must be positive")
        if self.max_request_bytes < 1:
            raise ConfigError("max_request_bytes must be at least 1")
        if self.store_role not in ("auto", "leader", "follower"):
            raise ConfigError(
                f"unknown store_role {self.store_role!r};"
                " expected 'auto', 'leader' or 'follower'"
            )
        if self.store_url and self.store_peers:
            raise ConfigError(
                "store_url and store_peers are mutually exclusive;"
                " peers already name every leader"
            )
        if self.store_role == "follower" and not (self.store_url
                                                  or self.store_peers):
            raise ConfigError(
                "store_role='follower' needs a store_url (or store_peers)"
                " to follow"
            )
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ConfigError("trace_sample must be within [0, 1]")
        from repro.obs.logging import LOG_FORMATS

        if self.log_format not in LOG_FORMATS:
            raise ConfigError(
                f"unknown log_format {self.log_format!r};"
                f" expected one of {LOG_FORMATS}"
            )

    # ------------------------------------------------------------------ #
    # derivation of the per-engine configs
    # ------------------------------------------------------------------ #
    def replace(self, **changes: object) -> "RegenConfig":
        """A copy with the given knobs changed (the config is frozen)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def hydra_config(self) -> "HydraConfig":
        """Derive the :class:`~repro.hydra.pipeline.HydraConfig` slice."""
        from repro.hydra.pipeline import HydraConfig

        return HydraConfig(
            strategy=self.strategy,
            prefer_integer=self.prefer_integer,
            milp_variable_limit=self.milp_variable_limit,
            time_limit=self.time_limit,
            max_grid_variables=self.max_grid_variables,
            max_region_variables=self.max_region_variables,
            workers=self.workers,
            cache_size=self.cache_size,
            use_processes=self.use_processes,
            strict=self.strict,
        )

    def datasynth_config(self) -> "DataSynthConfig":
        """Derive the :class:`~repro.datasynth.pipeline.DataSynthConfig`
        slice (``time_limit`` only affects the MILP pass, which DataSynth's
        continuous formulation never takes, so it is passed through
        verbatim)."""
        from repro.datasynth.pipeline import DataSynthConfig

        return DataSynthConfig(
            max_grid_variables=self.max_grid_variables,
            seed=self.seed,
            time_limit=self.time_limit,
            workers=self.workers,
            cache_size=self.cache_size,
            strict=self.strict,
        )

    @classmethod
    def from_hydra_config(cls, config: "HydraConfig", **serving: object) -> "RegenConfig":
        """Lift a legacy :class:`HydraConfig` into a :class:`RegenConfig`.

        The derived config round-trips: ``RegenConfig.from_hydra_config(c)
        .hydra_config() == c``, so legacy and new-style callers compute the
        same store fingerprints.
        """
        return cls(
            engine="hydra",
            strategy=config.strategy,
            prefer_integer=config.prefer_integer,
            milp_variable_limit=config.milp_variable_limit,
            time_limit=config.time_limit,
            max_grid_variables=config.max_grid_variables,
            max_region_variables=config.max_region_variables,
            workers=config.workers,
            cache_size=config.cache_size,
            use_processes=config.use_processes,
            strict=config.strict,
            **serving,  # type: ignore[arg-type]
        )

    @classmethod
    def from_datasynth_config(cls, config: "DataSynthConfig",
                              **serving: object) -> "RegenConfig":
        """Lift a legacy :class:`DataSynthConfig` into a :class:`RegenConfig`."""
        return cls(
            engine="datasynth",
            max_grid_variables=config.max_grid_variables,
            seed=config.seed,
            time_limit=config.time_limit,
            workers=config.workers,
            cache_size=config.cache_size,
            strict=config.strict,
            **serving,  # type: ignore[arg-type]
        )
