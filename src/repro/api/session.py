"""The :class:`Session` facade — one entry point for the whole pipeline.

The paper's workflow is one conceptual pipeline: extract cardinality
constraints at the client, summarize them at the vendor, regenerate data on
demand, verify volumetric similarity.  ``Session`` exposes exactly those
four verbs over one schema, one :class:`~repro.api.RegenConfig` and one
optional :class:`~repro.service.SummaryStore`, routing engine selection
through the pluggable backend registry::

    session = Session(schema, config=RegenConfig(workers=4))
    constraints = session.extract(client_db, workload)
    handle = session.summarize(constraints)            # SummaryHandle
    database = session.regenerate(handle, scale=10.0)  # DatabaseHandle (lazy)
    report = session.verify(database)                  # SimilarityReport

``session.serve()`` lifts the same configuration into a concurrent
:class:`~repro.service.RegenerationService` front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # service imports stay lazy to keep import order flexible
    from repro.service.service import RegenerationService
    from repro.service.store import SummaryStore

from repro.api.backends import PipelineBackend, create_backend
from repro.api.config import RegenConfig
from repro.constraints.workload import ConstraintSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plan import AnnotatedQueryPlan
from repro.engine.table import Table
from repro.errors import ServiceError
from repro.metrics.similarity import (
    SimilarityReport,
    evaluate_on_summary,
    evaluate_with_executor,
)
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary
from repro.tuplegen.generator import TupleGenerator, dynamic_database
from repro.workload.query import Workload


@dataclass(frozen=True)
class EpochDiff:
    """Per-component reuse report between two stored workload epochs.

    ``reused`` components are shared by both epochs (an incremental build of
    ``b`` from ``a`` serves them from cache with zero solves), ``added``
    exist only in epoch ``b``, ``retired`` only in epoch ``a``.
    """

    fingerprint_a: str
    fingerprint_b: str
    reused: tuple
    added: tuple
    retired: tuple

    @property
    def total(self) -> int:
        """Component count of epoch ``b``."""
        return len(self.reused) + len(self.added)

    @property
    def reuse_ratio(self) -> float:
        """Fraction of epoch ``b``'s components shared with epoch ``a``."""
        return len(self.reused) / self.total if self.total else 1.0


@dataclass(frozen=True)
class SummaryHandle:
    """A built database summary plus everything needed to reuse it.

    Carries the summary itself, the canonical store ``fingerprint`` of the
    request (engine- and config-namespaced), the constraints it was built
    from, and the backend's solver/timing ``diagnostics``.  ``from_store``
    records provenance: ``True`` when the build was served warm without
    running the pipeline.
    """

    summary: DatabaseSummary
    fingerprint: str
    engine: str
    config: RegenConfig
    schema: Schema
    constraints: Optional[ConstraintSet] = None
    diagnostics: Mapping[str, object] = field(default_factory=dict)
    from_store: bool = False

    def total_rows(self) -> int:
        """Tuples the summary regenerates to."""
        return self.summary.total_rows()

    def nbytes(self) -> int:
        """Approximate summary size in bytes."""
        return self.summary.nbytes()


class DatabaseHandle:
    """A lazily regenerated database, ready to execute and stream.

    Wraps a stream-attached :class:`~repro.engine.Database`: nothing is
    generated until first scan, and :meth:`execute` runs the configured
    (pipelined by default) executor so relations are never materialised
    however large the regenerated scale is.
    """

    def __init__(self, handle: SummaryHandle, database: Database,
                 summary: DatabaseSummary, config: RegenConfig,
                 batch_size: int, scale: float) -> None:
        self.handle = handle
        self.database = database
        #: The (possibly scaled) summary this database regenerates from.
        self.summary = summary
        self.config = config
        self.batch_size = batch_size
        #: Scale factor relative to the handle's summary (1.0 = as built).
        self.scale = scale
        #: Executor statistics of the most recent :meth:`execute` call.
        self.executor_stats = None

    def execute(self, workload: Workload,
                mode: Optional[str] = None) -> List[AnnotatedQueryPlan]:
        """Execute an AQP workload over the regenerated database."""
        executor = Executor(self.database, mode=mode or self.config.executor_mode)
        plans = executor.execute_workload(workload)
        self.executor_stats = executor.stats
        return plans

    def stream(self, relation: str, batch_size: Optional[int] = None,
               start_row: int = 1, stop_row: Optional[int] = None,
               ) -> Iterator[Table]:
        """Stream one relation in columnar batches (independent cursor)."""
        generator = TupleGenerator(self.summary.relation(relation))
        return generator.stream_range(start_row, stop_row,
                                      batch_size=batch_size or self.batch_size)

    def row_counts(self) -> Dict[str, int]:
        """Rows per relation — computed from the summary, nothing generated."""
        return self.database.row_counts()

    def materialize(self, relation: str) -> Table:
        """Materialise one relation as a columnar table (costs O(rows))."""
        return TupleGenerator(self.summary.relation(relation)).materialize()


class Session:
    """One configured regeneration pipeline: schema + config + store.

    Parameters
    ----------
    schema:
        The (anonymised) client schema.
    config:
        A :class:`RegenConfig`; defaults are the paper's Hydra settings.
    store:
        Optional :class:`~repro.service.SummaryStore` (or a directory path to
        open one at).  When given, summaries and LP component solutions are
        persisted and warm requests skip the pipeline.
    """

    def __init__(self, schema: Schema, config: Optional[RegenConfig] = None,
                 store: Union["SummaryStore", str, Path, None] = None) -> None:
        self.schema = schema
        self.config = config or RegenConfig()
        # Observability knobs apply to standalone sessions exactly as they
        # do to `serve()`: one registry per session, opt-in trace sampling,
        # opt-in JSON log handler.
        from repro.obs.logging import configure_logging
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import get_tracer

        self.registry = MetricsRegistry(enabled=self.config.obs_enabled)
        if self.config.trace_sample > 0.0:
            get_tracer().configure(sample=self.config.trace_sample)
        if self.config.log_format == "json":
            configure_logging(log_format="json")
        if store is None and (self.config.store_url or self.config.store_peers):
            # Cluster knobs without an explicit store: mount the network
            # backend with a memory-only local replica.
            from repro.cluster.factory import open_store

            store = open_store(None, config=self.config, registry=self.registry)
        elif store is not None and not hasattr(store, "get_summary"):
            from repro.cluster.factory import open_store

            # A path opens whichever backend the config's cluster knobs ask
            # for (plain disk by default) and inherits the session's
            # lifecycle caps, so `Session` and `Session.serve()` GC with the
            # same policy.
            store = open_store(store, config=self.config,
                               registry=self.registry)
        self.store = store
        self._backends: Dict[str, PipelineBackend] = {}

    # ------------------------------------------------------------------ #
    # the four pipeline verbs
    # ------------------------------------------------------------------ #
    def extract(self, database: Database, workload: Workload,
                include_sizes: bool = True) -> ConstraintSet:
        """Client side: execute ``workload`` on ``database`` and derive CCs.

        Runs through the configured executor mode (pipelined by default, so
        lazy client databases are never materialised).
        """
        from repro.hydra.client import extract_constraints

        package = extract_constraints(database, workload,
                                      include_sizes=include_sizes,
                                      executor_mode=self.config.executor_mode)
        return package.constraints

    def summarize(self, constraints: ConstraintSet,
                  engine: Optional[str] = None,
                  relations: Optional[Sequence[str]] = None) -> SummaryHandle:
        """Vendor side: build (or fetch warm) the database summary."""
        backend = self._backend(engine)
        fingerprint = backend.fingerprint(constraints, relations)
        build = backend.build(constraints, relations)
        return SummaryHandle(
            summary=build.summary,
            fingerprint=fingerprint,
            engine=backend.name,
            config=self.config,
            schema=self.schema,
            constraints=constraints,
            diagnostics=build.diagnostics,
            from_store=build.from_store,
        )

    def resummarize(self, base_fingerprint: str, constraints: ConstraintSet,
                    engine: Optional[str] = None,
                    relations: Optional[Sequence[str]] = None) -> SummaryHandle:
        """Incrementally re-summarize a drifted workload against a warm epoch.

        Diffs the drifted workload's component manifest against the base
        epoch's provenance, builds reusing every unchanged component's cached
        solution verbatim (only changed/new constraint-graph components are
        solved) and links the new epoch to its parent in the store.  The
        result is byte-identical to a cold :meth:`summarize` of the drifted
        workload; the handle's ``diagnostics`` carry the reuse report
        (``parent_fingerprint``, ``components_reused`` / ``_solved`` /
        ``_retired``).
        """
        if self.store is None:
            raise ServiceError("resummarize needs a store holding the base epoch")
        base_summary = self.store.get_summary(base_fingerprint)
        if base_summary is None:
            raise ServiceError(
                f"no stored summary for base fingerprint {base_fingerprint[:12]}…;"
                " summarize the base workload first"
            )
        from repro.service.fingerprint import manifest_diff

        backend = self._backend(engine)
        manifest_fn = getattr(backend.pipeline, "component_manifest", None)
        new_manifest: List[str] = []
        if manifest_fn is not None:
            per_relation = manifest_fn(constraints, relations)
            new_manifest = sorted(
                {key for keys in per_relation.values() for key in keys}
            )
        diff = manifest_diff(base_summary.component_manifest(), new_manifest)
        fingerprint = backend.fingerprint(constraints, relations)
        build = backend.build(constraints, relations)
        if fingerprint != base_fingerprint:
            link = getattr(self.store, "link_parent", None)
            if link is not None:
                link(fingerprint, base_fingerprint)
        diagnostics = dict(build.diagnostics)
        diagnostics.update({
            "parent_fingerprint": base_fingerprint,
            "components_reused": len(diff.reused),
            "components_solved": len(diff.added),
            "components_retired": len(diff.retired),
        })
        return SummaryHandle(
            summary=build.summary,
            fingerprint=fingerprint,
            engine=backend.name,
            config=self.config,
            schema=self.schema,
            constraints=constraints,
            diagnostics=diagnostics,
            from_store=build.from_store,
        )

    def diff(self, fingerprint_a: str, fingerprint_b: str) -> EpochDiff:
        """Per-component reuse report between two stored workload epochs."""
        if self.store is None:
            raise ServiceError("diff needs a store holding both epochs")
        from repro.service.fingerprint import manifest_diff

        summaries = []
        for fingerprint in (fingerprint_a, fingerprint_b):
            summary = self.store.get_summary(fingerprint)
            if summary is None:
                raise ServiceError(
                    f"no stored summary for fingerprint {fingerprint[:12]}…;"
                    " cannot diff epochs"
                )
            summaries.append(summary)
        report = manifest_diff(summaries[0].component_manifest(),
                               summaries[1].component_manifest())
        return EpochDiff(
            fingerprint_a=fingerprint_a,
            fingerprint_b=fingerprint_b,
            reused=tuple(report.reused),
            added=tuple(report.added),
            retired=tuple(report.retired),
        )

    def lineage(self, fingerprint: str) -> List[Mapping[str, object]]:
        """The epoch chain ending at ``fingerprint`` (newest first)."""
        if self.store is None:
            raise ServiceError("lineage needs a store")
        walk = getattr(self.store, "list_lineage", None)
        if walk is None:
            return [{"fingerprint": fingerprint,
                     "present": self.store.get_summary(fingerprint) is not None}]
        return walk(fingerprint)

    def load(self, fingerprint: str) -> SummaryHandle:
        """Rehydrate a handle for a fingerprint already in the store."""
        if self.store is None:
            raise ServiceError("session has no store to load summaries from")
        summary = self.store.get_summary(fingerprint)
        if summary is None:
            raise ServiceError(
                f"no stored summary for fingerprint {fingerprint[:12]}…"
            )
        return SummaryHandle(summary=summary, fingerprint=fingerprint,
                             engine=self.config.engine, config=self.config,
                             schema=self.schema, from_store=True)

    def regenerate(self, handle: Union[SummaryHandle, DatabaseSummary],
                   scale: Optional[float] = None,
                   batch_size: Optional[int] = None) -> DatabaseHandle:
        """Regenerate a lazy database from a summary handle.

        ``scale`` multiplies the regenerated volume (summary-row counts are
        scaled and foreign keys remapped — see
        :func:`repro.codd.scaling.scale_summary`); the returned database is
        stream-attached, so nothing is generated until first scan.
        """
        if isinstance(handle, DatabaseSummary):
            handle = SummaryHandle(summary=handle, fingerprint="",
                                   engine=self.config.engine,
                                   config=self.config, schema=self.schema)
        summary = handle.summary
        if scale is not None and scale != 1.0:
            from repro.codd.scaling import scale_summary

            summary = scale_summary(summary, self.schema, scale)
        batch = batch_size or self.config.batch_size
        database = dynamic_database(
            summary, self.schema, batch_size=batch,
            name=f"regen-{handle.fingerprint[:12] or handle.engine}",
        )
        return DatabaseHandle(handle, database, summary, self.config,
                              batch_size=batch, scale=scale or 1.0)

    def verify(self, handle: Union[SummaryHandle, DatabaseHandle],
               constraints: Optional[ConstraintSet] = None,
               mode: Optional[str] = None) -> SimilarityReport:
        """Volumetric-similarity check of a summary or regenerated database.

        A :class:`SummaryHandle` is evaluated analytically (scale-free); a
        :class:`DatabaseHandle` is evaluated through the engine, streaming
        batch-at-a-time by default.  ``constraints`` defaults to the ones the
        handle was summarized from — scaled by the database's regeneration
        factor (the Section 7.4 arithmetic), so a 10x regeneration verifies
        against 10x the cardinalities.  Explicit ``constraints`` are
        evaluated as given.
        """
        if constraints is None:
            source = handle.handle if isinstance(handle, DatabaseHandle) else handle
            constraints = source.constraints
            if constraints is None:
                raise ServiceError(
                    "verify needs an explicit constraint set: this handle was"
                    " not built from one (e.g. loaded from the store)"
                )
            if isinstance(handle, DatabaseHandle) and handle.scale != 1.0:
                from repro.codd.scaling import scale_constraints

                constraints = scale_constraints(constraints, handle.scale)
        if isinstance(handle, DatabaseHandle):
            executor = Executor(handle.database,
                                mode=mode or self.config.executor_mode)
            report = evaluate_with_executor(constraints, executor)
            handle.executor_stats = executor.stats
            return report
        return evaluate_on_summary(constraints, handle.summary, self.schema)

    # ------------------------------------------------------------------ #
    # serving and identity
    # ------------------------------------------------------------------ #
    def serve(self, max_workers: Optional[int] = None,
              max_pending: Optional[int] = None,
              max_pending_per_tenant: Optional[int] = None,
              gc_interval: Optional[float] = None) -> "RegenerationService":
        """Lift this session into a concurrent serving front-end.

        The service shares the session's schema, store and config — including
        the engine selection, the admission knobs (``max_pending``,
        ``max_pending_per_tenant``) and the store lifecycle knobs
        (``max_store_bytes``/``max_entries``/``ttl_seconds``/``gc_interval``)
        — so submissions and session-built summaries hit the same
        fingerprints and the same GC policy.
        """
        from repro.service.service import RegenerationService

        config = self.config
        return RegenerationService(
            self.schema,
            store=self.store,
            config=config,
            max_workers=max_workers or config.max_workers,
            engine=config.engine,
            max_pending=config.max_pending if max_pending is None else max_pending,
            max_pending_per_tenant=config.max_pending_per_tenant
            if max_pending_per_tenant is None else max_pending_per_tenant,
            gc_interval=config.gc_interval if gc_interval is None else gc_interval,
        )

    def fingerprint(self, constraints: ConstraintSet,
                    relations: Optional[Sequence[str]] = None,
                    engine: Optional[str] = None) -> str:
        """The store/dedup fingerprint this session assigns to a request."""
        return self._backend(engine).fingerprint(constraints, relations)

    def _backend(self, engine: Optional[str] = None) -> PipelineBackend:
        name = engine or self.config.engine
        backend = self._backends.get(name)
        if backend is None:
            backend = create_backend(name, self.schema, self.config, self.store)
            # Re-home the engine's solver telemetry onto the session registry
            # so one export covers store + solver (the service does the same).
            from repro.lp.solver import SolverStats

            solver = getattr(backend.pipeline, "solver", None)
            if solver is not None and isinstance(getattr(solver, "stats", None),
                                                SolverStats):
                solver.stats = SolverStats(registry=self.registry)
            self._backends[name] = backend
        return backend
