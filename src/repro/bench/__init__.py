"""Benchmark telemetry: schema-versioned, machine-readable perf records.

Every ``benchmarks/bench_*.py`` routes its measurements through a
:class:`~repro.bench.recorder.BenchRecorder` and persists them atomically as
``BENCH_<name>.json`` next to the benchmark file.  The committed JSONs form
the repository's *perf trajectory*: ``tools/bench_compare.py`` diffs a fresh
run against them and fails CI when a metric regresses beyond the tolerance
declared at record time.  See ``docs/BENCHMARKS.md`` for the workflow.
"""

from repro.bench.compare import (
    CLASS_BETTER,
    CLASS_MISSING_BENCHMARK,
    CLASS_MISSING_METRIC,
    CLASS_NEW_BENCHMARK,
    CLASS_NEW_METRIC,
    CLASS_REGRESSED,
    CLASS_SKIPPED,
    CLASS_WITHIN_NOISE,
    BenchComparison,
    MetricVerdict,
    classify_metric,
    compare_dirs,
    compare_records,
    markdown_report,
)
from repro.bench.recorder import (
    DIRECTION_HIGHER,
    DIRECTION_INFO,
    DIRECTION_LOWER,
    SCHEMA_VERSION,
    BenchRecorder,
    Metric,
    environment_tags,
    load_record,
    record_filename,
)

__all__ = [
    "SCHEMA_VERSION",
    "DIRECTION_LOWER",
    "DIRECTION_HIGHER",
    "DIRECTION_INFO",
    "Metric",
    "BenchRecorder",
    "environment_tags",
    "load_record",
    "record_filename",
    "classify_metric",
    "compare_records",
    "compare_dirs",
    "markdown_report",
    "MetricVerdict",
    "BenchComparison",
    "CLASS_BETTER",
    "CLASS_WITHIN_NOISE",
    "CLASS_REGRESSED",
    "CLASS_MISSING_METRIC",
    "CLASS_NEW_METRIC",
    "CLASS_MISSING_BENCHMARK",
    "CLASS_NEW_BENCHMARK",
    "CLASS_SKIPPED",
]
