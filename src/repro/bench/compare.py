"""Comparison side of the benchmark telemetry layer.

Diffs a fresh set of ``BENCH_*.json`` records against a baseline set and
classifies every metric using the direction and tolerance *declared at record
time*:

* ``better`` — improved beyond the noise band;
* ``within_noise`` — inside the declared tolerance (either way);
* ``regressed`` — degraded beyond the tolerance (the CI-failing class);
* ``missing_metric`` / ``missing_benchmark`` — present in the baseline but
  absent from the fresh run (a silently dropped measurement also fails CI:
  a trajectory with holes cannot catch regressions);
* ``new_metric`` / ``new_benchmark`` — present only in the fresh run;
* ``skipped`` — environments not comparable (quick vs full scale).

``tools/bench_compare.py`` is the CLI wrapper used by the CI
``bench-trajectory`` job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.bench.recorder import (
    DIRECTION_HIGHER,
    DIRECTION_INFO,
    DIRECTION_LOWER,
    Metric,
    load_record,
)

CLASS_BETTER = "better"
CLASS_WITHIN_NOISE = "within_noise"
CLASS_REGRESSED = "regressed"
CLASS_MISSING_METRIC = "missing_metric"
CLASS_NEW_METRIC = "new_metric"
CLASS_MISSING_BENCHMARK = "missing_benchmark"
CLASS_NEW_BENCHMARK = "new_benchmark"
CLASS_SKIPPED = "skipped"

#: Classes that make ``bench_compare`` exit 2: genuine degradations and
#: silently vanished measurements.
FAILING_CLASSES = (CLASS_REGRESSED, CLASS_MISSING_METRIC, CLASS_MISSING_BENCHMARK)


@dataclass
class MetricVerdict:
    """Classification of one metric of one benchmark."""

    benchmark: str
    metric: str
    verdict: str
    baseline: Optional[float] = None
    fresh: Optional[float] = None
    unit: str = ""
    detail: str = ""

    @property
    def delta_pct(self) -> Optional[float]:
        """Relative change in percent, when both values exist."""
        if self.baseline is None or self.fresh is None:
            return None
        if self.baseline == 0:
            return None if self.fresh == 0 else float("inf")
        return 100.0 * (self.fresh - self.baseline) / abs(self.baseline)


@dataclass
class BenchComparison:
    """All verdicts of a baseline-vs-fresh comparison."""

    verdicts: List[MetricVerdict] = field(default_factory=list)

    def by_class(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.verdict] = counts.get(verdict.verdict, 0) + 1
        return counts

    def failures(self) -> List[MetricVerdict]:
        """The verdicts that should fail the gate."""
        return [v for v in self.verdicts if v.verdict in FAILING_CLASSES]

    @property
    def ok(self) -> bool:
        return not self.failures()


def classify_metric(baseline: Optional[Metric],
                    fresh: Optional[Metric]) -> Tuple[str, str]:
    """Classify one metric pair; returns ``(class, detail)``.

    Direction and tolerances are taken from the *fresh* metric when present
    (the declaration travels with the code that records it), falling back to
    the baseline's for ``missing_metric`` bookkeeping.
    """
    if fresh is None and baseline is None:
        raise ValueError("classify_metric needs at least one side")
    if fresh is None:
        return CLASS_MISSING_METRIC, "metric vanished from the fresh run"
    if baseline is None:
        return CLASS_NEW_METRIC, "no baseline yet"
    if fresh.direction == DIRECTION_INFO:
        return CLASS_WITHIN_NOISE, "informational"

    band = fresh.tolerance * abs(baseline.value) + fresh.abs_tolerance
    delta = fresh.value - baseline.value
    if fresh.direction == DIRECTION_LOWER:
        degraded, improved = delta > band, delta < -band
    elif fresh.direction == DIRECTION_HIGHER:
        degraded, improved = delta < -band, delta > band
    else:  # pragma: no cover - Metric.__post_init__ rejects other values
        raise ValueError(f"unknown direction {fresh.direction!r}")
    if degraded:
        return CLASS_REGRESSED, (
            f"{baseline.value:g} -> {fresh.value:g} exceeds tolerance"
            f" ({fresh.tolerance:.0%} + {fresh.abs_tolerance:g})"
        )
    if improved:
        return CLASS_BETTER, f"{baseline.value:g} -> {fresh.value:g}"
    return CLASS_WITHIN_NOISE, ""


def compare_records(baseline: Dict[str, object],
                    fresh: Dict[str, object]) -> List[MetricVerdict]:
    """Compare two loaded ``BENCH_*.json`` payloads metric by metric."""
    name = str(fresh.get("benchmark") or baseline.get("benchmark"))
    baseline_env = baseline.get("environment", {})
    fresh_env = fresh.get("environment", {})
    if baseline_env.get("scale") != fresh_env.get("scale"):  # type: ignore[union-attr]
        return [MetricVerdict(
            benchmark=name, metric="*", verdict=CLASS_SKIPPED,
            detail=(f"environment mismatch: baseline scale="
                    f"{baseline_env.get('scale')!r}, fresh scale="  # type: ignore[union-attr]
                    f"{fresh_env.get('scale')!r}"),  # type: ignore[union-attr]
        )]

    baseline_metrics = {n: Metric.from_dict(n, p)
                        for n, p in baseline["metrics"].items()}  # type: ignore[union-attr]
    fresh_metrics = {n: Metric.from_dict(n, p)
                     for n, p in fresh["metrics"].items()}  # type: ignore[union-attr]
    verdicts: List[MetricVerdict] = []
    for metric_name in sorted(set(baseline_metrics) | set(fresh_metrics)):
        b = baseline_metrics.get(metric_name)
        f = fresh_metrics.get(metric_name)
        verdict, detail = classify_metric(b, f)
        source = f or b
        verdicts.append(MetricVerdict(
            benchmark=name, metric=metric_name, verdict=verdict,
            baseline=None if b is None else b.value,
            fresh=None if f is None else f.value,
            unit=source.unit if source else "", detail=detail,
        ))
    return verdicts


def compare_dirs(baseline_dir: Union[str, Path],
                 fresh_dir: Union[str, Path]) -> BenchComparison:
    """Compare every ``BENCH_*.json`` under two directories."""
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    baseline_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    fresh_files = {p.name: p for p in sorted(fresh_dir.glob("BENCH_*.json"))}

    comparison = BenchComparison()
    for filename in sorted(set(baseline_files) | set(fresh_files)):
        stem = filename[len("BENCH_"):-len(".json")]
        if filename not in fresh_files:
            comparison.verdicts.append(MetricVerdict(
                benchmark=stem, metric="*", verdict=CLASS_MISSING_BENCHMARK,
                detail=f"{filename} missing from the fresh run"))
            continue
        if filename not in baseline_files:
            comparison.verdicts.append(MetricVerdict(
                benchmark=stem, metric="*", verdict=CLASS_NEW_BENCHMARK,
                detail=f"{filename} has no committed baseline yet"))
            continue
        comparison.verdicts.extend(compare_records(
            load_record(baseline_files[filename]),
            load_record(fresh_files[filename]),
        ))
    return comparison


def markdown_report(comparison: BenchComparison) -> str:
    """Render the comparison as a markdown summary table."""
    lines = ["| benchmark | metric | baseline | fresh | Δ | verdict |",
             "|---|---|---:|---:|---:|---|"]
    marks = {CLASS_BETTER: "✅ better", CLASS_WITHIN_NOISE: "· within noise",
             CLASS_REGRESSED: "❌ REGRESSED", CLASS_MISSING_METRIC: "❌ missing",
             CLASS_MISSING_BENCHMARK: "❌ missing benchmark",
             CLASS_NEW_METRIC: "🆕 new", CLASS_NEW_BENCHMARK: "🆕 new benchmark",
             CLASS_SKIPPED: "⏭ skipped"}

    def fmt(value: Optional[float], unit: str) -> str:
        if value is None:
            return "—"
        text = f"{value:,.4g}"
        return f"{text} {unit}".strip()

    for v in comparison.verdicts:
        delta = v.delta_pct
        delta_text = "—" if delta is None else f"{delta:+.1f}%"
        verdict_text = marks.get(v.verdict, v.verdict)
        if v.detail and v.verdict in (*FAILING_CLASSES, CLASS_SKIPPED):
            verdict_text += f" — {v.detail}"
        lines.append(f"| {v.benchmark} | {v.metric} | {fmt(v.baseline, v.unit)}"
                     f" | {fmt(v.fresh, v.unit)} | {delta_text} | {verdict_text} |")

    counts = comparison.by_class()
    summary = ", ".join(f"{counts[c]} {c}" for c in sorted(counts))
    lines.append("")
    lines.append(f"**{len(comparison.verdicts)} metrics: {summary or 'none'}.**")
    return "\n".join(lines)
