"""Recording side of the benchmark telemetry layer.

A :class:`BenchRecorder` collects named metrics — each with a unit, an
optimisation *direction* and a noise *tolerance* declared at record time —
plus environment tags (quick vs full scale, python version, cpu count), and
writes them atomically as a schema-versioned ``BENCH_<name>.json``.  The
committed JSONs are the repo's perf trajectory; :mod:`repro.bench.compare`
classifies a fresh run against them.

Durations MUST be wall-clock.  Use :meth:`BenchRecorder.time` (a
``perf_counter`` stopwatch) or record an explicitly wall-clock measurement;
never sum per-task ``solve_seconds`` that may overlap under a worker pool
(the double-count bug class ``HydraResult.lp_wall_seconds`` exists to avoid).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

from contextlib import contextmanager

#: Bump when the JSON layout changes shape incompatibly.  ``compare`` refuses
#: to diff records with mismatched schema versions.
SCHEMA_VERSION = 1

#: Smaller is better (timings, memory, summary bytes, extra tuples).
DIRECTION_LOWER = "lower"
#: Larger is better (throughput, cache hit rates, fidelity fractions).
DIRECTION_HIGHER = "higher"
#: Tracked for the trajectory but never classified as a regression
#: (environment-derived counts, baselines of the *other* system, ...).
DIRECTION_INFO = "info"

DIRECTIONS = (DIRECTION_LOWER, DIRECTION_HIGHER, DIRECTION_INFO)

#: Default relative noise band for timing metrics: shared CI runners are
#: noisy, so a duration only regresses beyond +50% and an absolute floor.
TIME_REL_TOLERANCE = 0.50
TIME_ABS_TOLERANCE = 0.25


@dataclass(frozen=True)
class Metric:
    """One recorded measurement plus its comparison contract.

    ``tolerance`` is the relative noise band (fraction of the baseline
    value); ``abs_tolerance`` is an absolute slack added on top, which keeps
    near-zero baselines (sub-second timings) from regressing on timer noise.
    """

    name: str
    value: float
    unit: str = ""
    direction: str = DIRECTION_LOWER
    tolerance: float = 0.0
    abs_tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction must be one of {DIRECTIONS},"
                f" got {self.direction!r}"
            )
        if self.tolerance < 0 or self.abs_tolerance < 0:
            raise ValueError(f"metric {self.name!r}: tolerances must be >= 0")
        if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
            raise ValueError(f"metric {self.name!r}: value must be a number,"
                             f" got {type(self.value).__name__}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "value": float(self.value),
            "unit": self.unit,
            "direction": self.direction,
            "tolerance": float(self.tolerance),
            "abs_tolerance": float(self.abs_tolerance),
        }

    @classmethod
    def from_dict(cls, name: str, payload: Mapping[str, object]) -> "Metric":
        return cls(
            name=name,
            value=float(payload["value"]),  # type: ignore[arg-type]
            unit=str(payload.get("unit", "")),
            direction=str(payload.get("direction", DIRECTION_LOWER)),
            tolerance=float(payload.get("tolerance", 0.0)),  # type: ignore[arg-type]
            abs_tolerance=float(payload.get("abs_tolerance", 0.0)),  # type: ignore[arg-type]
        )


def environment_tags(quick: bool) -> Dict[str, object]:
    """Tags describing the run environment.

    ``scale`` is the only tag that gates comparison (quick-mode numbers are
    never compared against full-scale baselines); the rest are provenance.
    """
    return {
        "scale": "quick" if quick else "full",
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.system().lower(),
    }


def record_filename(name: str) -> str:
    """``BENCH_<name>.json`` for a benchmark called ``name``."""
    return f"BENCH_{name}.json"


class BenchRecorder:
    """Collects one benchmark file's metrics and persists them atomically.

    Parameters
    ----------
    name:
        Benchmark name, by convention the ``bench_*.py`` stem without the
        ``bench_`` prefix (``fig11_extra_tuples`` → ``BENCH_fig11_extra_tuples.json``).
    quick:
        Whether this run used the shrunken quick-mode environment.
    """

    def __init__(self, name: str, quick: bool = False) -> None:
        if not name:
            raise ValueError("benchmark name must be non-empty")
        self.name = name
        self.quick = quick
        self.metrics: Dict[str, Metric] = {}

    def record(self, name: str, value: Union[int, float], *, unit: str = "",
               direction: str = DIRECTION_LOWER, tolerance: float = 0.0,
               abs_tolerance: float = 0.0) -> Metric:
        """Record a metric; re-recording the same name overwrites it."""
        metric = Metric(name=name, value=float(value), unit=unit,
                        direction=direction, tolerance=tolerance,
                        abs_tolerance=abs_tolerance)
        self.metrics[name] = metric
        return metric

    @contextmanager
    def time(self, name: str, *, tolerance: float = TIME_REL_TOLERANCE,
             abs_tolerance: float = TIME_ABS_TOLERANCE) -> Iterator[None]:
        """Record the enclosed block's *wall-clock* duration in seconds.

        This is the harness's one true stopwatch: ``perf_counter`` around the
        block, so concurrent per-task timings can never double-count.
        """
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started, unit="s",
                        direction=DIRECTION_LOWER, tolerance=tolerance,
                        abs_tolerance=abs_tolerance)

    def record_seconds(self, name: str, seconds: float, *,
                       tolerance: float = TIME_REL_TOLERANCE,
                       abs_tolerance: float = TIME_ABS_TOLERANCE) -> Metric:
        """Record an externally measured *wall-clock* duration.

        Only pass durations measured by a single stopwatch around the whole
        phase (``Timer``, ``total_seconds``, ``lp_wall_seconds``...), never a
        sum of per-task timings that may overlap under a worker pool.
        """
        return self.record(name, seconds, unit="s", direction=DIRECTION_LOWER,
                           tolerance=tolerance, abs_tolerance=abs_tolerance)

    def to_dict(self) -> Dict[str, object]:
        """The full record in its on-disk (schema-versioned) shape."""
        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": self.name,
            "environment": environment_tags(self.quick),
            "metrics": {name: metric.to_dict()
                        for name, metric in sorted(self.metrics.items())},
        }

    def write(self, directory: Union[str, Path]) -> Path:
        """Atomically write ``BENCH_<name>.json`` into ``directory``.

        The payload goes to a temp file in the same directory first and is
        moved into place with ``os.replace``, so a crash mid-write can never
        leave a torn JSON at the target path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / record_filename(self.name)
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        fd, tmp_name = tempfile.mkstemp(dir=str(directory),
                                        prefix=target.name + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return target


def load_record(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate a ``BENCH_*.json`` record.

    Raises ``ValueError`` on a malformed record (bad JSON, wrong schema
    version, missing fields) — a torn or hand-edited baseline should fail
    loudly, not silently pass the comparison.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"{path}: schema_version {version!r} !="
                         f" supported {SCHEMA_VERSION}")
    for field in ("benchmark", "environment", "metrics"):
        if field not in payload:
            raise ValueError(f"{path}: missing field {field!r}")
    if not isinstance(payload["benchmark"], str):
        raise ValueError(f"{path}: 'benchmark' must be a string")
    if not isinstance(payload["environment"], dict):
        raise ValueError(f"{path}: 'environment' must be an object")
    metrics = payload["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: 'metrics' must be an object")
    for name, entry in metrics.items():
        Metric.from_dict(name, entry)  # validates
    return payload
