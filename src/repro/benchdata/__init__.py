"""Benchmark environments: TPC-DS-like and JOB-like schemas, data generators
and workload factories."""

from repro.benchdata import job, tpcds
from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import (
    FACT_RELATIONS,
    LARGEST_RELATIONS,
    complex_workload,
    simple_workload,
    tpcds_schema,
)

__all__ = [
    "generate_database",
    "tpcds",
    "job",
    "tpcds_schema",
    "complex_workload",
    "simple_workload",
    "FACT_RELATIONS",
    "LARGEST_RELATIONS",
    "job_schema",
    "job_workload",
]
