"""Synthetic "client" database generation.

The paper runs against a 100 GB TPC-DS instance hosted in PostgreSQL; that
substrate is replaced here by seeded random instances of the benchmark-like
schemas, generated directly into the in-memory engine.  The generator only
needs to produce *plausible* data — the regeneration pipeline never sees the
data itself, only the schema and the cardinality constraints measured on it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.engine.database import Database
from repro.engine.table import Table
from repro.schema.relation import Relation
from repro.schema.schema import Schema


def generate_database(schema: Schema, seed: int = 0,
                      row_counts: Optional[Mapping[str, int]] = None,
                      skew: float = 0.0,
                      name: str = "client") -> Database:
    """Generate a random database instance for ``schema``.

    Parameters
    ----------
    schema:
        The schema to instantiate.  Relations are generated in topological
        order so foreign keys always reference existing primary keys.
    seed:
        Seed for the deterministic random generator.
    row_counts:
        Overrides for per-relation row counts (defaults to the schema's
        nominal counts).
    skew:
        Zipf-like skew applied to attribute values and foreign keys;
        ``0.0`` gives uniform data, larger values concentrate mass on small
        values, which is closer to real warehouse distributions.
    """
    rng = np.random.default_rng(seed)
    counts = dict(row_counts or {})
    database = Database(schema, name=name)

    for relation_name in schema.topological_order():
        relation = schema.relation(relation_name)
        num_rows = int(counts.get(relation_name, relation.row_count))
        database.attach(relation_name, _generate_relation(relation, num_rows, database, rng, skew))
    return database


def _generate_relation(relation: Relation, num_rows: int, database: Database,
                       rng: np.random.Generator, skew: float) -> Table:
    columns: Dict[str, np.ndarray] = {
        relation.primary_key: np.arange(1, num_rows + 1, dtype=np.int64)
    }
    for fk in relation.foreign_keys:
        parent_rows = database.table(fk.target).num_rows
        columns[fk.column] = _random_values(rng, 1, parent_rows + 1, num_rows, skew)
    for attribute in relation.attributes:
        columns[attribute.name] = _random_values(
            rng, attribute.domain.lo, attribute.domain.hi, num_rows, skew
        )
    return Table(columns, name=relation.name)


def _random_values(rng: np.random.Generator, lo: int, hi: int, size: int,
                   skew: float) -> np.ndarray:
    """Draw integer values in ``[lo, hi)`` — uniformly or with a mild skew."""
    if hi <= lo:
        return np.full(size, lo, dtype=np.int64)
    if skew <= 0.0:
        return rng.integers(lo, hi, size=size, dtype=np.int64)
    # Skewed draw: map a beta-distributed fraction onto the domain so that
    # small values are more frequent while every value stays reachable.
    fractions = rng.beta(1.0, 1.0 + skew, size=size)
    values = lo + np.floor(fractions * (hi - lo)).astype(np.int64)
    return np.clip(values, lo, hi - 1)
