"""A JOB-like (IMDB) schema and workload (Section 7.6).

The Join Order Benchmark runs over the IMDB dataset, whose schema is
structurally very different from TPC-DS: several association ("fact-like")
relations hang off the ``title`` relation, dimensions are tiny type tables,
and the dependency graph is a DAG rather than a star.  The paper uses a
260-query workload over it to show Hydra's behaviour is not a TPC-DS
artefact; this module provides an equivalent synthetic environment.
"""

from __future__ import annotations

from typing import Dict

from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.workload.generator import WorkloadGenerator, WorkloadProfile
from repro.workload.query import Workload

#: Nominal row counts of the IMDB snapshot used by JOB.
NOMINAL_ROW_COUNTS: Dict[str, int] = {
    "kind_type": 7,
    "company_type": 4,
    "company_name": 234_997,
    "keyword": 134_170,
    "name": 4_167_491,
    "role_type": 12,
    "info_type": 113,
    "title": 2_528_312,
    "aka_name": 901_343,
    "movie_companies": 2_609_129,
    "movie_info": 14_835_720,
    "movie_info_idx": 1_380_035,
    "movie_keyword": 4_523_930,
    "cast_info": 36_244_344,
}

#: The association relations used as query roots.
ROOT_RELATIONS = (
    "movie_companies",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "cast_info",
)


def _attr(name: str, lo: int, hi: int) -> Attribute:
    return Attribute(name=name, domain=Interval(lo, hi))


def job_schema(scale_factor: float = 1.0) -> Schema:
    """Build the JOB-like schema, optionally scaling all row counts."""

    def rows(name: str) -> int:
        return max(4, int(round(NOMINAL_ROW_COUNTS[name] * scale_factor)))

    relations = [
        Relation(
            name="kind_type", primary_key="kt_id", row_count=rows("kind_type"),
            attributes=[_attr("kt_kind", 1, 8)],
        ),
        Relation(
            name="company_type", primary_key="ct_id", row_count=rows("company_type"),
            attributes=[_attr("ct_kind", 1, 5)],
        ),
        Relation(
            name="company_name", primary_key="cn_id", row_count=rows("company_name"),
            attributes=[
                _attr("cn_country_code", 1, 227),
                _attr("cn_name_group", 1, 1_000),
            ],
        ),
        Relation(
            name="keyword", primary_key="k_id", row_count=rows("keyword"),
            attributes=[_attr("k_keyword_group", 1, 1_000)],
        ),
        Relation(
            name="name", primary_key="n_id", row_count=rows("name"),
            attributes=[
                _attr("n_gender", 0, 3),
                _attr("n_name_group", 1, 1_000),
            ],
        ),
        Relation(
            name="role_type", primary_key="rt_id", row_count=rows("role_type"),
            attributes=[_attr("rt_role", 1, 13)],
        ),
        Relation(
            name="info_type", primary_key="it_id", row_count=rows("info_type"),
            attributes=[_attr("it_info", 1, 114)],
        ),
        Relation(
            name="title", primary_key="t_id", row_count=rows("title"),
            foreign_keys=[ForeignKey(column="t_kind_id", target="kind_type")],
            attributes=[
                _attr("t_production_year", 1880, 2021),
                _attr("t_phonetic_group", 1, 1_000),
                _attr("t_season_nr", 0, 100),
            ],
        ),
        Relation(
            name="aka_name", primary_key="an_id", row_count=rows("aka_name"),
            foreign_keys=[ForeignKey(column="an_person_id", target="name")],
            attributes=[_attr("an_name_group", 1, 1_000)],
        ),
        Relation(
            name="movie_companies", primary_key="mc_id", row_count=rows("movie_companies"),
            foreign_keys=[
                ForeignKey(column="mc_movie_id", target="title"),
                ForeignKey(column="mc_company_id", target="company_name"),
                ForeignKey(column="mc_company_type_id", target="company_type"),
            ],
            attributes=[_attr("mc_note_group", 0, 4)],
        ),
        Relation(
            name="movie_info", primary_key="mi_id", row_count=rows("movie_info"),
            foreign_keys=[
                ForeignKey(column="mi_movie_id", target="title"),
                ForeignKey(column="mi_info_type_id", target="info_type"),
            ],
            attributes=[_attr("mi_info_group", 1, 1_000)],
        ),
        Relation(
            name="movie_info_idx", primary_key="mi_idx_id", row_count=rows("movie_info_idx"),
            foreign_keys=[
                ForeignKey(column="mii_movie_id", target="title"),
                ForeignKey(column="mii_info_type_id", target="info_type"),
            ],
            attributes=[_attr("mii_rating", 0, 101)],
        ),
        Relation(
            name="movie_keyword", primary_key="mk_id", row_count=rows("movie_keyword"),
            foreign_keys=[
                ForeignKey(column="mk_movie_id", target="title"),
                ForeignKey(column="mk_keyword_id", target="keyword"),
            ],
            attributes=[],
        ),
        Relation(
            name="cast_info", primary_key="ci_id", row_count=rows("cast_info"),
            foreign_keys=[
                ForeignKey(column="ci_movie_id", target="title"),
                ForeignKey(column="ci_person_id", target="name"),
                ForeignKey(column="ci_role_id", target="role_type"),
            ],
            attributes=[_attr("ci_nr_order", 0, 1_000)],
        ),
    ]
    return Schema(relations, name="job")


def job_workload(schema: Schema, num_queries: int = 260, seed: int = 17) -> Workload:
    """The JOB-style workload: 260 star queries over the association
    relations, filtering production years, country codes, kinds, genders and
    info types, as in the paper's Section 7.6."""
    profile = WorkloadProfile(
        num_queries=num_queries,
        root_relations=ROOT_RELATIONS,
        max_joined_dimensions=3,
        max_filters_per_query=3,
        max_attributes_per_filter=2,
        max_total_filter_attributes=4,
        distinct_constants=10,
        disjunct_probability=0.1,
        dimension_filter_probability=0.8,
    )
    return WorkloadGenerator(schema, profile, seed=seed).generate(name="JOB")
