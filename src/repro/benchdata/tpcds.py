"""A TPC-DS-like decision-support schema and its workloads.

This module provides a from-scratch stand-in for the TPC-DS environment used
in the paper's evaluation: the same star/snowflake shape (five fact tables,
shared dimensions, one snowflaked dimension chain), nominal row counts that
approximate the 100 GB scale factor, and workload factories for the complex
(``WLc``) and simplified (``WLs``) query sets of Section 7.

All attribute values are integers (the anonymiser maps client strings to
integer codes before they reach the vendor), and attribute names carry the
standard TPC-DS prefixes so they are globally unique.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.workload.generator import WorkloadGenerator, WorkloadProfile
from repro.workload.query import Workload

#: Nominal row counts approximating the 100 GB TPC-DS scale factor.
NOMINAL_ROW_COUNTS: Dict[str, int] = {
    "date_dim": 73_049,
    "item": 204_000,
    "customer_address": 1_000_000,
    "customer": 2_000_000,
    "customer_demographics": 1_920_800,
    "household_demographics": 7_200,
    "store": 402,
    "promotion": 1_000,
    "warehouse": 15,
    "web_site": 24,
    "catalog_page": 20_400,
    "store_sales": 288_000_000,
    "store_returns": 28_800_000,
    "catalog_sales": 144_000_000,
    "web_sales": 72_000_000,
    "inventory": 399_330_000,
}

#: The five largest relations of the 100 GB instance (Figure 15).
LARGEST_RELATIONS = ("store_returns", "web_sales", "inventory", "catalog_sales", "store_sales")

#: Fact relations (scaled linearly with the target size).
FACT_RELATIONS = ("store_sales", "store_returns", "catalog_sales", "web_sales", "inventory")


def _attr(name: str, lo: int, hi: int) -> Attribute:
    return Attribute(name=name, domain=Interval(lo, hi))


def tpcds_schema(scale_factor: float = 1.0, dimension_scale: Optional[float] = None) -> Schema:
    """Build the TPC-DS-like schema.

    Parameters
    ----------
    scale_factor:
        Multiplier applied to the fact-table row counts (1.0 corresponds to
        the paper's 100 GB baseline).
    dimension_scale:
        Multiplier for dimension tables; defaults to ``min(1, scale_factor)``
        so small test instances stay small while full-scale runs keep the
        realistic dimension sizes.
    """
    if dimension_scale is None:
        dimension_scale = min(1.0, scale_factor)

    def rows(name: str) -> int:
        base = NOMINAL_ROW_COUNTS[name]
        factor = scale_factor if name in FACT_RELATIONS else dimension_scale
        return max(8, int(round(base * factor)))

    relations = [
        Relation(
            name="date_dim", primary_key="d_date_sk", row_count=rows("date_dim"),
            attributes=[
                _attr("d_year", 1998, 2004),
                _attr("d_moy", 1, 13),
                _attr("d_dom", 1, 29),
                _attr("d_qoy", 1, 5),
                _attr("d_day_of_week", 1, 8),
                _attr("d_month_seq", 0, 2400),
            ],
        ),
        Relation(
            name="item", primary_key="i_item_sk", row_count=rows("item"),
            attributes=[
                _attr("i_category", 1, 11),
                _attr("i_class", 1, 101),
                _attr("i_brand", 1, 1001),
                _attr("i_manufact", 1, 1001),
                _attr("i_current_price", 0, 10_000),
                _attr("i_wholesale_cost", 0, 8_000),
                _attr("i_size", 1, 8),
                _attr("i_color", 1, 93),
            ],
        ),
        Relation(
            name="customer_address", primary_key="ca_address_sk",
            row_count=rows("customer_address"),
            attributes=[
                _attr("ca_state", 1, 52),
                _attr("ca_county", 1, 1852),
                _attr("ca_gmt_offset", 0, 12),
                _attr("ca_location_type", 1, 4),
            ],
        ),
        Relation(
            name="customer", primary_key="c_customer_sk", row_count=rows("customer"),
            foreign_keys=[ForeignKey(column="c_current_addr_sk", target="customer_address")],
            attributes=[
                _attr("c_birth_year", 1924, 1993),
                _attr("c_birth_month", 1, 13),
                _attr("c_salutation", 1, 7),
                _attr("c_preferred_cust_flag", 0, 2),
            ],
        ),
        Relation(
            name="customer_demographics", primary_key="cd_demo_sk",
            row_count=rows("customer_demographics"),
            attributes=[
                _attr("cd_gender", 0, 2),
                _attr("cd_marital_status", 1, 6),
                _attr("cd_education_status", 1, 8),
                _attr("cd_purchase_estimate", 500, 10_000),
                _attr("cd_dep_count", 0, 7),
            ],
        ),
        Relation(
            name="household_demographics", primary_key="hd_demo_sk",
            row_count=rows("household_demographics"),
            attributes=[
                _attr("hd_income_band", 1, 21),
                _attr("hd_buy_potential", 1, 7),
                _attr("hd_dep_count", 0, 10),
                _attr("hd_vehicle_count", 0, 5),
            ],
        ),
        Relation(
            name="store", primary_key="s_store_sk", row_count=rows("store"),
            attributes=[
                _attr("s_state", 1, 52),
                _attr("s_number_employees", 200, 301),
                _attr("s_floor_space", 5_000, 10_000),
            ],
        ),
        Relation(
            name="promotion", primary_key="p_promo_sk", row_count=rows("promotion"),
            attributes=[
                _attr("p_channel_email", 0, 2),
                _attr("p_channel_tv", 0, 2),
                _attr("p_response_target", 0, 2),
            ],
        ),
        Relation(
            name="warehouse", primary_key="w_warehouse_sk", row_count=rows("warehouse"),
            attributes=[_attr("w_warehouse_sq_ft", 50, 1_000)],
        ),
        Relation(
            name="web_site", primary_key="web_site_sk", row_count=rows("web_site"),
            attributes=[_attr("web_tax_percentage", 0, 13)],
        ),
        Relation(
            name="catalog_page", primary_key="cp_catalog_page_sk",
            row_count=rows("catalog_page"),
            attributes=[
                _attr("cp_catalog_number", 1, 110),
                _attr("cp_catalog_page_number", 1, 189),
            ],
        ),
        Relation(
            name="store_sales", primary_key="ss_ticket_number",
            row_count=rows("store_sales"),
            foreign_keys=[
                ForeignKey(column="ss_sold_date_sk", target="date_dim"),
                ForeignKey(column="ss_item_sk", target="item"),
                ForeignKey(column="ss_customer_sk", target="customer"),
                ForeignKey(column="ss_store_sk", target="store"),
                ForeignKey(column="ss_promo_sk", target="promotion"),
                ForeignKey(column="ss_hdemo_sk", target="household_demographics"),
            ],
            attributes=[
                _attr("ss_quantity", 1, 101),
                _attr("ss_sales_price", 0, 20_000),
                _attr("ss_ext_discount_amt", 0, 30_000),
                _attr("ss_net_profit", 0, 30_000),
                _attr("ss_wholesale_cost", 1, 100),
            ],
        ),
        Relation(
            name="store_returns", primary_key="sr_ticket_number",
            row_count=rows("store_returns"),
            foreign_keys=[
                ForeignKey(column="sr_returned_date_sk", target="date_dim"),
                ForeignKey(column="sr_item_sk", target="item"),
                ForeignKey(column="sr_customer_sk", target="customer"),
            ],
            attributes=[
                _attr("sr_return_quantity", 1, 101),
                _attr("sr_return_amt", 0, 20_000),
                _attr("sr_fee", 0, 100),
            ],
        ),
        Relation(
            name="catalog_sales", primary_key="cs_order_number",
            row_count=rows("catalog_sales"),
            foreign_keys=[
                ForeignKey(column="cs_sold_date_sk", target="date_dim"),
                ForeignKey(column="cs_item_sk", target="item"),
                ForeignKey(column="cs_bill_customer_sk", target="customer"),
                ForeignKey(column="cs_catalog_page_sk", target="catalog_page"),
                ForeignKey(column="cs_promo_sk", target="promotion"),
                ForeignKey(column="cs_warehouse_sk", target="warehouse"),
            ],
            attributes=[
                _attr("cs_quantity", 1, 101),
                _attr("cs_list_price", 1, 30_000),
                _attr("cs_net_paid", 0, 30_000),
                _attr("cs_ext_ship_cost", 0, 15_000),
            ],
        ),
        Relation(
            name="web_sales", primary_key="ws_order_number",
            row_count=rows("web_sales"),
            foreign_keys=[
                ForeignKey(column="ws_sold_date_sk", target="date_dim"),
                ForeignKey(column="ws_item_sk", target="item"),
                ForeignKey(column="ws_bill_customer_sk", target="customer"),
                ForeignKey(column="ws_web_site_sk", target="web_site"),
                ForeignKey(column="ws_promo_sk", target="promotion"),
            ],
            attributes=[
                _attr("ws_quantity", 1, 101),
                _attr("ws_sales_price", 0, 30_000),
                _attr("ws_net_profit", 0, 30_000),
            ],
        ),
        Relation(
            name="inventory", primary_key="inv_sk", row_count=rows("inventory"),
            foreign_keys=[
                ForeignKey(column="inv_date_sk", target="date_dim"),
                ForeignKey(column="inv_item_sk", target="item"),
                ForeignKey(column="inv_warehouse_sk", target="warehouse"),
            ],
            attributes=[_attr("inv_quantity_on_hand", 0, 1_000)],
        ),
    ]
    return Schema(relations, name="tpcds")


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #
def complex_workload(schema: Schema, num_queries: int = 131, seed: int = 11) -> Workload:
    """The complex workload ``WLc``: many filtered attributes per relation and
    a rich pool of distinct constants, which drives the DataSynth grid sizes
    into the billions while Hydra stays at a few thousand regions."""
    profile = WorkloadProfile(
        num_queries=num_queries,
        root_relations=FACT_RELATIONS,
        max_joined_dimensions=4,
        max_filters_per_query=3,
        max_attributes_per_filter=2,
        max_total_filter_attributes=4,
        distinct_constants=6,
        disjunct_probability=0.15,
        dimension_filter_probability=0.6,
        attribute_affinity=2.5,
    )
    return WorkloadGenerator(schema, profile, seed=seed).generate(name="WLc")


def simple_workload(schema: Schema, num_queries: int = 110, seed: int = 13) -> Workload:
    """The simplified workload ``WLs``: at most two filtered attributes per
    relation and few distinct constants, keeping the grid formulation small
    enough for the DataSynth baseline to solve."""
    profile = WorkloadProfile(
        num_queries=num_queries,
        root_relations=FACT_RELATIONS,
        max_joined_dimensions=2,
        max_filters_per_query=2,
        max_attributes_per_filter=1,
        max_total_filter_attributes=2,
        distinct_constants=3,
        disjunct_probability=0.0,
        dimension_filter_probability=0.6,
    )
    return WorkloadGenerator(schema, profile, seed=seed).generate(name="WLs")
