"""The unified command-line front-end: ``python -m repro <command>``.

Six commands, all built on the :class:`repro.api.Session` facade and the
deterministic TPC-DS-like benchmark environment (``--scale``, ``--queries``,
``--workload`` and the seeds fully determine the workload, so two processes
passing the same flags compute the same store fingerprint):

* ``summarize``  — build the benchmark workload's summary into the store
  (one process pays the LP solves; replaces ``repro.service warm``);
* ``resummarize`` — incrementally re-summarize a drifted workload against
  the warm ``--base-queries`` epoch: only the constraint-graph components
  the drift touched are solved, the rest reuse cached solutions verbatim,
  and the new epoch is lineage-linked to its parent in the store;
* ``diff``       — per-component reuse report between two stored workload
  epochs, plus the newer epoch's lineage chain;
* ``regenerate`` — regenerate the database from a summary and report (or
  stream) its relations, optionally at a different ``--scale-factor``;
* ``verify``     — run the full loop (extract → summarize → regenerate →
  verify) and print the volumetric-similarity report;
* ``serve``      — stream a relation through the serving front-end, or,
  with ``--listen HOST:PORT``, run the HTTP front-end
  (:class:`repro.server.RegenerationServer`) until SIGTERM/SIGINT
  (``--require-warm`` exits :data:`EXIT_NOT_WARM` if the request is not
  already stored — before binding the socket in ``--listen`` mode — the
  CI smoke job's cross-process zero-solve assertion);
* ``stats``      — print store counters (``--entries`` lists the stored
  summaries, replacing ``repro.service inspect``; ``--tenants`` adds the
  per-tenant admission telemetry note; ``--metrics``/``--prometheus``/
  ``--json`` export the full :mod:`repro.obs` metrics registry as a flat
  snapshot, Prometheus text exposition, or machine-readable JSON;
  ``--url http://host:port`` fetches ``/v1/stats`` / ``/metrics`` from a
  running server instead of opening a directory);
* ``store``      — the replicated store fleet (see ``docs/CLUSTER.md``):
  ``store serve`` runs a directory as a replication *leader*
  (:class:`repro.cluster.StoreServer`), ``store replicate`` tails a leader
  into a local replica (:class:`repro.cluster.ReplicatedStore`), ``store
  status`` prints a leader's health, change-log offsets and counters;
* ``trace``      — run one traced submit → result → stream request at
  sample rate 1.0 and emit the finished spans as JSONL (stdout or
  ``--output``), ready for :func:`repro.obs.build_tree`;
* ``gc``         — one store GC pass: TTL expiration plus LRU eviction
  down to ``--max-store-bytes`` / ``--max-entries`` caps.

``python -m repro.service`` remains as a deprecated alias that delegates
here.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import Callable, List, Optional, Tuple

from repro.api.backends import available_backends
from repro.api.config import DEFAULT_BATCH_SIZE, RegenConfig
from repro.api.session import Session
from repro.constraints.workload import ConstraintSet
from repro.errors import ServiceError
from repro.schema.schema import Schema

#: ``serve --require-warm`` exit code when the store could not serve the
#: request without running the pipeline.
EXIT_NOT_WARM = 3

#: Default HTTP request-body cap (mirrors ``RegenConfig.max_request_bytes``).
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


def _benchmark_environment(args: argparse.Namespace) -> Tuple[Schema, ConstraintSet, "Workload", "Database"]:
    """Rebuild the deterministic benchmark environment named by the flags."""
    from repro.benchdata.datagen import generate_database
    from repro.benchdata.tpcds import complex_workload, simple_workload, tpcds_schema
    from repro.hydra.client import extract_constraints

    schema = tpcds_schema(scale_factor=args.scale)
    database = generate_database(schema, seed=args.datagen_seed)
    factory = complex_workload if args.workload == "complex" else simple_workload
    workload = factory(schema, num_queries=args.queries, seed=args.workload_seed)
    package = extract_constraints(database, workload)
    return schema, package.constraints, workload, database


def _session(args: argparse.Namespace, schema: Schema) -> Session:
    config = RegenConfig(
        engine=args.engine, workers=args.workers,
        trace_sample=getattr(args, "trace_sample", 0.0),
        log_format=getattr(args, "log_format", "text"),
        max_connections=getattr(args, "max_connections", 64),
        request_timeout=getattr(args, "request_timeout", 30.0),
        cursor_idle_timeout=getattr(args, "cursor_idle_timeout", None),
        max_request_bytes=getattr(args, "max_request_bytes", None)
        or DEFAULT_MAX_REQUEST_BYTES,
        store_url=getattr(args, "store_url", None),
        store_peers=getattr(args, "store_peers", None),
    )
    return Session(schema, config=config, store=getattr(args, "store", None))


def _print_stats(service: "RegenerationService") -> None:
    stats = service.stats()
    keys = ("requests", "hits", "misses", "inflight_dedup",
            "rejected_submissions", "pipeline_runs", "pipeline_failures",
            "queue_depth", "batches_streamed",
            "solver_components_solved", "solver_cache_hits",
            "solver_cache_misses", "summaries", "components", "store_bytes",
            "corrupt_entries", "evictions", "expirations", "gc_runs")
    print(" ".join(f"{key}={stats.get(key, 0)}" for key in keys))


def _print_tenants(service: "RegenerationService") -> None:
    for row in service.service_stats().tenants:
        print(f"  tenant={row.tenant} admitted={row.admitted}"
              f" rejected={row.rejected} completed={row.completed}"
              f" failed={row.failed} queued={row.queued} running={row.running}")


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #
def _cmd_summarize(args: argparse.Namespace) -> int:
    schema, constraints, _, _ = _benchmark_environment(args)
    session = _session(args, schema)
    with session.serve() as service:
        ticket = service.submit(constraints, tenant=args.tenant)
        summary = ticket.result()
        print(f"fingerprint={ticket.fingerprint}")
        print(f"warm={ticket.warm} relations={len(summary.relations)}"
              f" total_rows={summary.total_rows()} summary_bytes={summary.nbytes()}")
        _print_stats(service)
        _print_tenants(service)
    return 0


def _cmd_resummarize(args: argparse.Namespace) -> int:
    """Incrementally re-summarize a drifted benchmark workload.

    The base epoch is the benchmark workload with ``--base-queries`` queries
    (same seeds, so it is a prefix of the drifted ``--queries`` workload);
    it must already be warm in the store unless ``--build-base`` is given.
    Only the constraint-graph components the drift touched are solved; the
    rest are reused verbatim from the component-solution cache.
    """
    from repro.benchdata.tpcds import complex_workload, simple_workload
    from repro.hydra.client import extract_constraints

    schema, drift_constraints, _, database = _benchmark_environment(args)
    factory = complex_workload if args.workload == "complex" else simple_workload
    base_workload = factory(schema, num_queries=args.base_queries,
                            seed=args.workload_seed)
    base_constraints = extract_constraints(database, base_workload).constraints
    session = _session(args, schema)
    with session.serve() as service:
        base_fingerprint = service.fingerprint(base_constraints)
        if not service.store.has_summary(base_fingerprint):
            if not args.build_base:
                print(f"base fingerprint={base_fingerprint} is not in the"
                      " store; warm it first (or pass --build-base)",
                      file=sys.stderr)
                return EXIT_NOT_WARM
            service.submit(base_constraints, tenant=args.tenant).result()
        report = service.resummarize(base_fingerprint, drift_constraints,
                                     tenant=args.tenant)
        print(f"fingerprint={report.fingerprint}")
        print(f"parent_fingerprint={report.parent_fingerprint}")
        print(f"warm={report.warm}"
              f" components_total={report.total_components}"
              f" components_reused={len(report.reused_components)}"
              f" components_solved={len(report.solved_components)}"
              f" components_retired={len(report.retired_components)}")
        print(f"content_digest={report.summary.content_digest()}")
        _print_stats(service)
        _print_tenants(service)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """Per-component reuse report between two stored workload epochs."""
    from repro.benchdata.tpcds import tpcds_schema

    session = _session(args, tpcds_schema(scale_factor=args.scale))
    try:
        report = session.diff(args.fingerprint_a, args.fingerprint_b)
    except ServiceError as error:
        print(f"diff: {error}", file=sys.stderr)
        return 2
    print(f"epoch_a={report.fingerprint_a}")
    print(f"epoch_b={report.fingerprint_b}")
    print(f"components_total={report.total}"
          f" reused={len(report.reused)} added={len(report.added)}"
          f" retired={len(report.retired)}"
          f" reuse_ratio={report.reuse_ratio:.4f}")
    for label, keys in (("reused", report.reused), ("added", report.added),
                        ("retired", report.retired)):
        for key in keys:
            print(f"  {label} component={key[:16]}")
    lineage = session.lineage(args.fingerprint_b)
    if len(lineage) > 1:
        chain = " -> ".join(str(link["fingerprint"])[:12] for link in lineage)
        print(f"lineage: {chain}")
    return 0


def _cmd_regenerate(args: argparse.Namespace) -> int:
    if args.fingerprint is not None:
        # Loading a stored fingerprint needs no client database or workload
        # re-derivation — only the schema shape.
        from repro.benchdata.tpcds import tpcds_schema

        session = _session(args, tpcds_schema(scale_factor=args.scale))
        handle = session.load(args.fingerprint)
    else:
        schema, constraints, _, _ = _benchmark_environment(args)
        session = _session(args, schema)
        handle = session.summarize(constraints)
    database = session.regenerate(handle, scale=args.scale_factor,
                                  batch_size=args.batch_size)
    print(f"fingerprint={handle.fingerprint} engine={handle.engine}"
          f" warm={handle.from_store} scale_factor={database.scale}")
    for relation, rows in sorted(database.row_counts().items()):
        print(f"  relation={relation} rows={rows}")
    if args.relation is not None:
        rows = 0
        batches = 0
        for batch in database.stream(args.relation, batch_size=args.batch_size):
            rows += batch.num_rows
            batches += 1
            if args.max_batches is not None and batches >= args.max_batches:
                break
        print(f"streamed relation={args.relation} batches={batches} rows={rows}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    schema, constraints, _, _ = _benchmark_environment(args)
    session = _session(args, schema)
    handle = session.summarize(constraints)
    database = session.regenerate(handle, scale=args.scale_factor)
    report = session.verify(database)
    print(f"fingerprint={handle.fingerprint} engine={handle.engine}"
          f" warm={handle.from_store}")
    print(f"verified constraints={len(report.results)}"
          f" max_error={report.max_error():.6f}"
          f" fraction_exact={report.fraction_exact():.4f}"
          f" fraction_within_10pct={report.fraction_within(0.1):.4f}")
    return 0


def _parse_listen(spec: str) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (an empty host keeps the config default)."""
    host, sep, port_text = spec.rpartition(":")
    try:
        if not sep:
            raise ValueError("missing ':'")
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError(f"port {port} out of range")
    except ValueError as error:
        raise ServiceError(
            f"bad --listen {spec!r} (want HOST:PORT): {error}") from None
    return host, port


def _cmd_serve_listen(args: argparse.Namespace) -> int:
    """``serve --listen``: run the HTTP front-end until SIGTERM/SIGINT."""
    import signal

    from repro.server import RegenerationServer

    host, port = _parse_listen(args.listen)
    if args.fingerprint is not None:
        # Serving stored fingerprints needs no client database or workload
        # re-derivation — only the schema shape.
        from repro.benchdata.tpcds import tpcds_schema

        schema, constraints = tpcds_schema(scale_factor=args.scale), None
    else:
        schema, constraints, _, _ = _benchmark_environment(args)
    session = _session(args, schema)
    with session.serve() as service:
        config = service.config
        fingerprint = args.fingerprint or service.fingerprint(constraints)
        warm = service.store.has_summary(fingerprint)
        if args.require_warm and not warm:
            # Refuse before binding the socket: a cold --require-warm server
            # would answer 409 to everything it exists to serve.
            print(f"fingerprint={fingerprint} is not in the store; refusing"
                  " to serve --require-warm", file=sys.stderr)
            return EXIT_NOT_WARM
        server = RegenerationServer(
            service,
            host or config.listen_host, port,
            max_connections=config.max_connections,
            request_timeout=config.request_timeout,
            max_request_bytes=config.max_request_bytes,
            require_warm=args.require_warm,
            default_batch_size=args.batch_size,
        )
        # serve_forever() occupies this thread, and httpd.shutdown() blocks
        # until that loop exits — so the signal handler must trigger the
        # drain from a helper thread or it would deadlock the process.
        shutdown_threads: List[threading.Thread] = []

        def _handle_signal(signum: int, frame: object) -> None:
            thread = threading.Thread(target=server.shutdown,
                                      name="repro-http-shutdown", daemon=True)
            shutdown_threads.append(thread)
            thread.start()

        signal.signal(signal.SIGTERM, _handle_signal)
        signal.signal(signal.SIGINT, _handle_signal)
        print(f"listening on http://{server.host}:{server.port}"
              f" fingerprint={fingerprint} warm={warm}"
              f" require_warm={args.require_warm}", flush=True)
        server.serve_forever()
        for thread in shutdown_threads:
            thread.join()
        _print_stats(service)
        _print_tenants(service)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.listen is not None:
        return _cmd_serve_listen(args)
    if args.relation is None:
        print("serve: --relation is required without --listen",
              file=sys.stderr)
        return 2
    if args.fingerprint is not None:
        # Serving a stored fingerprint needs no client database or workload
        # re-derivation — only the schema shape.
        from repro.benchdata.tpcds import tpcds_schema

        schema, constraints = tpcds_schema(scale_factor=args.scale), None
    else:
        schema, constraints, _, _ = _benchmark_environment(args)
    session = _session(args, schema)
    with session.serve() as service:
        fingerprint = args.fingerprint or service.fingerprint(constraints)
        warm = service.store.has_summary(fingerprint)
        if not warm and (args.require_warm or constraints is None):
            print(f"fingerprint={fingerprint} is not in the store; refusing to"
                  " run the pipeline", file=sys.stderr)
            return EXIT_NOT_WARM
        if not warm:
            # Tag the cold build with the caller's tenant, then stream the
            # (now stored) fingerprint like any warm consumer.
            service.submit(constraints, tenant=args.tenant).result()
        request: "ConstraintSet | str" = fingerprint
        rows = 0
        batches = 0
        for batch in service.stream(request, args.relation,
                                    batch_size=args.batch_size):
            rows += batch.num_rows
            batches += 1
            if args.max_batches is not None and batches >= args.max_batches:
                break
        print(f"fingerprint={fingerprint}")
        print(f"served relation={args.relation} batches={batches} rows={rows}"
              f" warm={warm}")
        _print_stats(service)
        _print_tenants(service)
        if args.require_warm and service.stats()["pipeline_runs"] > 0:
            print("pipeline ran despite --require-warm", file=sys.stderr)
            return EXIT_NOT_WARM
    return 0


def _fetch_remote_stats(args: argparse.Namespace) -> int:
    """``stats --url``: scrape a running server instead of opening a dir.

    Works against both HTTP front-ends — the serving layer
    (:class:`repro.server.RegenerationServer`) and the store leader
    (:class:`repro.cluster.StoreServer`) expose the same ``/v1/stats`` and
    ``/metrics`` endpoints.
    """
    import json
    import urllib.request

    base = args.url.rstrip("/")
    if args.prometheus or args.metrics:
        with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0
    with urllib.request.urlopen(base + "/v1/stats", timeout=10) as response:
        payload = json.loads(response.read().decode("utf-8"))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    flat = {key: value for key, value in payload.items()
            if not isinstance(value, (dict, list))}
    print(" ".join(f"{key}={value}" for key, value in sorted(flat.items())))
    for key, nested in sorted(payload.items()):
        if isinstance(nested, dict):
            line = " ".join(f"{k}={v}" for k, v in sorted(nested.items())
                            if not isinstance(v, (dict, list)))
            if line:
                print(f"  {key}: {line}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.service.store import SummaryStore

    if args.url is not None:
        return _fetch_remote_stats(args)
    if args.store is None:
        print("stats: one of --store or --url is required", file=sys.stderr)
        return 2
    store = SummaryStore(args.store)
    if args.json or args.prometheus or args.metrics:
        # Refresh the store gauges, then export the registry whole.
        store.counters()
        if args.json:
            print(store.registry.to_json(indent=2))
        elif args.prometheus:
            sys.stdout.write(store.registry.to_prometheus())
        else:
            for series, value in sorted(store.registry.snapshot().items()):
                print(f"{series} {value}")
        return 0
    if args.entries:
        entries = store.entries()
        print(f"store={args.store} format=1 summaries={len(entries)}"
              f" store_bytes={store.store_bytes()}")
        for entry in entries:
            fingerprint = entry.pop("fingerprint")
            detail = " ".join(f"{k}={v}" for k, v in sorted(entry.items()))
            print(f"  {fingerprint} {detail}")
        return 0
    print(" ".join(f"{key}={value}" for key, value in sorted(store.counters().items())))
    if args.tenants:
        # Per-tenant admission counters live in each serving process (see
        # summarize/serve output); an offline store has none to report.
        print("tenants=0 (per-tenant admission telemetry is per serving"
              " process; summarize/serve print it via --tenant)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """One traced request — submit, await the summary, stream a relation —
    at sample rate 1.0, emitting the finished spans as JSONL.

    Progress goes to stderr so stdout stays pure JSONL (pipeable straight
    into ``repro.obs.parse_jsonl``/``build_tree``).
    """
    from repro.obs.trace import get_tracer, span as trace_span

    schema, constraints, _, _ = _benchmark_environment(args)
    args.trace_sample = 1.0
    session = _session(args, schema)
    tracer = get_tracer()
    tracer.clear()
    with session.serve() as service:
        with trace_span("cli.trace", engine=args.engine) as root:
            ticket = service.submit(constraints, tenant=args.tenant)
            summary = ticket.result()
            relation = args.relation or sorted(summary.relations)[0]
            rows = 0
            batches = 0
            for batch in service.stream(ticket.fingerprint, relation,
                                        batch_size=args.batch_size,
                                        tenant=args.tenant):
                rows += batch.num_rows
                batches += 1
                if args.max_batches is not None and batches >= args.max_batches:
                    break
            root.set_attribute("relation", relation)
            root.set_attribute("batches", batches)
            root.set_attribute("rows", rows)
    if args.output is not None:
        count = tracer.export(args.output)
        print(f"wrote {count} spans to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(tracer.to_jsonl())
    print(f"traced fingerprint={ticket.fingerprint} warm={ticket.warm}"
          f" relation={relation} batches={batches} rows={rows}"
          f" spans={len(tracer.spans())}", file=sys.stderr)
    return 0


def _run_until_signal(on_signal: "Callable[[], None]",
                      run: "Callable[[], None]") -> None:
    """Run a blocking loop, draining via ``on_signal`` on SIGTERM/SIGINT.

    The drain runs on a helper thread because shutdown calls block until
    the serving loop exits — triggering them inside the handler would
    deadlock the process (same pattern as ``serve --listen``).
    """
    import signal

    threads: List[threading.Thread] = []

    def _handle(signum: int, frame: object) -> None:
        thread = threading.Thread(target=on_signal,
                                  name="repro-store-shutdown", daemon=True)
        threads.append(thread)
        thread.start()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    run()
    for thread in threads:
        thread.join()


def _cmd_store_serve(args: argparse.Namespace) -> int:
    """``store serve``: run one store directory as a replication leader."""
    from repro.cluster import StoreServer
    from repro.service.store import SummaryStore

    host, port = _parse_listen(args.listen)
    store = SummaryStore(args.store)
    server = StoreServer(store, host or "127.0.0.1", port,
                         max_request_bytes=args.max_request_bytes)
    print(f"listening on {server.url} role=leader root={args.store}"
          f" log_id={server.log.log_id} last_offset={server.log.last_offset}",
          flush=True)
    _run_until_signal(server.shutdown, server.serve_forever)
    print(f"closed last_offset={server.log.last_offset}")
    return 0


def _cmd_store_replicate(args: argparse.Namespace) -> int:
    """``store replicate``: tail a leader's change log into a local replica."""
    from repro.cluster import ReplicatedStore

    if args.oneshot:
        replica = ReplicatedStore(args.url, args.store,
                                  poll_interval=args.poll_interval,
                                  start_tailer=False)
        applied = replica.catch_up()
        print(f"caught up url={args.url} store={args.store}"
              f" applied={applied} offset={replica.applied_offset}")
        replica.close()
        return 0
    replica = ReplicatedStore(args.url, args.store,
                              poll_interval=args.poll_interval)
    stop = threading.Event()
    print(f"replicating url={args.url} store={args.store}"
          f" offset={replica.applied_offset}", flush=True)
    _run_until_signal(stop.set, stop.wait)
    replica.close()
    print(f"closed offset={replica.applied_offset}")
    return 0


def _cmd_store_status(args: argparse.Namespace) -> int:
    """``store status``: one leader's health, offsets and counters."""
    from repro.cluster import LeaderClient

    client = LeaderClient(args.url)
    stats = client.request("GET", "/v1/stats")
    print(f"url={args.url} role={stats.get('role')}"
          f" log_id={stats.get('log_id')}"
          f" first_offset={stats.get('first_offset')}"
          f" last_offset={stats.get('last_offset')}")
    counters = stats.get("counters")
    if isinstance(counters, dict):
        print(" ".join(f"{key}={value}"
                       for key, value in sorted(counters.items())))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    """One store GC pass: TTL expiration + LRU eviction down to the caps
    given on the command line (absent flags mean "no limit" for this pass)."""
    from repro.service.store import SummaryStore

    store = SummaryStore(args.store)
    report = store.compact(max_store_bytes=args.max_store_bytes,
                           max_entries=args.max_entries,
                           ttl_seconds=args.ttl_seconds)
    keys = ("expired", "evicted", "reclaimed_bytes", "summaries",
            "components", "store_bytes")
    print(" ".join(f"{key}={report.get(key, 0)}" for key in keys))
    return 0


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Summarize, regenerate, verify and serve benchmark"
                    " workloads through the repro.api session facade.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_env(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.0002,
                       help="TPC-DS scale factor of the client instance")
        p.add_argument("--queries", type=int, default=10,
                       help="number of workload queries")
        p.add_argument("--workload", choices=("simple", "complex"),
                       default="simple")
        p.add_argument("--workload-seed", type=int, default=3)
        p.add_argument("--datagen-seed", type=int, default=7)
        p.add_argument("--workers", type=int, default=2,
                       help="LP solver workers for cold builds")
        p.add_argument("--engine", choices=available_backends(),
                       default="hydra", help="pipeline backend")
        p.add_argument("--tenant", default="default",
                       help="tenant tag for fair cold-build admission")
        p.add_argument("--trace-sample", type=float, default=0.0,
                       dest="trace_sample",
                       help="request-trace sampling rate in [0, 1]")
        p.add_argument("--log-format", choices=("text", "json"),
                       default="text", dest="log_format",
                       help="handler format for repro.* log events")

    def add_cluster(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store-url", default=None, dest="store_url",
                       metavar="URL",
                       help="follow the store leader at this URL (the local"
                            " --store directory becomes a tailing replica)")
        p.add_argument("--store-peers", default=None, dest="store_peers",
                       metavar="URL,URL,...",
                       help="shard fingerprints across these store leaders"
                            " (consistent hashing; one replica per peer"
                            " under the --store directory)")

    summarize = sub.add_parser(
        "summarize", help="build the benchmark workload's summary into the store")
    summarize.add_argument("--store", required=True, help="store directory")
    add_env(summarize)
    add_cluster(summarize)
    summarize.set_defaults(func=_cmd_summarize)

    resummarize = sub.add_parser(
        "resummarize",
        help="incrementally re-summarize a drifted workload against the"
             " warm --base-queries epoch (component-level delta solving)")
    resummarize.add_argument("--store", required=True, help="store directory")
    add_env(resummarize)
    add_cluster(resummarize)
    resummarize.add_argument("--base-queries", type=int, required=True,
                             dest="base_queries",
                             help="query count of the warm base epoch (same"
                                  " seeds, so it is a prefix of --queries)")
    resummarize.add_argument("--build-base", action="store_true",
                             dest="build_base",
                             help="cold-build the base epoch if it is not in"
                                  " the store (default: exit 3)")
    resummarize.set_defaults(func=_cmd_resummarize)

    diff = sub.add_parser(
        "diff", help="per-component reuse report between two stored epochs")
    diff.add_argument("fingerprint_a", help="base epoch fingerprint")
    diff.add_argument("fingerprint_b", help="new epoch fingerprint")
    diff.add_argument("--store", required=True, help="store directory")
    diff.add_argument("--scale", type=float, default=0.0002,
                      help="TPC-DS scale factor (schema shape only)")
    diff.add_argument("--workers", type=int, default=2)
    diff.add_argument("--engine", choices=available_backends(),
                      default="hydra", help="pipeline backend")
    diff.set_defaults(func=_cmd_diff)

    regenerate = sub.add_parser(
        "regenerate", help="regenerate the database from a summary")
    regenerate.add_argument("--store", default=None, help="store directory")
    add_env(regenerate)
    regenerate.add_argument("--fingerprint", default=None,
                            help="load this stored fingerprint instead of"
                                 " building the benchmark summary")
    regenerate.add_argument("--scale-factor", type=float, default=None,
                            help="regenerate at this multiple of the"
                                 " summarized volume")
    regenerate.add_argument("--relation", default=None,
                            help="also stream this relation in batches")
    regenerate.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    regenerate.add_argument("--max-batches", type=int, default=None)
    regenerate.set_defaults(func=_cmd_regenerate)

    verify = sub.add_parser(
        "verify", help="extract, summarize, regenerate and verify end to end")
    verify.add_argument("--store", default=None, help="store directory")
    add_env(verify)
    verify.add_argument("--scale-factor", type=float, default=None)
    verify.set_defaults(func=_cmd_verify)

    serve = sub.add_parser(
        "serve", help="stream a relation through the serving front-end, or"
                      " run the HTTP front-end with --listen")
    serve.add_argument("--store", required=True, help="store directory")
    add_env(serve)
    serve.add_argument("--relation", default=None,
                       help="relation to stream (required without --listen)")
    serve.add_argument("--fingerprint", default=None,
                       help="serve this stored fingerprint instead of"
                            " recomputing it from the benchmark flags")
    serve.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    serve.add_argument("--max-batches", type=int, default=None)
    serve.add_argument("--require-warm", action="store_true",
                       help="exit non-zero instead of running the pipeline"
                            " (with --listen: refuse cold workloads with"
                            " 409)")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="run the HTTP front-end on this address until"
                            " SIGTERM (port 0 binds an ephemeral port,"
                            " printed on startup)")
    serve.add_argument("--max-connections", type=int, default=64,
                       dest="max_connections",
                       help="HTTP requests allowed in flight at once"
                            " (excess answered 503)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       dest="request_timeout",
                       help="per-request socket/wait bound in seconds")
    serve.add_argument("--cursor-idle-timeout", type=float, default=None,
                       dest="cursor_idle_timeout",
                       help="reap stream cursors (and release their store"
                            " pins) after this many idle seconds")
    serve.add_argument("--max-request-bytes", type=int,
                       default=DEFAULT_MAX_REQUEST_BYTES,
                       dest="max_request_bytes",
                       help="HTTP request-body cap in bytes (oversized"
                            " POSTs answered 413)")
    add_cluster(serve)
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="print store counters")
    stats.add_argument("--store", default=None, help="store directory")
    stats.add_argument("--url", default=None, metavar="URL",
                       help="scrape /v1/stats (or /metrics) from a running"
                            " server instead of opening a directory")
    stats.add_argument("--entries", action="store_true",
                       help="also list the stored summaries")
    stats.add_argument("--tenants", action="store_true",
                       help="also report per-tenant admission telemetry")
    export = stats.add_mutually_exclusive_group()
    export.add_argument("--metrics", action="store_true",
                        help="print the metrics registry as a flat snapshot")
    export.add_argument("--prometheus", action="store_true",
                        help="print the metrics registry in the Prometheus"
                             " text exposition format")
    export.add_argument("--json", action="store_true",
                        help="print the metrics registry as JSON")
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace", help="run one traced request and emit its spans as JSONL")
    trace.add_argument("--store", default=None, help="store directory")
    add_env(trace)
    trace.add_argument("--relation", default=None,
                       help="relation to stream (default: first of the"
                            " summary)")
    trace.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    trace.add_argument("--max-batches", type=int, default=None)
    trace.add_argument("--output", default=None,
                       help="write the span JSONL here instead of stdout")
    trace.set_defaults(func=_cmd_trace)

    store = sub.add_parser(
        "store", help="run and inspect the replicated store fleet")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_serve = store_sub.add_parser(
        "serve", help="serve one store directory as a replication leader")
    store_serve.add_argument("--store", required=True, help="store directory")
    store_serve.add_argument("--listen", default="127.0.0.1:0",
                             metavar="HOST:PORT",
                             help="listen address (port 0 binds an ephemeral"
                                  " port, printed on startup)")
    store_serve.add_argument("--max-request-bytes", type=int,
                             default=DEFAULT_MAX_REQUEST_BYTES,
                             dest="max_request_bytes",
                             help="request-body cap in bytes (oversized PUTs"
                                  " answered 413)")
    store_serve.set_defaults(func=_cmd_store_serve)

    store_replicate = store_sub.add_parser(
        "replicate", help="tail a leader's change log into a local replica")
    store_replicate.add_argument("--store", required=True,
                                 help="local replica directory")
    store_replicate.add_argument("--url", required=True,
                                 help="leader base URL (http://host:port)")
    store_replicate.add_argument("--poll-interval", type=float, default=0.25,
                                 dest="poll_interval",
                                 help="change-log poll period in seconds")
    store_replicate.add_argument("--oneshot", action="store_true",
                                 help="catch up once and exit instead of"
                                      " tailing until SIGTERM")
    store_replicate.set_defaults(func=_cmd_store_replicate)

    store_status = store_sub.add_parser(
        "status", help="print a leader's health, offsets and counters")
    store_status.add_argument("--url", required=True,
                              help="leader base URL (http://host:port)")
    store_status.set_defaults(func=_cmd_store_status)

    gc = sub.add_parser(
        "gc", help="compact the store: TTL expiration + LRU eviction to caps")
    gc.add_argument("--store", required=True, help="store directory")
    gc.add_argument("--max-store-bytes", type=int, default=None,
                    help="evict LRU-first until the store fits this many bytes")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="evict LRU-first down to this many summary entries")
    gc.add_argument("--ttl-seconds", type=float, default=None,
                    help="drop entries last used more than this many seconds ago")
    gc.set_defaults(func=_cmd_gc)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
