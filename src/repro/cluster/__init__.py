"""The multi-node store layer: one summary store, served as a fleet.

The paper's regeneration loop replicates *summaries*, never data — a
kilobyte-scale declarative summary regenerates an arbitrarily large
database on any node that holds it.  This package turns the single-node
disk store into that fleet:

* :class:`StoreBackend` / :class:`DiskBackend` — the protocol the serving
  layers type against, and the original disk store as its reference
  implementation (byte-identical layout);
* :class:`ChangeLog` — the leader's append-only, fsynced, offset-indexed
  mutation journal (``log.jsonl`` segments);
* :class:`StoreServer` — a threaded HTTP leader serving entries, listings
  and the change log over versioned wire JSON;
* :class:`ReplicatedStore` — the follower backend: local replica reads,
  leader writes, change-log tailing with catch-up and gap-triggered full
  resync;
* :class:`HashRing` / :class:`ShardedStore` — consistent-hash sharding of
  fingerprints across N leader/follower groups behind one backend;
* :func:`open_store` — config-driven construction
  (``store_url=`` / ``store_peers=`` / plain path).

``python -m repro store serve|replicate|status`` are the CLI doors;
``docs/CLUSTER.md`` describes topology, the change-log format and the
failure modes.
"""

from repro.cluster.backend import DiskBackend, StoreBackend
from repro.cluster.factory import open_store, peer_urls
from repro.cluster.log import ChangeLog
from repro.cluster.replica import LeaderClient, ReplicatedStore
from repro.cluster.ring import HashRing
from repro.cluster.server import STORE_WIRE_VERSION, StoreServer
from repro.cluster.sharded import ShardedStore

__all__ = [
    "STORE_WIRE_VERSION",
    "ChangeLog",
    "DiskBackend",
    "HashRing",
    "LeaderClient",
    "ReplicatedStore",
    "ShardedStore",
    "StoreBackend",
    "StoreServer",
    "open_store",
    "peer_urls",
]
