"""The store-backend protocol and the disk implementation behind it.

:class:`StoreBackend` is the contract extracted from the original
``SummaryStore``: everything the :class:`~repro.api.Session` facade, the
:class:`~repro.service.RegenerationService` and the LP solver cache actually
call — get/put/has/entries/delete/pin for ``summaries`` and ``components``,
plus lifecycle (``compact``) and telemetry (``counters``/``stats``).  The
serving layers type against this protocol only, so a replicated, sharded or
future backend slots in without those layers changing.

:class:`DiskBackend` is the existing content-addressed disk store under its
protocol name — same class, same byte-identical on-disk layout, same format
marker.  Single-node users see zero behavior change; the cluster layer sees
one implementation of many.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, ContextManager, Dict, List, Mapping,
                    Optional, Protocol, runtime_checkable)

from repro.service.store import STORE_FORMAT, SummaryStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lp.model import LPSolution
    from repro.lp.solver import SolutionCache
    from repro.summary.relation_summary import DatabaseSummary

__all__ = ["StoreBackend", "DiskBackend", "STORE_FORMAT"]


@runtime_checkable
class StoreBackend(Protocol):
    """What a summary-store backend must provide to the serving layers.

    The contract is verified for every implementation by the parametrized
    conformance suite in ``tests/test_store_backend.py``; implementations
    are duck-typed (``@runtime_checkable`` checks method presence only).
    """

    # -- summaries ----------------------------------------------------- #
    def put_summary(self, fingerprint: str, summary: "DatabaseSummary",
                    meta: Optional[Mapping[str, object]] = None) -> None: ...

    def get_summary(self, fingerprint: str) -> Optional["DatabaseSummary"]: ...

    def read_summary(self, fingerprint: str) -> "DatabaseSummary": ...

    def has_summary(self, fingerprint: str) -> bool: ...

    def summary_fingerprints(self) -> List[str]: ...

    def entries(self) -> List[Dict[str, object]]: ...

    # -- LP component solutions ---------------------------------------- #
    def put_component(self, key: str, solution: "LPSolution") -> None: ...

    def get_component(self, key: str) -> Optional["LPSolution"]: ...

    def component_keys(self) -> List[str]: ...

    def solution_cache(self, memory_size: int = ...) -> "SolutionCache": ...

    # -- deletion / pinning / lifecycle -------------------------------- #
    def delete_entry(self, kind: str, key: str) -> bool: ...

    def pin(self, fingerprint: str) -> None: ...

    def unpin(self, fingerprint: str) -> None: ...

    def pinned(self, fingerprint: str) -> ContextManager[None]: ...

    def pin_count(self, fingerprint: str) -> int: ...

    def compact(self, max_store_bytes: object = ...,
                max_entries: object = ...,
                ttl_seconds: object = ...,
                now: Optional[float] = None) -> Dict[str, int]: ...

    # -- telemetry ----------------------------------------------------- #
    def counters(self) -> Dict[str, int]: ...

    def store_bytes(self) -> int: ...

    @property
    def stats(self) -> Dict[str, int]: ...


class DiskBackend(SummaryStore):
    """The content-addressed disk store, as a :class:`StoreBackend`.

    This *is* the original ``SummaryStore`` — inherited unchanged so
    existing store directories open byte-identically (same ``store.json``
    format marker, same ``summaries/``/``components/`` layout, same
    ``.touch`` recency sidecars) — under the name the cluster layer routes
    through.  A leader's :class:`~repro.cluster.server.StoreServer` attaches
    its change log via :meth:`~repro.service.store.SummaryStore.attach_journal`;
    a follower's replica applies replayed records via ``apply_entry``.
    """
