"""Config-driven construction of the right store backend.

:func:`open_store` is the one place the serving layers decide which
:class:`~repro.cluster.backend.StoreBackend` a path + config pair means:

* no ``store_url`` / ``store_peers`` → a plain local
  :class:`~repro.cluster.backend.DiskBackend` (or memory-only store when
  the path is ``None``) — exactly the pre-cluster behavior;
* ``store_url=`` → a :class:`~repro.cluster.replica.ReplicatedStore`
  follower: local replica at the path, writes through the leader at the
  URL;
* ``store_peers="url1,url2,..."`` → a
  :class:`~repro.cluster.sharded.ShardedStore` over one replicated group
  per peer URL, each with a local replica under ``<path>/shard-NN``.

``Session`` and ``RegenerationService`` call this instead of constructing
``SummaryStore`` directly, so they only ever see the protocol.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.cluster.backend import DiskBackend
from repro.cluster.replica import ReplicatedStore
from repro.cluster.sharded import ShardedStore
from repro.obs.metrics import MetricsRegistry


def peer_urls(store_peers: Optional[str]) -> list:
    """Split a ``store_peers=`` knob into its non-empty peer URLs."""
    if not store_peers:
        return []
    return [url.strip().rstrip("/") for url in store_peers.split(",")
            if url.strip()]


def open_store(root: Optional[Union[str, Path]] = None, *,
               config: Optional[object] = None,
               registry: Optional[MetricsRegistry] = None):
    """Open the store backend the config asks for (see module docstring).

    ``root`` is the local directory — the store itself for a single-node
    backend, the replica (or the parent of per-shard replicas) for the
    network backends.  Lifecycle caps (``max_store_bytes`` / ``max_entries``
    / ``ttl_seconds``) are taken from the config and apply to the local
    side in every topology.
    """
    caps = {
        "max_store_bytes": getattr(config, "max_store_bytes", None),
        "max_entries": getattr(config, "max_entries", None),
        "ttl_seconds": getattr(config, "ttl_seconds", None),
    }
    url = getattr(config, "store_url", None)
    peers = peer_urls(getattr(config, "store_peers", None))
    if peers:
        backends = {}
        for index, peer in enumerate(peers):
            shard_root = (Path(root) / f"shard-{index:02d}"
                          if root is not None else None)
            backends[peer] = ReplicatedStore(peer, shard_root, **caps)
        return ShardedStore(backends, registry=registry)
    if url:
        return ReplicatedStore(url, root, registry=registry, **caps)
    return DiskBackend(root, registry=registry, **caps)
