"""Append-only, fsynced, offset-indexed change log for store replication.

The change log is the replication backbone of a leader store: every entry
``put`` (with its full on-disk payload) and ``delete`` is appended as one
JSON line, and followers replay those lines in offset order to reconstruct a
byte-equivalent replica.  Summaries are kilobyte-scale — the paper's whole
point — so the log carries *complete* payloads rather than diffs, which
makes replay idempotent and a fresh follower's catch-up a pure log scan.

Layout, rooted at ``<store>/changelog``::

    meta.json                          {"format": 1, "log_id": "<hex>"}
    segment-00000000000000000001.jsonl records 1..k   (first segment)
    segment-0000000000000000k+1.jsonl  records k+1..  (rotated segments)

Offsets are 1-based and dense: record ``n`` is the ``n``-th mutation ever
applied to the leader.  Each segment file is named after the offset of its
first record, so positioning a read at offset ``n`` is a filename bisect,
never a full log scan.  Appends are flushed and ``fsync``-ed before the
offset is acknowledged; a torn final line (crash mid-append) is truncated
away on reopen.  The ``log_id`` identifies one log lineage — a follower that
sees a different ``log_id`` (e.g. the leader was rebuilt from scratch) must
full-resync instead of tailing.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ChangeLogError
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

logger = get_logger("cluster.log")

#: Change-log format version; bump on incompatible record/layout changes.
LOG_FORMAT = 1

#: Rotate to a fresh segment once the current one exceeds this many bytes.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _segment_name(first_offset: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_offset:020d}{_SEGMENT_SUFFIX}"


def _segment_offset(path: Path) -> int:
    return int(path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])


class ChangeLog:
    """Durable, offset-indexed mutation journal (``log.jsonl`` segments).

    Implements the journal interface :meth:`SummaryStore.attach_journal`
    expects — ``append(op, kind, key, payload)`` — plus the offset-addressed
    read side the :class:`~repro.cluster.server.StoreServer` serves to
    tailing followers.
    """

    def __init__(self, root: Union[str, Path],
                 segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: bool = True,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if segment_max_bytes <= 0:
            raise ChangeLogError("segment_max_bytes must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self._handle_size = 0
        self._closed = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_records = self.registry.counter(
            "repro_cluster_log_records_total",
            "Change-log records appended, by operation", labelnames=("op",))
        self._g_offset = self.registry.gauge(
            "repro_cluster_log_offset",
            "Offset of the last change-log record appended by this process")
        self.log_id = self._load_meta()
        self._segments = sorted(
            (p for p in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")),
            key=_segment_offset)
        self.last_offset = self._recover_tail()
        self._g_offset.set(self.last_offset)

    # ------------------------------------------------------------------ #
    # open/recover
    # ------------------------------------------------------------------ #
    def _load_meta(self) -> str:
        meta_path = self.root / "meta.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
                if int(meta["format"]) != LOG_FORMAT:
                    raise ChangeLogError(
                        f"change log {self.root} has format {meta['format']},"
                        f" expected {LOG_FORMAT}")
                return str(meta["log_id"])
            except (ValueError, TypeError, KeyError) as error:
                raise ChangeLogError(
                    f"change-log meta {meta_path} is unreadable: {error}"
                ) from error
        log_id = uuid.uuid4().hex
        payload = json.dumps({"format": LOG_FORMAT, "log_id": log_id})
        tmp = meta_path.with_name(".tmp-meta.json")
        tmp.write_text(payload)
        os.replace(tmp, meta_path)
        return log_id

    def _recover_tail(self) -> int:
        """Count the last segment's complete records; truncate a torn tail."""
        if not self._segments:
            return 0
        tail = self._segments[-1]
        offset = _segment_offset(tail) - 1
        good_bytes = 0
        with open(tail, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # torn final line: a crash mid-append
                try:
                    record = json.loads(line)
                    offset = int(record["offset"])
                except (ValueError, TypeError, KeyError):
                    break
                good_bytes += len(line)
        if good_bytes < tail.stat().st_size:
            logger.warning("truncating torn change-log tail %s at %d bytes",
                           tail.name, good_bytes)
            with open(tail, "r+b") as handle:
                handle.truncate(good_bytes)
        return offset

    @property
    def first_offset(self) -> int:
        """Offset of the oldest retained record (``1`` when none rotated
        away); reads below this require a full resync."""
        if not self._segments:
            return 1
        return _segment_offset(self._segments[0])

    # ------------------------------------------------------------------ #
    # append
    # ------------------------------------------------------------------ #
    def append(self, op: str, kind: str, key: str,
               payload: Optional[Dict[str, object]] = None) -> int:
        """Durably append one mutation record; returns its offset."""
        if op not in ("put", "delete"):
            raise ChangeLogError(f"unknown change-log op {op!r}")
        with self._lock:
            if self._closed:
                raise ChangeLogError("change log is closed")
            offset = self.last_offset + 1
            record = {"offset": offset, "op": op, "kind": kind, "key": key,
                      "payload": payload, "ts": round(time.time(), 3)}
            line = json.dumps(record, separators=(",", ":")) + "\n"
            blob = line.encode("utf-8")
            if self._handle is None or self._handle_size >= self.segment_max_bytes:
                self._rotate_locked(offset)
            self._handle.write(blob)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._handle_size += len(blob)
            self.last_offset = offset
        self._c_records.labels(op=op).inc()
        self._g_offset.set(offset)
        return offset

    def _rotate_locked(self, first_offset: int) -> None:
        if self._handle is not None:
            self._handle.close()
        path = self.root / _segment_name(first_offset)
        self._handle = open(path, "ab")
        self._handle_size = path.stat().st_size
        self._segments.append(path)

    # ------------------------------------------------------------------ #
    # read
    # ------------------------------------------------------------------ #
    def read(self, start: int, max_records: int = 500) -> List[Dict[str, object]]:
        """Records with ``offset >= start`` in order, at most ``max_records``.

        Raises :class:`ChangeLogError` when ``start`` precedes the oldest
        retained record — the caller must full-resync, there is no way to
        replay history that was pruned.
        """
        if start < 1:
            raise ChangeLogError(f"change-log offsets are 1-based, got {start}")
        with self._lock:
            segments = list(self._segments)
            last = self.last_offset
            if self._handle is not None:
                self._handle.flush()
        if start > last:
            return []
        if start < self.first_offset:
            raise ChangeLogError(
                f"offset {start} precedes the oldest retained record"
                f" ({self.first_offset}): full resync required")
        out: List[Dict[str, object]] = []
        # Filename bisect: start from the last segment whose first offset is
        # <= start, then stream forward.
        begin = 0
        for index, path in enumerate(segments):
            if _segment_offset(path) <= start:
                begin = index
        for path in segments[begin:]:
            with open(path, "rb") as handle:
                for line in handle:
                    if not line.endswith(b"\n"):
                        break
                    try:
                        record = json.loads(line)
                    except ValueError:
                        break
                    if int(record["offset"]) < start:
                        continue
                    out.append(record)
                    if len(out) >= max_records:
                        return out
        return out

    def close(self) -> None:
        """Close the append handle; further appends raise."""
        with self._lock:
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChangeLog({str(self.root)!r}, last_offset={self.last_offset},"
                f" segments={len(self._segments)})")
