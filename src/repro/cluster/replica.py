"""The replicated store backend: leader writes, local replica reads.

A :class:`ReplicatedStore` is what a follower node mounts instead of a plain
disk store.  Reads (the serving hot path) are served from a local
:class:`~repro.cluster.backend.DiskBackend` replica — zero network hops,
zero LP solves for warmed fingerprints — while writes are forwarded to the
leader's :class:`~repro.cluster.server.StoreServer` and become visible
locally by replaying the leader's change log:

* a background tailer polls ``GET /v1/log`` from the **last applied
  offset** (persisted in ``<root>/replica.json``, so a restarted follower
  resumes exactly where it stopped — no full resync);
* writes are read-your-writes: the leader acknowledges the change-log
  offset that made the put durable, and the writer catches up to at least
  that offset before returning;
* **gap detection** forces a full resync: a changed ``log_id`` (the leader
  was rebuilt), an applied offset ahead of the leader's log, or a tail
  window that fell behind the log's retained segments all mean the log can
  no longer be replayed — the follower then re-fetches the leader's full
  listings and reconciles its replica against them.

Replication telemetry lives on the replica's registry
(``repro_cluster_applied_offset``, ``repro_cluster_replication_lag_records``,
``repro_cluster_catchup_records_total``, ``repro_cluster_resyncs_total``,
``repro_cluster_leader_errors_total``) and every tail/apply batch runs under
a ``store.replicate`` trace span.
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union
from urllib.parse import quote

from repro.cluster.server import STORE_WIRE_VERSION
from repro.errors import ClusterError, LeaderUnavailableError, SummaryStoreError
from repro.lp.model import LPSolution
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as trace_span
from repro.service.store import (
    DEFAULT_MEMORY_ENTRIES,
    STORE_FORMAT,
    StoreSolutionCache,
    SummaryStore,
)
from repro.summary.relation_summary import DatabaseSummary

logger = get_logger("cluster.replica")

#: Default seconds between change-log polls of the background tailer.
DEFAULT_POLL_INTERVAL = 0.25

#: Records requested per ``GET /v1/log`` poll.
TAIL_BATCH = 500

#: Name of the follower's persisted replication state file.
REPLICA_STATE = "replica.json"


class LeaderClient:
    """Minimal JSON/HTTP client for one store server (stdlib only)."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, method: str, path: str,
                body: Optional[Mapping[str, object]] = None,
                allow_missing: bool = False) -> Optional[Dict[str, object]]:
        """One request; returns the decoded JSON payload.

        Raises :class:`LeaderUnavailableError` when the leader cannot be
        reached and :class:`ClusterError` on protocol-level failures.  With
        ``allow_missing`` a 404 returns ``None`` instead of raising.
        """
        data = None
        headers = {}
        if body is not None:
            envelope = dict(body)
            envelope.setdefault("version", STORE_WIRE_VERSION)
            data = json.dumps(envelope, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            if error.code == 404 and allow_missing:
                return None
            detail = ""
            try:
                detail = json.loads(error.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ClusterError(
                f"leader {self.base_url} answered {error.code} for"
                f" {method} {path}: {detail}")
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as error:
            raise LeaderUnavailableError(
                f"leader {self.base_url} is unreachable: {error}") from error
        except ValueError as error:
            raise ClusterError(
                f"leader {self.base_url} answered non-JSON for"
                f" {method} {path}: {error}") from error
        if not isinstance(payload, dict):
            raise ClusterError(f"leader {self.base_url} answered a"
                               f" non-object payload for {method} {path}")
        version = payload.get("version")
        if version != STORE_WIRE_VERSION:
            raise ClusterError(
                f"leader {self.base_url} speaks store wire version"
                f" {version!r}, this client speaks {STORE_WIRE_VERSION}")
        return payload


class ReplicatedStore:
    """Follower store backend: local reads, leader writes, log tailing.

    Parameters
    ----------
    leader_url:
        Base URL of the shard leader's :class:`StoreServer`.
    root:
        Local replica directory (same byte-identical layout as any disk
        store — a plain ``repro serve`` can mount it), or ``None`` for an
        in-memory replica.
    poll_interval:
        Seconds between background change-log polls.
    timeout:
        Per-request HTTP timeout toward the leader.
    start_tailer:
        Start the background tail thread immediately (callers that want
        deterministic catch-up, e.g. tests and ``store replicate --once``,
        pass ``False`` and drive :meth:`catch_up` themselves).
    """

    def __init__(self, leader_url: str,
                 root: Optional[Union[str, Path]] = None, *,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 timeout: float = 10.0,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 max_store_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None,
                 ttl_seconds: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None,
                 start_tailer: bool = True) -> None:
        if poll_interval <= 0:
            raise ClusterError("poll_interval must be positive")
        self.leader_url = leader_url.rstrip("/")
        self.client = LeaderClient(self.leader_url, timeout=timeout)
        self.local = SummaryStore(
            root, memory_entries=memory_entries,
            max_store_bytes=max_store_bytes, max_entries=max_entries,
            ttl_seconds=ttl_seconds, registry=registry)
        self.registry = self.local.registry
        self.root = self.local.root
        self.poll_interval = poll_interval
        self._g_applied = self.registry.gauge(
            "repro_cluster_applied_offset",
            "Last change-log offset this replica has applied")
        self._g_lag = self.registry.gauge(
            "repro_cluster_replication_lag_records",
            "Leader change-log records not yet applied locally (at the last"
            " poll)")
        self._c_caught = self.registry.counter(
            "repro_cluster_catchup_records_total",
            "Change-log records replayed onto the local replica")
        self._c_resyncs = self.registry.counter(
            "repro_cluster_resyncs_total",
            "Full resyncs forced by gap detection or lineage changes")
        self._c_leader_errors = self.registry.counter(
            "repro_cluster_leader_errors_total",
            "Requests to the leader that failed (unreachable or protocol"
            " error)")
        self._tail_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._state_path = (self.root / REPLICA_STATE
                            if self.root is not None else None)
        self._applied = 0
        self._log_id: Optional[str] = None
        self._load_state()
        self._g_applied.set(self._applied)
        if start_tailer:
            self.start()

    # ------------------------------------------------------------------ #
    # replication state
    # ------------------------------------------------------------------ #
    def _load_state(self) -> None:
        if self._state_path is None or not self._state_path.exists():
            return
        try:
            state = json.loads(self._state_path.read_text())
            self._applied = int(state["applied_offset"])
            self._log_id = state.get("log_id") or None
        except (ValueError, TypeError, KeyError) as error:
            # A torn state file is not fatal: offset 0 + no lineage simply
            # forces the next poll into a full resync.
            logger.warning("replica state %s is unreadable (%s); will resync",
                           self._state_path, error)
            self._applied, self._log_id = 0, None

    def _save_state(self) -> None:
        self._g_applied.set(self._applied)
        if self._state_path is None:
            return
        payload = json.dumps({"format": 1, "applied_offset": self._applied,
                              "log_id": self._log_id})
        SummaryStore._atomic_write(self._state_path, payload.encode("utf-8"))

    @property
    def applied_offset(self) -> int:
        """Last change-log offset applied to the local replica."""
        return self._applied

    # ------------------------------------------------------------------ #
    # tailing
    # ------------------------------------------------------------------ #
    def start(self) -> "ReplicatedStore":
        """Start the background tailer thread; returns ``self``."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._tail_loop, name="repro-store-tail", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop the tailer and persist the replication state."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._tail_lock:
            self._save_state()

    def __enter__(self) -> "ReplicatedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.catch_up()
            except LeaderUnavailableError:
                self._c_leader_errors.inc()
            except ClusterError as error:
                self._c_leader_errors.inc()
                logger.warning("tail poll failed: %s", error)
            self._stop.wait(self.poll_interval)

    def catch_up(self, to_offset: Optional[int] = None) -> int:
        """Replay leader change-log records onto the local replica.

        Tails until the leader has no more records (or, with ``to_offset``,
        until at least that offset is applied — the read-your-writes bound).
        Returns the applied offset.  Raises
        :class:`LeaderUnavailableError` when the leader cannot be reached.
        """
        with trace_span("store.replicate", leader=self.leader_url) as span:
            with self._tail_lock:
                applied = self._catch_up_locked(to_offset)
            span.set_attribute("applied_offset", applied)
        return applied

    def _catch_up_locked(self, to_offset: Optional[int]) -> int:
        while True:
            batch = self.client.request(
                "GET", f"/v1/log?from={self._applied + 1}&max={TAIL_BATCH}")
            if batch["log_id"] != self._log_id and self._log_id is not None:
                logger.warning("leader log lineage changed (%s -> %s):"
                               " full resync", self._log_id, batch["log_id"])
                self._resync_locked()
                continue
            if self._log_id is None:
                self._log_id = batch["log_id"]
            if batch.get("resync"):
                self._resync_locked()
                continue
            records = batch.get("records") or []
            for record in records:
                self._apply_locked(record)
            lag = max(0, int(batch["last_offset"]) - self._applied)
            self._g_lag.set(lag)
            self._save_state()
            if to_offset is not None and self._applied < to_offset \
                    and records:
                continue  # keep draining toward the acknowledged offset
            if len(records) >= TAIL_BATCH:
                continue  # a full batch: more records are likely waiting
            if to_offset is not None and self._applied < to_offset:
                raise ClusterError(
                    f"leader log ended at {self._applied} before the"
                    f" acknowledged offset {to_offset}")
            return self._applied

    def _apply_locked(self, record: Mapping[str, object]) -> None:
        try:
            offset = int(record["offset"])
            op = str(record["op"])
            kind = str(record["kind"])
            key = str(record["key"])
        except (KeyError, TypeError, ValueError) as error:
            raise ClusterError(f"malformed change-log record: {error}") \
                from error
        if offset <= self._applied:
            return  # idempotent re-delivery (e.g. right after a resync)
        if offset != self._applied + 1:
            logger.warning("change-log gap: applied=%d, next record=%d —"
                           " full resync", self._applied, offset)
            self._resync_locked()
            return
        if op == "put":
            self.local.apply_entry(kind, key, record.get("payload"))
        elif op == "delete":
            # A locally pinned summary is protected from the replicated
            # delete while a stream holds it; the next resync or local
            # compact reconciles.
            if not (kind == "summaries" and self.local.pin_count(key) > 0):
                self.local.delete_entry(kind, key)
        else:
            raise ClusterError(f"unknown change-log op {op!r}")
        self._applied = offset
        self._c_caught.inc()

    def _resync_locked(self) -> None:
        """Reconcile the whole replica against the leader's listings."""
        self._c_resyncs.inc()
        stats = self.client.request("GET", "/v1/stats")
        target_offset = int(stats["last_offset"])
        target_log_id = str(stats["log_id"])
        fetched = 0
        for kind in ("summaries", "components"):
            listing = self.client.request("GET", f"/v1/keys/{kind}")
            leader_keys = set(listing["keys"])
            local_keys = set(self.local.summary_fingerprints()
                             if kind == "summaries"
                             else self.local.component_keys())
            for key in sorted(local_keys - leader_keys):
                if kind == "summaries" and self.local.pin_count(key) > 0:
                    continue
                self.local.delete_entry(kind, key)
            for key in sorted(leader_keys):
                entry = self.client.request(
                    "GET", f"/v1/entry/{kind}/{quote(key)}",
                    allow_missing=True)
                if entry is None:
                    continue  # deleted while we resynced; the log covers it
                self.local.apply_entry(kind, key, entry["payload"])
                fetched += 1
        self._applied = target_offset
        self._log_id = target_log_id
        self._save_state()
        logger.info("full resync complete: %d entries fetched, applied"
                    " offset now %d", fetched, target_offset)

    def _refresh(self) -> None:
        """Best-effort synchronous catch-up (miss path); never raises."""
        try:
            self.catch_up()
        except (LeaderUnavailableError, ClusterError):
            self._c_leader_errors.inc()

    # ------------------------------------------------------------------ #
    # StoreBackend protocol: writes → leader
    # ------------------------------------------------------------------ #
    def put_summary(self, fingerprint: str, summary: DatabaseSummary,
                    meta: Optional[Mapping[str, object]] = None) -> None:
        """Write through the leader; local visibility before returning."""
        entry_meta = dict(meta or {})
        entry_meta.setdefault("total_rows", int(summary.total_rows()))
        entry_meta.setdefault("nbytes", int(summary.nbytes()))
        payload = {"format": STORE_FORMAT, "key": fingerprint,
                   "meta": entry_meta, "summary": summary.to_dict()}
        ack = self.client.request(
            "PUT", f"/v1/entry/summaries/{quote(fingerprint)}",
            body={"payload": payload})
        self.catch_up(to_offset=int(ack["offset"]))

    def put_component(self, key: str, solution: LPSolution) -> None:
        """Write one LP component solution through the leader."""
        payload = {"format": STORE_FORMAT, "key": key,
                   "values": [int(v) for v in solution.values],
                   "feasible": bool(solution.feasible),
                   "method": solution.method,
                   "max_violation": float(solution.max_violation)}
        ack = self.client.request(
            "PUT", f"/v1/entry/components/{quote(key)}",
            body={"payload": payload})
        self.catch_up(to_offset=int(ack["offset"]))

    def delete_entry(self, kind: str, key: str) -> bool:
        """Delete through the leader (the log replays it back locally)."""
        ack = self.client.request(
            "DELETE", f"/v1/entry/{kind}/{quote(key)}")
        self.catch_up(to_offset=int(ack["offset"]))
        return bool(ack["deleted"])

    # ------------------------------------------------------------------ #
    # StoreBackend protocol: reads ← local replica
    # ------------------------------------------------------------------ #
    def get_summary(self, fingerprint: str) -> Optional[DatabaseSummary]:
        summary = self.local.get_summary(fingerprint)
        if summary is not None:
            return summary
        # Cold miss: one synchronous catch-up covers the window between the
        # leader's ack and this replica's last poll, then a direct fetch
        # covers a replica that is still resyncing.
        self._refresh()
        summary = self.local.get_summary(fingerprint)
        if summary is not None:
            return summary
        try:
            entry = self.client.request(
                "GET", f"/v1/entry/summaries/{quote(fingerprint)}",
                allow_missing=True)
        except (LeaderUnavailableError, ClusterError):
            self._c_leader_errors.inc()
            return None
        if entry is None:
            return None
        try:
            self.local.apply_entry("summaries", fingerprint, entry["payload"])
        except SummaryStoreError:
            return None
        return self.local.get_summary(fingerprint)

    def read_summary(self, fingerprint: str) -> DatabaseSummary:
        try:
            return self.local.read_summary(fingerprint)
        except SummaryStoreError:
            self._refresh()
            return self.local.read_summary(fingerprint)

    def has_summary(self, fingerprint: str) -> bool:
        if self.local.has_summary(fingerprint):
            return True
        self._refresh()
        return self.local.has_summary(fingerprint)

    def get_component(self, key: str) -> Optional[LPSolution]:
        solution = self.local.get_component(key)
        if solution is not None:
            return solution
        self._refresh()
        solution = self.local.get_component(key)
        if solution is not None:
            return solution
        try:
            entry = self.client.request(
                "GET", f"/v1/entry/components/{quote(key)}",
                allow_missing=True)
        except (LeaderUnavailableError, ClusterError):
            self._c_leader_errors.inc()
            return None
        if entry is None:
            return None
        try:
            self.local.apply_entry("components", key, entry["payload"])
        except SummaryStoreError:
            return None
        return self.local.get_component(key)

    def solution_cache(self, memory_size: int = 256) -> StoreSolutionCache:
        """LP solver cache whose writes replicate through the leader."""
        return StoreSolutionCache(self, memory_size=max(1, memory_size))

    # ------------------------------------------------------------------ #
    # StoreBackend protocol: local-replica delegation
    # ------------------------------------------------------------------ #
    def summary_fingerprints(self) -> List[str]:
        return self.local.summary_fingerprints()

    def component_keys(self) -> List[str]:
        return self.local.component_keys()

    def entries(self) -> List[Dict[str, object]]:
        return self.local.entries()

    def entry_payload(self, kind: str, key: str) -> Dict[str, object]:
        return self.local.entry_payload(kind, key)

    def apply_entry(self, kind: str, key: str,
                    payload: Mapping[str, object]) -> None:
        self.local.apply_entry(kind, key, payload)

    def pin(self, fingerprint: str) -> None:
        self.local.pin(fingerprint)

    def unpin(self, fingerprint: str) -> None:
        self.local.unpin(fingerprint)

    def pinned(self, fingerprint: str):
        return self.local.pinned(fingerprint)

    def pin_count(self, fingerprint: str) -> int:
        return self.local.pin_count(fingerprint)

    def compact(self, *args: object, **kwargs: object) -> Dict[str, int]:
        """Local-replica GC only; the leader compacts its own store (and
        its deletions replicate through the log)."""
        return self.local.compact(*args, **kwargs)

    def counters(self) -> Dict[str, int]:
        return self.local.counters()

    def store_bytes(self) -> int:
        return self.local.store_bytes()

    @property
    def stats(self) -> Dict[str, int]:
        return self.local.stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return (f"ReplicatedStore({self.leader_url!r}, {where!r},"
                f" applied={self._applied})")
