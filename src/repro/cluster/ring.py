"""Consistent hashing of fingerprints across store shards.

A :class:`HashRing` places each node at ``vnodes`` pseudo-random points on a
64-bit ring (SHA-256 of ``"<node>#<replica>"``) and routes a key to the
first node point at or after the key's own hash.  Virtual nodes smooth the
key distribution; consistent placement means adding or removing one shard
only remaps the keys adjacent to its points — every other fingerprint keeps
its shard, so a resize invalidates a fraction (≈1/N) of the fleet's warmed
entries instead of all of them.

Determinism matters more than cryptography here: every process that builds
a ring from the same node names routes every fingerprint identically, with
no coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from repro.errors import ClusterError

#: Default virtual-node count per shard (even spread at small shard counts).
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes over named shards."""

    def __init__(self, nodes: Iterable[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ClusterError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._nodes: List[str] = []
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise ClusterError("a hash ring needs at least one node")

    @property
    def nodes(self) -> List[str]:
        """Shard names on the ring, in insertion order."""
        return list(self._nodes)

    def add_node(self, node: str) -> None:
        """Place one shard's virtual nodes on the ring."""
        if not node:
            raise ClusterError("shard names must be non-empty")
        if node in self._nodes:
            raise ClusterError(f"shard {node!r} is already on the ring")
        self._nodes.append(node)
        for replica in range(self.vnodes):
            bisect.insort(self._points, (_point(f"{node}#{replica}"), node))

    def remove_node(self, node: str) -> None:
        """Remove one shard; its keys flow to their ring successors."""
        if node not in self._nodes:
            raise ClusterError(f"shard {node!r} is not on the ring")
        self._nodes.remove(node)
        self._points = [(point, name) for point, name in self._points
                        if name != node]

    def node_for(self, key: str) -> str:
        """The shard responsible for ``key``."""
        index = bisect.bisect_right(self._points, (_point(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing({self._nodes!r}, vnodes={self.vnodes})"
