"""The store server: one backend exposed over versioned wire JSON + a log.

A :class:`StoreServer` makes a :class:`~repro.cluster.backend.DiskBackend`
the *leader* of a replication group: every mutation that reaches the store —
HTTP puts and deletes, and the deletes a ``compact()`` pass performs — is
appended to an :class:`~repro.cluster.log.ChangeLog` (fsynced ``log.jsonl``
segments under ``<root>/changelog/``) before the request is acknowledged,
and followers tail that log over ``GET /v1/log``.

Endpoints (threaded stdlib HTTP, same idioms as :mod:`repro.server.http`):

* ``GET /v1/entry/<kind>/<key>`` / ``PUT`` / ``DELETE`` — one entry's raw
  store payload (``kind`` is ``summaries`` or ``components``); a ``PUT``
  answers the change-log offset that made it durable;
* ``GET /v1/keys/<kind>`` — all keys of one kind;
* ``GET /v1/log?from=N&max=M`` — change-log records from offset ``N``;
  answers ``resync: true`` instead of records when ``N`` precedes the
  oldest retained record or the follower's lineage does not match;
* ``POST /v1/compact`` — run a GC pass (its deletions are logged);
* ``POST /v1/pin/<fp>`` / ``POST /v1/unpin/<fp>`` — refcounted pins;
* ``GET /v1/stats``, ``GET /metrics``, ``GET /healthz`` — telemetry.

A server opened on a store directory with history but an empty change log
first *bootstraps* the log: every existing entry is appended as a ``put``
record, so the log is a complete replayable history from offset 1 and a
follower mounted on an empty directory needs no side-channel snapshot.

Requests and responses carry ``"version": 1`` envelopes; bodies are bounded
by the same ``max_request_bytes`` cap as the serving front-end (oversized →
**413**).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.cluster.log import ChangeLog
from repro.errors import ClusterError, ServiceError, SummaryStoreError
from repro.obs.logging import get_logger
from repro.obs.trace import span as trace_span
from repro.server.http import MAX_BODY_BYTES, read_json_body
from repro.server.wire import RequestTooLargeError, WireFormatError
from repro.service.store import SummaryStore

logger = get_logger("cluster.server")

#: Version tag of the store wire protocol; bump on incompatible changes.
STORE_WIRE_VERSION = 1

#: Most records one ``GET /v1/log`` response carries.
MAX_LOG_BATCH = 500

_KINDS = ("summaries", "components")


class _StoreHTTPServer(ThreadingHTTPServer):
    """One thread per connection; never blocks process exit on stragglers."""

    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True
    app: "StoreServer"


class StoreServer:
    """Leader HTTP server over one disk-backed store + its change log.

    Parameters
    ----------
    store:
        A disk-backed :class:`~repro.service.store.SummaryStore` /
        :class:`~repro.cluster.backend.DiskBackend`.  The server attaches
        the change log as the store's journal, so *every* mutation — HTTP
        or in-process — is replicated.
    host / port:
        Listen address; ``port=0`` binds an ephemeral port.
    max_request_bytes:
        Request body cap (oversized → 413), shared with the serving
        front-end's knob.
    """

    def __init__(self, store: SummaryStore, host: str = "127.0.0.1",
                 port: int = 0, *, max_request_bytes: int = MAX_BODY_BYTES) -> None:
        if store.root is None:
            raise ClusterError(
                "a store server needs a disk-backed store (root=None is"
                " memory-only)")
        if max_request_bytes < 1:
            raise ServiceError("max_request_bytes must be at least 1")
        self.store = store
        self.registry = store.registry
        self.max_request_bytes = max_request_bytes
        self.log = ChangeLog(store.root / "changelog", registry=self.registry)
        self._requests_total = self.registry.counter(
            "repro_cluster_server_requests_total",
            "Store-server HTTP requests, by endpoint and status code",
            labelnames=("endpoint", "code"))
        self._lock = threading.Lock()
        self._serve_thread: Optional[threading.Thread] = None
        self._closed = False
        self._bootstrap_log()
        store.attach_journal(self.log)
        self._httpd = _StoreHTTPServer((host, port), _StoreHandler)
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]
        logger.info("store server bound on %s:%d (root=%s, last_offset=%d)",
                    self.host, self.port, store.root, self.log.last_offset)

    def _bootstrap_log(self) -> None:
        """Seed an empty change log from pre-existing store entries.

        Keeps the invariant that the log is a complete history: replaying
        it from offset 1 onto an empty directory reproduces the store."""
        if self.log.last_offset > 0:
            return
        seeded = 0
        for kind in _KINDS:
            keys = (self.store.summary_fingerprints() if kind == "summaries"
                    else self.store.component_keys())
            for key in keys:
                try:
                    payload = self.store.entry_payload(kind, key)
                except SummaryStoreError as error:
                    logger.warning("bootstrap skips corrupt %s entry %s: %s",
                                   kind, key[:12], error)
                    continue
                self.log.append("put", kind, key, payload)
                seeded += 1
        if seeded:
            logger.info("bootstrapped change log with %d existing entries",
                        seeded)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocking)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "StoreServer":
        """Serve on a background thread; returns ``self``."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-store-http", daemon=True)
            self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop the listener, detach the journal and close the log."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self.store.attach_journal(None)
        self.log.close()
        logger.info("store server on %s:%d closed", self.host, self.port)

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _observe(self, endpoint: str, code: int) -> None:
        self._requests_total.labels(endpoint=endpoint, code=str(code)).inc()


class _StoreHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the owning store server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-store"

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    def do_GET(self) -> None:
        self._route("GET")

    def do_PUT(self) -> None:
        self._route("PUT")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    def _route(self, method: str) -> None:
        app: StoreServer = self.server.app
        parsed = urlsplit(self.path)
        segments = [unquote(s) for s in parsed.path.split("/") if s]
        query = parse_qs(parsed.query)
        endpoint, handler = self._dispatch(method, segments)
        try:
            code = handler(segments, query)
        except RequestTooLargeError as error:
            code = self._error(413, str(error))
        except WireFormatError as error:
            code = self._error(400, str(error))
        except SummaryStoreError as error:
            code = self._error(400, str(error))
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            code = 499
            self.close_connection = True
            logger.info("client disconnected during %s", endpoint)
        except Exception as error:  # last-resort 500, connection kept sane
            code = 500
            self.close_connection = True
            logger.error("unhandled error serving %s: %s", endpoint, error)
        app._observe(endpoint, code)

    def _dispatch(self, method: str, segments: list) -> Tuple[str, object]:
        if segments == ["healthz"] and method == "GET":
            return "healthz", self._do_healthz
        if segments == ["metrics"] and method == "GET":
            return "metrics", self._do_metrics
        if segments == ["v1", "stats"] and method == "GET":
            return "stats", self._do_stats
        if segments == ["v1", "log"] and method == "GET":
            return "log", self._do_log
        if len(segments) == 3 and segments[:2] == ["v1", "keys"] \
                and method == "GET":
            return "keys", self._do_keys
        if len(segments) == 4 and segments[:2] == ["v1", "entry"]:
            if method == "GET":
                return "entry_get", self._do_entry_get
            if method == "PUT":
                return "entry_put", self._do_entry_put
            if method == "DELETE":
                return "entry_delete", self._do_entry_delete
        if segments == ["v1", "compact"] and method == "POST":
            return "compact", self._do_compact
        if len(segments) == 3 and segments[0] == "v1" \
                and segments[1] in ("pin", "unpin") and method == "POST":
            return segments[1], self._do_pin
        return "unknown", self._do_unknown

    # -------------------------------------------------------------- #
    # response plumbing
    # -------------------------------------------------------------- #
    def _send_json(self, code: int, payload: Dict[str, object]) -> int:
        payload.setdefault("version", STORE_WIRE_VERSION)
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _send_text(self, code: int, text: str, content_type: str) -> int:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return code

    def _error(self, code: int, message: str, **extra: object) -> int:
        payload: Dict[str, object] = {"error": message}
        payload.update(extra)
        return self._send_json(code, payload)

    def _kind(self, segments: list) -> str:
        kind = segments[2]
        if kind not in _KINDS:
            raise WireFormatError(
                f"entry kind must be one of {', '.join(_KINDS)}, got {kind!r}")
        return kind

    def _read_body(self) -> Dict[str, object]:
        body = read_json_body(self, self.server.app.max_request_bytes)
        version = body.get("version", STORE_WIRE_VERSION)
        if version != STORE_WIRE_VERSION:
            raise WireFormatError(
                f"store wire version {version!r} is not supported"
                f" (this server speaks {STORE_WIRE_VERSION})")
        return body

    # -------------------------------------------------------------- #
    # endpoints
    # -------------------------------------------------------------- #
    def _do_unknown(self, segments: list, query: Dict[str, list]) -> int:
        return self._error(404, f"no route for {self.command}"
                                f" /{'/'.join(segments)}")

    def _do_healthz(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        return self._send_json(200, {
            "status": "ok",
            "role": "leader",
            "log_id": app.log.log_id,
            "last_offset": app.log.last_offset,
        })

    def _do_metrics(self, segments: list, query: Dict[str, list]) -> int:
        # Refresh occupancy gauges before the scrape, like /v1/stats does.
        self.server.app.store.counters()
        text = self.server.app.registry.to_prometheus()
        return self._send_text(200, text, "text/plain; version=0.0.4")

    def _do_stats(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        return self._send_json(200, {
            "role": "leader",
            "root": str(app.store.root),
            "log_id": app.log.log_id,
            "first_offset": app.log.first_offset,
            "last_offset": app.log.last_offset,
            "counters": app.store.counters(),
        })

    def _do_log(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        log = app.log
        try:
            start = int(query.get("from", ["1"])[0])
            limit = min(MAX_LOG_BATCH,
                        int(query.get("max", [str(MAX_LOG_BATCH)])[0]))
        except ValueError:
            return self._error(400, "from/max must be integers")
        if start < 1 or limit < 1:
            return self._error(400, "from and max must be positive")
        base = {
            "log_id": log.log_id,
            "first_offset": log.first_offset,
            "last_offset": log.last_offset,
        }
        # A follower ahead of this log (e.g. the leader was rebuilt and its
        # lineage changed) or behind its retained window cannot tail — it
        # must resync from the full listings instead.
        if start > log.last_offset + 1:
            return self._send_json(200, dict(base, resync=True, records=[]))
        try:
            records = log.read(start, limit)
        except ClusterError:
            return self._send_json(200, dict(base, resync=True, records=[]))
        return self._send_json(200, dict(base, resync=False, records=records))

    def _do_keys(self, segments: list, query: Dict[str, list]) -> int:
        kind = self._kind(segments)
        store = self.server.app.store
        keys = (store.summary_fingerprints() if kind == "summaries"
                else store.component_keys())
        return self._send_json(200, {"kind": kind, "keys": keys})

    def _do_entry_get(self, segments: list, query: Dict[str, list]) -> int:
        kind, key = self._kind(segments), segments[3]
        try:
            payload = self.server.app.store.entry_payload(kind, key)
        except SummaryStoreError as error:
            return self._error(404, str(error), kind=kind, key=key)
        return self._send_json(200, {"kind": kind, "key": key,
                                     "payload": payload})

    def _do_entry_put(self, segments: list, query: Dict[str, list]) -> int:
        kind, key = self._kind(segments), segments[3]
        app = self.server.app
        body = self._read_body()
        payload = body.get("payload")
        try:
            with trace_span("store.replicate", op="put", kind=kind):
                app.store.apply_entry(kind, key, payload)
        except SummaryStoreError as error:
            return self._error(400, str(error), kind=kind, key=key)
        # apply_entry journals under the store lock, so by the time it
        # returns the record's offset is <= log.last_offset; acknowledging
        # the current tail is always safe (followers catch up at least
        # that far before a read-your-writes client proceeds).
        return self._send_json(200, {"kind": kind, "key": key,
                                     "offset": app.log.last_offset})

    def _do_entry_delete(self, segments: list, query: Dict[str, list]) -> int:
        kind, key = self._kind(segments), segments[3]
        app = self.server.app
        deleted = app.store.delete_entry(kind, key)
        return self._send_json(200, {"kind": kind, "key": key,
                                     "deleted": deleted,
                                     "offset": app.log.last_offset})

    def _do_compact(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        body = self._read_body() if self.headers.get("Content-Length") else {}
        kwargs: Dict[str, object] = {}
        for knob in ("max_store_bytes", "max_entries", "ttl_seconds"):
            if knob in body:
                kwargs[knob] = body[knob]
        report = app.store.compact(**kwargs)
        return self._send_json(200, {"report": report,
                                     "offset": app.log.last_offset})

    def _do_pin(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        fingerprint = segments[2]
        if segments[1] == "pin":
            app.store.pin(fingerprint)
        else:
            app.store.unpin(fingerprint)
        return self._send_json(200, {
            "fingerprint": fingerprint,
            "pins": app.store.pin_count(fingerprint),
        })
