"""One store backend over N shards, routed by consistent hashing.

A :class:`ShardedStore` presents the :class:`~repro.cluster.backend.StoreBackend`
protocol over a set of named member backends — typically one
:class:`~repro.cluster.replica.ReplicatedStore` per leader/follower group —
with every fingerprint and LP component key owned by exactly one shard
(:class:`~repro.cluster.ring.HashRing` placement).  Key-addressed calls
route to the owner; listings, GC and telemetry fan out and merge, so the
serving layers see one store whose capacity is the sum of its shards.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Mapping, Optional

from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.errors import ClusterError
from repro.lp.model import LPSolution
from repro.obs.metrics import MetricsRegistry
from repro.service.store import StoreSolutionCache
from repro.summary.relation_summary import DatabaseSummary


class ShardedStore:
    """Consistent-hash composition of store backends into one.

    Parameters
    ----------
    backends:
        ``{shard_name: backend}`` — any :class:`StoreBackend`
        implementations (disk, replicated, or nested sharded stores).
    vnodes:
        Virtual nodes per shard on the ring.
    registry:
        Registry for the router's own ``repro_cluster_shard_requests_total``
        counter (member backends keep their own registries).
    """

    def __init__(self, backends: Mapping[str, object],
                 vnodes: int = DEFAULT_VNODES,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if not backends:
            raise ClusterError("a sharded store needs at least one backend")
        self.backends: Dict[str, object] = dict(backends)
        self.ring = HashRing(self.backends.keys(), vnodes=vnodes)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.root = None  # no single directory; members own their storage
        self._c_routes = self.registry.counter(
            "repro_cluster_shard_requests_total",
            "Key-addressed store operations routed, by owning shard",
            labelnames=("shard",))

    def shard_for(self, key: str) -> str:
        """Name of the shard owning ``key``."""
        return self.ring.node_for(key)

    def _backend(self, key: str):
        shard = self.ring.node_for(key)
        self._c_routes.labels(shard=shard).inc()
        return self.backends[shard]

    # ------------------------------------------------------------------ #
    # key-addressed: route to the owning shard
    # ------------------------------------------------------------------ #
    def put_summary(self, fingerprint: str, summary: DatabaseSummary,
                    meta: Optional[Mapping[str, object]] = None) -> None:
        self._backend(fingerprint).put_summary(fingerprint, summary, meta)

    def get_summary(self, fingerprint: str) -> Optional[DatabaseSummary]:
        return self._backend(fingerprint).get_summary(fingerprint)

    def read_summary(self, fingerprint: str) -> DatabaseSummary:
        return self._backend(fingerprint).read_summary(fingerprint)

    def has_summary(self, fingerprint: str) -> bool:
        return self._backend(fingerprint).has_summary(fingerprint)

    def put_component(self, key: str, solution: LPSolution) -> None:
        self._backend(key).put_component(key, solution)

    def get_component(self, key: str) -> Optional[LPSolution]:
        return self._backend(key).get_component(key)

    def delete_entry(self, kind: str, key: str) -> bool:
        return self._backend(key).delete_entry(kind, key)

    def entry_payload(self, kind: str, key: str) -> Dict[str, object]:
        return self._backend(key).entry_payload(kind, key)

    def apply_entry(self, kind: str, key: str,
                    payload: Mapping[str, object]) -> None:
        self._backend(key).apply_entry(kind, key, payload)

    def pin(self, fingerprint: str) -> None:
        self._backend(fingerprint).pin(fingerprint)

    def unpin(self, fingerprint: str) -> None:
        self._backend(fingerprint).unpin(fingerprint)

    @contextlib.contextmanager
    def pinned(self, fingerprint: str) -> Iterator[None]:
        self.pin(fingerprint)
        try:
            yield
        finally:
            self.unpin(fingerprint)

    def pin_count(self, fingerprint: str) -> int:
        return self._backend(fingerprint).pin_count(fingerprint)

    def solution_cache(self, memory_size: int = 256) -> StoreSolutionCache:
        """LP solver cache routing each component key to its shard."""
        return StoreSolutionCache(self, memory_size=max(1, memory_size))

    # ------------------------------------------------------------------ #
    # fan-out: merge over every shard
    # ------------------------------------------------------------------ #
    def summary_fingerprints(self) -> List[str]:
        out: List[str] = []
        for backend in self.backends.values():
            out.extend(backend.summary_fingerprints())
        return sorted(set(out))

    def component_keys(self) -> List[str]:
        out: List[str] = []
        for backend in self.backends.values():
            out.extend(backend.component_keys())
        return sorted(set(out))

    def entries(self) -> List[Dict[str, object]]:
        out: List[Dict[str, object]] = []
        for name, backend in sorted(self.backends.items()):
            for entry in backend.entries():
                out.append({**entry, "shard": name})
        out.sort(key=lambda entry: entry["fingerprint"])
        return out

    def compact(self, *args: object, **kwargs: object) -> Dict[str, int]:
        report: Dict[str, int] = {}
        for backend in self.backends.values():
            for key, value in backend.compact(*args, **kwargs).items():
                report[key] = report.get(key, 0) + int(value)
        return report

    def counters(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for backend in self.backends.values():
            for key, value in backend.counters().items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def store_bytes(self) -> int:
        return sum(backend.store_bytes() for backend in self.backends.values())

    @property
    def stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for backend in self.backends.values():
            for key, value in backend.stats.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def close(self) -> None:
        """Close every member backend that supports closing."""
        for backend in self.backends.values():
            close = getattr(backend, "close", None)
            if callable(close):
                close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedStore({sorted(self.backends)!r})"
