"""CODD-style dataless metadata, anonymisation and scale-factor modelling."""

from repro.codd.anonymizer import Anonymizer
from repro.codd.metadata import (
    AttributeStats,
    MetadataCatalog,
    RelationMetadata,
    capture_metadata,
)
from repro.codd.scaling import (
    BYTES_PER_VALUE,
    bytes_per_row,
    database_bytes,
    scale_constraints,
    scale_factor_for_bytes,
    scale_summary,
)

__all__ = [
    "Anonymizer",
    "MetadataCatalog",
    "RelationMetadata",
    "AttributeStats",
    "capture_metadata",
    "BYTES_PER_VALUE",
    "bytes_per_row",
    "database_bytes",
    "scale_factor_for_bytes",
    "scale_constraints",
    "scale_summary",
]
