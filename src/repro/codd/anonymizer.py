"""Value anonymisation (Section 3.1).

Before schema, metadata, queries and CCs leave the client site, Hydra passes
them through an anonymiser that masks identifiers and maps every non-numeric
constant to an integer, so that the vendor-side pipeline only ever sees
numbers.  The mapping is reversible at the client, but the reverse direction
is never needed for satisfying cardinality constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple


@dataclass
class Anonymizer:
    """Bidirectional mapping of arbitrary values and names to integers.

    Two independent dictionaries are kept: one for identifiers (relation and
    attribute names) and one for data values, scoped per attribute so that
    equal strings in unrelated columns do not leak correlations.
    """

    _names: Dict[str, str] = field(default_factory=dict)
    _reverse_names: Dict[str, str] = field(default_factory=dict)
    _values: Dict[str, Dict[Hashable, int]] = field(default_factory=dict)
    _reverse_values: Dict[str, Dict[int, Hashable]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # identifier masking
    # ------------------------------------------------------------------ #
    def mask_name(self, name: str, prefix: str = "n") -> str:
        """Return a stable opaque identifier for ``name``."""
        if name not in self._names:
            masked = f"{prefix}{len(self._names):04d}"
            self._names[name] = masked
            self._reverse_names[masked] = name
        return self._names[name]

    def unmask_name(self, masked: str) -> str:
        """Return the original identifier for a masked name."""
        return self._reverse_names[masked]

    # ------------------------------------------------------------------ #
    # value mapping
    # ------------------------------------------------------------------ #
    def encode(self, attribute: str, value: Hashable) -> int:
        """Map a client value of ``attribute`` to its integer code.

        Integers are passed through unchanged (they are already safe for the
        LP); any other value receives the next free code for that attribute.
        """
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        mapping = self._values.setdefault(attribute, {})
        if value not in mapping:
            code = len(mapping)
            mapping[value] = code
            self._reverse_values.setdefault(attribute, {})[code] = value
        return mapping[value]

    def encode_many(self, attribute: str, values: Iterable[Hashable]) -> List[int]:
        """Encode several values of the same attribute."""
        return [self.encode(attribute, v) for v in values]

    def decode(self, attribute: str, code: int) -> Hashable:
        """Return the original value for an integer code (integers that were
        passed through unchanged decode to themselves)."""
        mapping = self._reverse_values.get(attribute, {})
        return mapping.get(code, code)

    def codes_for(self, attribute: str) -> Dict[Hashable, int]:
        """Return the full value-to-code mapping of one attribute."""
        return dict(self._values.get(attribute, {}))
