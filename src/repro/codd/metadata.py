"""CODD-style dataless metadata (Section 3 and Section 7.4).

CODD lets a database environment be described purely through metadata —
relation cardinalities and per-attribute statistics — without ever holding
the data.  The reproduction uses it for two purposes:

* capturing the client database's metadata for transfer to the vendor
  (metadata matching keeps the plan choices aligned), and
* modelling arbitrarily large databases: the exabyte experiment scales a
  small instance's metadata and AQP cardinalities by a scale factor instead
  of materialising anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.schema.schema import Schema


@dataclass
class AttributeStats:
    """Dataless statistics for one attribute: bounds, distinct-value count
    and an equi-width histogram."""

    name: str
    minimum: int
    maximum: int
    distinct: int
    histogram_edges: List[float] = field(default_factory=list)
    histogram_counts: List[int] = field(default_factory=list)


@dataclass
class RelationMetadata:
    """Dataless description of one relation."""

    name: str
    row_count: int
    attributes: Dict[str, AttributeStats] = field(default_factory=dict)


@dataclass
class MetadataCatalog:
    """A CODD-style metadata catalog for a whole database."""

    relations: Dict[str, RelationMetadata] = field(default_factory=dict)

    def row_counts(self) -> Dict[str, int]:
        """Relation cardinalities recorded in the catalog."""
        return {name: meta.row_count for name, meta in self.relations.items()}

    def scaled(self, factor: float) -> "MetadataCatalog":
        """Return a catalog describing a database ``factor`` times larger.

        Only cardinalities change; attribute value distributions are assumed
        to be scale-invariant, which is how the paper models the exabyte
        scenario (plans are obtained at the target scale from metadata alone,
        then executed at a small scale and their counts multiplied up).
        """
        scaled = MetadataCatalog()
        for name, meta in self.relations.items():
            scaled.relations[name] = RelationMetadata(
                name=name,
                row_count=int(round(meta.row_count * factor)),
                attributes=dict(meta.attributes),
            )
        return scaled

    def total_bytes(self, bytes_per_value: int = 8) -> int:
        """Rough size estimate of the described database."""
        total = 0
        for meta in self.relations.values():
            width = len(meta.attributes) + 1
            total += meta.row_count * width * bytes_per_value
        return total


def capture_metadata(database: Database, bins: int = 10) -> MetadataCatalog:
    """Capture a metadata catalog from a materialised database instance."""
    catalog = MetadataCatalog()
    for relation in database.relations:
        table = database.table(relation)
        rel = database.schema.relation(relation)
        meta = RelationMetadata(name=relation, row_count=table.num_rows)
        for attribute in rel.attribute_names:
            values = table.column(attribute)
            if values.size == 0:
                stats = AttributeStats(name=attribute, minimum=0, maximum=0, distinct=0)
            else:
                counts, edges = np.histogram(values, bins=bins)
                stats = AttributeStats(
                    name=attribute,
                    minimum=int(values.min()),
                    maximum=int(values.max()),
                    distinct=int(np.unique(values).size),
                    histogram_edges=edges.tolist(),
                    histogram_counts=counts.tolist(),
                )
            meta.attributes[attribute] = stats
        catalog.relations[relation] = meta
    return catalog
