"""Scale-factor modelling of large databases (Section 7.4).

The exabyte experiment in the paper never materialises an exabyte: optimizer
plans are obtained from scaled metadata, executed on the 100 GB instance, and
the observed intermediate row counts are multiplied by the scale factor.
These helpers implement that arithmetic for this reproduction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional

from repro.constraints.workload import ConstraintSet
from repro.errors import SummaryError
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary, RelationSummary

#: Rough number of bytes a single stored value occupies, used to convert
#: between target database sizes and row-count scale factors.
BYTES_PER_VALUE = 8


def bytes_per_row(schema: Schema, relation: str, bytes_per_value: int = BYTES_PER_VALUE) -> int:
    """Approximate width of one row of ``relation`` in bytes."""
    rel = schema.relation(relation)
    return bytes_per_value * len(rel.all_columns)


def database_bytes(schema: Schema, row_counts: Optional[Dict[str, int]] = None,
                   bytes_per_value: int = BYTES_PER_VALUE) -> int:
    """Approximate size in bytes of a database with the given row counts."""
    counts = row_counts or {rel.name: rel.row_count for rel in schema.relations}
    return sum(
        counts.get(rel.name, 0) * bytes_per_row(schema, rel.name, bytes_per_value)
        for rel in schema.relations
    )


def scale_factor_for_bytes(schema: Schema, target_bytes: int,
                           row_counts: Optional[Dict[str, int]] = None) -> float:
    """Scale factor needed to blow a database up to ``target_bytes``."""
    current = database_bytes(schema, row_counts)
    if current <= 0:
        return 1.0
    return target_bytes / current


def scale_constraints(ccs: ConstraintSet, factor: float, name: Optional[str] = None,
                      ) -> ConstraintSet:
    """Scale every CC cardinality by ``factor`` (CODD's metadata scaling)."""
    scaled = ccs.scaled(factor)
    if name is not None:
        scaled.name = name
    return scaled


def scale_summary(summary: DatabaseSummary, schema: Schema,
                  factor: float) -> DatabaseSummary:
    """Scale a database summary's regenerated volume by ``factor``.

    Summaries are scale-free: blowing the database up (or down) only touches
    the per-summary-row tuple counts, never the value combinations, so the
    cost is proportional to the summary size — the Section 7.4 arithmetic
    applied to the summary itself rather than to metadata.

    Every row count becomes ``max(round(count * factor), 1)`` (non-empty
    summary rows stay non-empty, so referenced combinations never vanish).
    Foreign-key values are prefix counts into the referenced relation's
    summary; they are remapped onto the *scaled* prefix counts of the same
    summary rows, which preserves referential integrity at any factor.
    """
    if factor <= 0:
        raise SummaryError(f"scale factor must be positive, got {factor}")
    # Scaling only rewrites tuple counts: the scaled summary is still the
    # product of the same component solutions, so provenance carries over.
    scaled = DatabaseSummary(
        extra_tuples=dict(summary.extra_tuples),
        lp_variable_counts=dict(summary.lp_variable_counts),
        timings=dict(summary.timings),
        component_keys={name: list(keys)
                        for name, keys in summary.component_keys.items()},
    )
    old_prefix: Dict[str, List[int]] = {}
    new_prefix: Dict[str, List[int]] = {}
    for name, relation_summary in summary.relations.items():
        counts = [max(int(round(count * factor)), 1)
                  for _, count in relation_summary.rows]
        old_prefix[name] = relation_summary.prefix_counts()
        running = 0
        prefix: List[int] = []
        for count in counts:
            running += count
            prefix.append(running)
        new_prefix[name] = prefix
        scaled.relations[name] = RelationSummary(
            relation=name,
            primary_key=relation_summary.primary_key,
            columns=relation_summary.columns,
            rows=[(values, count)
                  for (values, _), count in zip(relation_summary.rows, counts)],
        )
    for name, relation_summary in scaled.relations.items():
        rel = schema.relation(name)
        fk_positions = [
            (relation_summary.column_index(fk.column), fk.target)
            for fk in rel.foreign_keys if fk.target in scaled.relations
        ]
        if not fk_positions:
            continue
        remapped = []
        for values, count in relation_summary.rows:
            row = list(values)
            for position, target in fk_positions:
                # The old value addresses a summary row of the target; keep
                # addressing the same row under the scaled prefix counts.
                index = bisect_left(old_prefix[target], row[position])
                if index >= len(new_prefix[target]):
                    raise SummaryError(
                        f"foreign key {row[position]} of {name!r} is outside"
                        f" {target!r}'s {old_prefix[target][-1] if old_prefix[target] else 0} rows"
                    )
                row[position] = new_prefix[target][index]
            remapped.append((tuple(row), count))
        relation_summary.rows = remapped
    return scaled
