"""Scale-factor modelling of large databases (Section 7.4).

The exabyte experiment in the paper never materialises an exabyte: optimizer
plans are obtained from scaled metadata, executed on the 100 GB instance, and
the observed intermediate row counts are multiplied by the scale factor.
These helpers implement that arithmetic for this reproduction.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constraints.workload import ConstraintSet
from repro.schema.schema import Schema

#: Rough number of bytes a single stored value occupies, used to convert
#: between target database sizes and row-count scale factors.
BYTES_PER_VALUE = 8


def bytes_per_row(schema: Schema, relation: str, bytes_per_value: int = BYTES_PER_VALUE) -> int:
    """Approximate width of one row of ``relation`` in bytes."""
    rel = schema.relation(relation)
    return bytes_per_value * len(rel.all_columns)


def database_bytes(schema: Schema, row_counts: Optional[Dict[str, int]] = None,
                   bytes_per_value: int = BYTES_PER_VALUE) -> int:
    """Approximate size in bytes of a database with the given row counts."""
    counts = row_counts or {rel.name: rel.row_count for rel in schema.relations}
    return sum(
        counts.get(rel.name, 0) * bytes_per_row(schema, rel.name, bytes_per_value)
        for rel in schema.relations
    )


def scale_factor_for_bytes(schema: Schema, target_bytes: int,
                           row_counts: Optional[Dict[str, int]] = None) -> float:
    """Scale factor needed to blow a database up to ``target_bytes``."""
    current = database_bytes(schema, row_counts)
    if current <= 0:
        return 1.0
    return target_bytes / current


def scale_constraints(ccs: ConstraintSet, factor: float, name: Optional[str] = None,
                      ) -> ConstraintSet:
    """Scale every CC cardinality by ``factor`` (CODD's metadata scaling)."""
    scaled = ccs.scaled(factor)
    if name is not None:
        scaled.name = name
    return scaled
