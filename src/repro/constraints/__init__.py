"""Cardinality constraints, constraint sets and the AQP-to-CC parser."""

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.parser import (
    constraints_from_plan,
    constraints_from_plans,
    relation_size_constraints,
)
from repro.constraints.workload import ConstraintSet

__all__ = [
    "CardinalityConstraint",
    "ConstraintSet",
    "constraints_from_plan",
    "constraints_from_plans",
    "relation_size_constraints",
]
