"""Cardinality constraints (CCs).

A cardinality constraint (Section 2.2) is the declarative unit of volumetric
information: a selection predicate over the non-key attributes of a relation
(or of a PK-FK join expression rooted at a relation) together with the number
of rows that satisfy it on the client database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConstraintError
from repro.predicates.dnf import DNFPredicate


@dataclass(frozen=True)
class CardinalityConstraint:
    """A single cardinality constraint ``|sigma_predicate(expr)| = cardinality``.

    Parameters
    ----------
    relation:
        Name of the *root* relation of the constrained expression.  For a
        constraint over a PK-FK join (e.g. ``R |><| S |><| T``), this is the
        relation at the "many" end whose view covers all attributes mentioned
        by the predicate (``R`` in the paper's Figure 1).
    predicate:
        DNF selection predicate over non-key attributes.  The always-true
        predicate expresses a plain table-size constraint ``|R| = k``.
    cardinality:
        Observed number of satisfying rows on the client database.
    joined_relations:
        The relations participating in the join expression (including the
        root).  Purely informational: after the preprocessor rewrites the
        constraint onto the root relation's view, only ``relation`` and
        ``predicate`` matter.
    query_id:
        Identifier of the workload query (AQP) this constraint came from.
    """

    relation: str
    predicate: DNFPredicate
    cardinality: int
    joined_relations: Tuple[str, ...] = ()
    query_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise ConstraintError("cardinality must be non-negative")
        if not self.relation:
            raise ConstraintError("constraint must name a root relation")
        if not self.joined_relations:
            object.__setattr__(self, "joined_relations", (self.relation,))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_size_constraint(self) -> bool:
        """``True`` for plain table-size constraints ``|R| = k``."""
        return self.predicate.is_true

    @property
    def is_join_constraint(self) -> bool:
        """``True`` when the constrained expression involves a join."""
        return len(self.joined_relations) > 1

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes mentioned by the predicate."""
        return self.predicate.attributes

    def scaled(self, factor: float) -> "CardinalityConstraint":
        """Return a copy with the cardinality scaled by ``factor``.

        Used by the CODD-style metadata scaling of Section 7.4 (the exabyte
        experiment) where plans are executed at a small scale and the
        intermediate row counts are multiplied up to the target scale.
        """
        return CardinalityConstraint(
            relation=self.relation,
            predicate=self.predicate,
            cardinality=max(0, int(round(self.cardinality * factor))),
            joined_relations=self.joined_relations,
            query_id=self.query_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        expr = " |><| ".join(self.joined_relations)
        return f"CC(|sigma({expr})| = {self.cardinality})"
