"""AQP-to-CC parser.

The client-side Parser of Figure 2 converts annotated query plans into
declarative cardinality constraints (the rewriting shown going from Figure
1(c) to Figure 1(d)):

* the output of a filter over a base relation becomes a single-relation CC,
* the output of every join becomes a CC over the join expression, whose
  predicate is the conjunction of all filters applied so far and whose root
  relation is the query's root (the "many" side, whose view covers every
  attribute involved),
* base-relation sizes become unconditional CCs ``|R| = k``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.engine.plan import AnnotatedQueryPlan, FilterNode, JoinNode, PlanNode, ScanNode
from repro.predicates.dnf import DNFPredicate
from repro.schema.schema import Schema


def constraints_from_plan(plan: AnnotatedQueryPlan) -> List[CardinalityConstraint]:
    """Convert a single AQP into its cardinality constraints.

    Scan nodes do not contribute constraints here (table sizes are emitted
    once per workload by :func:`relation_size_constraints` instead of once per
    query, to avoid duplicates).
    """
    out: List[CardinalityConstraint] = []
    _walk(plan.root, plan, out)
    return out


def _walk(node: PlanNode, plan: AnnotatedQueryPlan,
          out: List[CardinalityConstraint]) -> Tuple[DNFPredicate, Tuple[str, ...]]:
    """Post-order traversal returning (accumulated predicate, relations)."""
    if isinstance(node, ScanNode):
        return DNFPredicate.true(), (node.relation,)
    if isinstance(node, FilterNode):
        child_pred, child_rels = _walk(node.child, plan, out)
        predicate = child_pred.conjoin(node.predicate)
        out.append(
            CardinalityConstraint(
                relation=node.relation if len(child_rels) == 1 else plan.root_relation,
                predicate=predicate,
                cardinality=node.cardinality,
                joined_relations=child_rels,
                query_id=plan.query_id,
            )
        )
        return predicate, child_rels
    if isinstance(node, JoinNode):
        left_pred, left_rels = _walk(node.left, plan, out)
        right_pred, right_rels = _walk(node.right, plan, out)
        predicate = left_pred.conjoin(right_pred)
        relations = tuple(dict.fromkeys(left_rels + right_rels))
        out.append(
            CardinalityConstraint(
                relation=plan.root_relation,
                predicate=predicate,
                cardinality=node.cardinality,
                joined_relations=relations,
                query_id=plan.query_id,
            )
        )
        return predicate, relations
    raise TypeError(f"unexpected plan node {type(node)!r}")


def relation_size_constraints(schema: Schema, relations: Optional[Iterable[str]] = None,
                              row_counts: Optional[Dict[str, int]] = None,
                              ) -> List[CardinalityConstraint]:
    """Emit the unconditional ``|R| = k`` constraint for each relation.

    ``row_counts`` overrides the nominal counts stored in the schema (e.g.
    with the counts observed on an actual database instance).
    """
    names = list(relations) if relations is not None else list(schema.relation_names)
    out: List[CardinalityConstraint] = []
    for name in names:
        rel = schema.relation(name)
        count = (row_counts or {}).get(name, rel.row_count)
        out.append(
            CardinalityConstraint(
                relation=name,
                predicate=DNFPredicate.true(),
                cardinality=count,
                joined_relations=(name,),
                query_id=None,
            )
        )
    return out


def constraints_from_plans(plans: Sequence[AnnotatedQueryPlan], schema: Schema,
                           row_counts: Optional[Dict[str, int]] = None,
                           include_sizes: bool = True,
                           deduplicate: bool = True,
                           name: str = "ccs") -> ConstraintSet:
    """Convert a whole workload's AQPs into a :class:`ConstraintSet`.

    Parameters
    ----------
    plans:
        The annotated plans of the workload.
    schema:
        The client schema (used for table-size constraints).
    row_counts:
        Observed per-relation row counts; defaults to the schema's nominal
        counts.
    include_sizes:
        Whether to add the unconditional ``|R| = k`` constraints for every
        relation touched by the workload.
    deduplicate:
        Drop exact duplicates (same root relation, predicate and cardinality)
        which naturally occur when several queries share sub-expressions.
    """
    ccs = ConstraintSet(name=name)
    touched: Set[str] = set()
    seen = set()
    for plan in plans:
        touched.update(plan.relations)
        for cc in constraints_from_plan(plan):
            key = (cc.relation, cc.predicate, cc.cardinality)
            if deduplicate and key in seen:
                continue
            seen.add(key)
            ccs.add(cc)
    if include_sizes:
        for cc in relation_size_constraints(schema, sorted(touched), row_counts):
            key = (cc.relation, cc.predicate, cc.cardinality)
            if deduplicate and key in seen:
                continue
            seen.add(key)
            ccs.add(cc)
    return ccs
