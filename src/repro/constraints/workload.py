"""Containers and statistics for collections of cardinality constraints."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.constraints.cc import CardinalityConstraint


class ConstraintSet:
    """An ordered collection of cardinality constraints for one client
    workload, with the grouping and summary statistics the evaluation section
    of the paper relies on (Figures 9 and 16)."""

    def __init__(self, constraints: Iterable[CardinalityConstraint] = (), name: str = "ccs") -> None:
        self.name = name
        self._constraints: List[CardinalityConstraint] = list(constraints)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def add(self, constraint: CardinalityConstraint) -> None:
        """Append a constraint to the set."""
        self._constraints.append(constraint)

    def extend(self, constraints: Iterable[CardinalityConstraint]) -> None:
        """Append several constraints to the set."""
        self._constraints.extend(constraints)

    def __iter__(self) -> Iterator[CardinalityConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __getitem__(self, index: int) -> CardinalityConstraint:
        return self._constraints[index]

    @property
    def constraints(self) -> Tuple[CardinalityConstraint, ...]:
        """The constraints in insertion order."""
        return tuple(self._constraints)

    # ------------------------------------------------------------------ #
    # grouping
    # ------------------------------------------------------------------ #
    def by_relation(self) -> Dict[str, List[CardinalityConstraint]]:
        """Group constraints by their root relation (the view they will be
        rewritten onto by the preprocessor)."""
        groups: Dict[str, List[CardinalityConstraint]] = defaultdict(list)
        for cc in self._constraints:
            groups[cc.relation].append(cc)
        return dict(groups)

    def relations(self) -> Tuple[str, ...]:
        """Root relations appearing in the constraint set, sorted."""
        return tuple(sorted({cc.relation for cc in self._constraints}))

    def for_relation(self, relation: str) -> "ConstraintSet":
        """Return the subset of constraints rooted at ``relation``."""
        return ConstraintSet(
            (cc for cc in self._constraints if cc.relation == relation),
            name=f"{self.name}:{relation}",
        )

    def scaled(self, factor: float) -> "ConstraintSet":
        """Return a copy with every cardinality scaled by ``factor``."""
        return ConstraintSet((cc.scaled(factor) for cc in self._constraints), name=self.name)

    # ------------------------------------------------------------------ #
    # statistics (Figures 9 and 16)
    # ------------------------------------------------------------------ #
    def cardinalities(self) -> np.ndarray:
        """All constraint cardinalities as an array."""
        return np.array([cc.cardinality for cc in self._constraints], dtype=np.int64)

    def cardinality_histogram(self, bins_per_decade: int = 1) -> Dict[str, List[float]]:
        """Histogram of constraint cardinalities on a log10 scale.

        Returns a mapping with ``bin_edges`` (log10 of cardinality, zero
        cardinalities counted in the first bin) and ``counts``; this is the
        data behind Figures 9 and 16.
        """
        cards = self.cardinalities()
        if cards.size == 0:
            return {"bin_edges": [], "counts": []}
        logs = np.log10(np.maximum(cards, 1).astype(float))
        max_decade = int(math.ceil(logs.max())) if logs.size else 1
        max_decade = max(max_decade, 1)
        n_bins = max_decade * bins_per_decade
        counts, edges = np.histogram(logs, bins=n_bins, range=(0.0, float(max_decade)))
        return {"bin_edges": edges.tolist(), "counts": counts.tolist()}

    def summary(self) -> Dict[str, float]:
        """Summary statistics of the constraint cardinalities."""
        cards = self.cardinalities()
        if cards.size == 0:
            return {"count": 0, "min": 0, "max": 0, "median": 0}
        return {
            "count": int(cards.size),
            "min": int(cards.min()),
            "max": int(cards.max()),
            "median": float(np.median(cards)),
            "num_queries": len({cc.query_id for cc in self._constraints if cc.query_id}),
            "num_relations": len(self.relations()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstraintSet({self.name!r}, {len(self)} CCs)"
