"""DataSynth baseline: grid-partitioned LP and sampling-based instantiation."""

from repro.datasynth.pipeline import (
    DataSynth,
    DataSynthConfig,
    DataSynthResult,
    ViewInstance,
)

__all__ = ["DataSynth", "DataSynthConfig", "DataSynthResult", "ViewInstance"]
