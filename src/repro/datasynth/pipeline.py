"""DataSynth baseline (Arasu et al., reimplemented per Sections 3-5 and 7).

DataSynth shares Hydra's declarative front end (views, sub-views, cardinality
constraints) but differs in the three ways the paper's evaluation measures:

* **Grid partitioning** — every constrained attribute's domain is
  intervalised at the CC constants and the LP has one variable per cell of
  the cross product, which explodes combinatorially (Figures 12, 13, 17).
* **Sampling-based instantiation** — the LP solution is treated as a
  probability distribution from which complete view instances are sampled
  tuple by tuple; multinomial noise causes both positive and negative
  volumetric errors (Figure 10).
* **Materialised processing** — referential-integrity repair and relation
  extraction operate on the fully instantiated views, so their cost grows
  with the data scale (Figure 14), and sampling diversity inflates the number
  of extra tuples needed for integrity (Figure 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # runtime import would create a service<->pipeline cycle
    from repro.service.store import SummaryStore

import numpy as np

from repro.constraints.workload import ConstraintSet
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import LPTooLargeError, SummaryError
from repro.lp.formulate import STRATEGY_GRID, count_lp_variables, formulate_view_lp
from repro.lp.model import ViewLP
from repro.lp.solver import DEFAULT_CACHE_SIZE, ParallelLPSolver
from repro.schema.schema import Schema
from repro.views.preprocess import Preprocessor, ViewTask

import networkx as nx


@dataclass
class DataSynthConfig:
    """Tuning knobs of the DataSynth baseline.

    ``workers``/``cache_size`` configure the shared decomposing LP solver;
    the baseline defaults to one worker (the original system is serial) but
    still benefits from decomposition and solution caching.
    """

    max_grid_variables: int = 200_000
    seed: int = 7
    time_limit: Optional[float] = None
    workers: int = 1
    cache_size: int = DEFAULT_CACHE_SIZE
    strict: bool = False


@dataclass
class ViewInstance:
    """A fully instantiated view: one value array per view attribute."""

    relation: str
    attributes: Tuple[str, ...]
    columns: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        """Number of instantiated view tuples."""
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    def matrix(self, attributes: Sequence[str]) -> np.ndarray:
        """Return the selected attributes as an ``(N, k)`` matrix."""
        if not attributes:
            return np.zeros((self.num_rows, 0), dtype=np.int64)
        return np.column_stack([self.columns[a] for a in attributes])

    def append_rows(self, rows: np.ndarray, attributes: Sequence[str]) -> None:
        """Append rows given as an ``(M, k)`` matrix over ``attributes``."""
        for i, attribute in enumerate(attributes):
            self.columns[attribute] = np.concatenate(
                [self.columns[attribute], rows[:, i].astype(np.int64)]
            )


@dataclass
class DataSynthResult:
    """Outcome of a DataSynth run: the materialised database plus the
    diagnostics the comparative experiments report."""

    database: Database
    extra_tuples: Dict[str, int] = field(default_factory=dict)
    lp_variable_counts: Dict[str, int] = field(default_factory=dict)
    lp_seconds: float = 0.0
    instantiation_seconds: float = 0.0
    total_seconds: float = 0.0


class DataSynth:
    """The DataSynth baseline regenerator.

    ``store`` optionally backs the LP component-solution cache with a
    :class:`~repro.service.store.SummaryStore`, so repeated baseline runs
    (and other processes mounting the same store) skip already-solved
    components.  DataSynth materialises full instances rather than summaries,
    so — unlike Hydra — there is no whole-result fast path.
    """

    def __init__(self, schema: Schema, config: Optional[DataSynthConfig] = None,
                 store: Optional["SummaryStore"] = None, **knobs: object) -> None:
        if knobs:
            # Deprecated loose-kwargs call path, mirroring Hydra's shim.
            import warnings

            warnings.warn(
                "passing tuning knobs as keyword arguments to DataSynth() is"
                " deprecated; use DataSynth(schema, config=DataSynthConfig(...))"
                " or repro.api.Session(schema, config=RegenConfig(...))",
                DeprecationWarning, stacklevel=2,
            )
            if config is not None:
                raise TypeError("pass either config= or loose knobs, not both")
            config = DataSynthConfig(**knobs)  # type: ignore[arg-type]
        self.schema = schema
        self.config = config or DataSynthConfig()
        self.store = store
        self.preprocessor = Preprocessor(schema)
        # DataSynth works with a continuous LP solution (the sampling step
        # does not need integrality).
        self.solver = ParallelLPSolver(
            workers=self.config.workers,
            cache_size=self.config.cache_size,
            prefer_integer=False,
            time_limit=self.config.time_limit,
            strict=self.config.strict,
            cache_backend=(
                store.solution_cache(self.config.cache_size) if store is not None
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def count_lp_variables(self, ccs: ConstraintSet) -> Dict[str, int]:
        """Grid-partitioning LP sizes per relation, without materialising."""
        counts: Dict[str, int] = {}
        for relation, constraints in ccs.by_relation().items():
            task = self.preprocessor.build_task(relation, constraints)
            counts[relation] = count_lp_variables(task, STRATEGY_GRID)
        return counts

    def generate(self, ccs: ConstraintSet,
                 relations: Optional[Sequence[str]] = None) -> DataSynthResult:
        """Run the full DataSynth pipeline and materialise the database.

        Raises
        ------
        LPTooLargeError
            When any view's grid formulation exceeds the configured variable
            limit (the analogue of the LP-solver crash reported for the
            complex workload in Section 7.2).
        """
        started = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)
        names = list(relations) if relations is not None else list(self.schema.relation_names)
        by_relation = ccs.by_relation()

        instances: Dict[str, ViewInstance] = {}
        lp_counts: Dict[str, int] = {}
        lp_seconds = 0.0
        for relation in names:
            task = self.preprocessor.build_task(relation, by_relation.get(relation, []))
            t0 = time.perf_counter()
            instance, variables = self._instantiate_view(task, rng)
            lp_seconds += time.perf_counter() - t0
            instances[relation] = instance
            lp_counts[relation] = variables

        t1 = time.perf_counter()
        extra = self._enforce_integrity(instances, names)
        database = self._extract_relations(instances, names)
        instantiation_seconds = time.perf_counter() - t1

        return DataSynthResult(
            database=database,
            extra_tuples=extra,
            lp_variable_counts=lp_counts,
            lp_seconds=lp_seconds,
            instantiation_seconds=instantiation_seconds,
            total_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # view instantiation by sampling
    # ------------------------------------------------------------------ #
    def _instantiate_view(self, task: ViewTask,
                          rng: np.random.Generator) -> Tuple[ViewInstance, int]:
        view = task.view
        defaults = {attr: view.domain(attr).lo for attr in view.attributes}
        total = task.total_rows

        if not task.subviews:
            columns = {
                attr: np.full(total, defaults[attr], dtype=np.int64)
                for attr in view.attributes
            }
            return ViewInstance(view.relation, view.attributes, columns), 0

        view_lp = formulate_view_lp(
            task, strategy=STRATEGY_GRID, max_grid_variables=self.config.max_grid_variables
        )
        solution = self.solver.solve(view_lp.model)

        assigned: Dict[str, np.ndarray] = {}
        order = task.merge_order()
        for subview_index in order:
            block = view_lp.block_for(subview_index)
            counts = np.array(
                [max(solution.value(i), 0) for i in block.variable_indices], dtype=np.float64
            )
            corners = {
                attr: np.array(
                    [v.boxes[0].interval(attr).lo for v in block.variables], dtype=np.int64
                )
                for attr in block.attributes
            }
            shared = tuple(a for a in block.attributes if a in assigned)
            new_attrs = tuple(a for a in block.attributes if a not in assigned)
            if not assigned:
                cells = self._sample_cells(counts, total, rng)
                for attr in block.attributes:
                    assigned[attr] = corners[attr][cells]
                continue
            if not new_attrs:
                continue
            cells = self._sample_conditional(
                counts, corners, shared, assigned, total, rng
            )
            for attr in new_attrs:
                assigned[attr] = corners[attr][cells]

        columns: Dict[str, np.ndarray] = {}
        for attr in view.attributes:
            if attr in assigned:
                columns[attr] = assigned[attr]
            else:
                columns[attr] = np.full(total, defaults[attr], dtype=np.int64)
        return ViewInstance(view.relation, view.attributes, columns), view_lp.num_variables

    @staticmethod
    def _sample_cells(counts: np.ndarray, total: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Sample ``total`` cell indices proportionally to the LP counts."""
        if total <= 0:
            return np.zeros(0, dtype=np.int64)
        weight = counts.sum()
        if weight <= 0:
            return np.zeros(total, dtype=np.int64)
        probabilities = counts / weight
        return rng.choice(len(counts), size=total, p=probabilities)

    def _sample_conditional(self, counts: np.ndarray, corners: Mapping[str, np.ndarray],
                            shared: Tuple[str, ...], assigned: Mapping[str, np.ndarray],
                            total: int, rng: np.random.Generator) -> np.ndarray:
        """Sample cell indices conditioned on the already-assigned shared
        attributes (the ``Prob(C | B)`` step of the paper's description)."""
        if not shared:
            return self._sample_cells(counts, total, rng)

        cell_shared = np.column_stack([corners[a] for a in shared])
        row_shared = np.column_stack([assigned[a] for a in shared])

        groups: Dict[Tuple[int, ...], np.ndarray] = {}
        unique_cells, cell_inverse = np.unique(cell_shared, axis=0, return_inverse=True)
        for group_index in range(len(unique_cells)):
            groups[tuple(int(v) for v in unique_cells[group_index])] = np.flatnonzero(
                cell_inverse == group_index
            )

        result = np.zeros(total, dtype=np.int64)
        unique_rows, row_inverse = np.unique(row_shared, axis=0, return_inverse=True)
        for group_index in range(len(unique_rows)):
            members = np.flatnonzero(row_inverse == group_index)
            key = tuple(int(v) for v in unique_rows[group_index])
            candidate_cells = groups.get(key)
            if candidate_cells is None or counts[candidate_cells].sum() <= 0:
                # Sampling noise produced a shared value the conditional
                # distribution has no mass for; fall back to the marginal.
                result[members] = self._sample_cells(counts, len(members), rng)
                continue
            local = counts[candidate_cells]
            probabilities = local / local.sum()
            picks = rng.choice(len(candidate_cells), size=len(members), p=probabilities)
            result[members] = candidate_cells[picks]
        return result

    # ------------------------------------------------------------------ #
    # referential integrity on materialised views
    # ------------------------------------------------------------------ #
    def _enforce_integrity(self, instances: Dict[str, ViewInstance],
                           names: Sequence[str]) -> Dict[str, int]:
        extra = {name: 0 for name in names}
        order = [name for name in nx.topological_sort(self.schema.dependency_graph)
                 if name in instances]
        views = self.preprocessor.views
        for target in order:
            target_instance = instances[target]
            target_attrs = views.view(target).attributes
            if not target_attrs:
                continue
            existing = target_instance.matrix(target_attrs)
            known = set(map(tuple, np.unique(existing, axis=0))) if existing.size else set()
            for dependent in self.schema.dependents_of(target):
                if dependent not in instances:
                    continue
                dependent_matrix = instances[dependent].matrix(target_attrs)
                if dependent_matrix.size == 0:
                    continue
                needed = np.unique(dependent_matrix, axis=0)
                missing = [row for row in map(tuple, needed) if row not in known]
                if not missing:
                    continue
                target_instance.append_rows(
                    np.array(missing, dtype=np.int64), target_attrs
                )
                known.update(missing)
                extra[target] += len(missing)
        return extra

    # ------------------------------------------------------------------ #
    # relation extraction
    # ------------------------------------------------------------------ #
    def _extract_relations(self, instances: Dict[str, ViewInstance],
                           names: Sequence[str]) -> Database:
        views = self.preprocessor.views
        database = Database(self.schema, name="datasynth")
        for relation in names:
            rel = self.schema.relation(relation)
            instance = instances[relation]
            num_rows = instance.num_rows
            columns: Dict[str, np.ndarray] = {
                rel.primary_key: np.arange(1, num_rows + 1, dtype=np.int64)
            }
            for fk in rel.foreign_keys:
                parent_instance = instances[fk.target]
                parent_attrs = views.view(fk.target).attributes
                columns[fk.column] = self._match_foreign_keys(
                    instance, parent_instance, parent_attrs
                )
            for attribute in rel.attribute_names:
                columns[attribute] = instance.columns[attribute]
            database.attach(relation, Table(columns, name=relation))
        return database

    @staticmethod
    def _match_foreign_keys(child: ViewInstance, parent: ViewInstance,
                            parent_attrs: Tuple[str, ...]) -> np.ndarray:
        """Assign each child row the primary key of a parent row carrying the
        same borrowed attribute values (the first such row)."""
        if not parent_attrs:
            return np.ones(child.num_rows, dtype=np.int64)
        parent_matrix = parent.matrix(parent_attrs)
        child_matrix = child.matrix(parent_attrs)

        parent_unique, parent_first = np.unique(parent_matrix, axis=0, return_index=True)
        lookup = {
            tuple(int(v) for v in row): int(index) + 1
            for row, index in zip(parent_unique, parent_first)
        }
        child_unique, child_inverse = np.unique(child_matrix, axis=0, return_inverse=True)
        mapped = np.zeros(len(child_unique), dtype=np.int64)
        for i, row in enumerate(child_unique):
            key = tuple(int(v) for v in row)
            mapped[i] = lookup.get(key, 1)
        return mapped[child_inverse]
