"""In-memory columnar relational engine producing annotated query plans."""

from repro.engine.database import Database
from repro.engine.executor import ExecutionResult, Executor
from repro.engine.plan import (
    AnnotatedQueryPlan,
    FilterNode,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.engine.table import Table

__all__ = [
    "Table",
    "Database",
    "Executor",
    "ExecutionResult",
    "AnnotatedQueryPlan",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "JoinNode",
]
