"""In-memory columnar relational engine producing annotated query plans."""

from repro.engine.database import Database
from repro.engine.executor import EXECUTOR_MODES, ExecutionResult, Executor
from repro.engine.pipeline import (
    BatchFilter,
    BatchHashJoin,
    BatchOperator,
    BatchScan,
    HashJoinBuild,
    PipelineStats,
)
from repro.engine.plan import (
    AnnotatedQueryPlan,
    FilterNode,
    JoinNode,
    PlanNode,
    ScanNode,
)
from repro.engine.table import Table

__all__ = [
    "Table",
    "Database",
    "Executor",
    "ExecutionResult",
    "EXECUTOR_MODES",
    "AnnotatedQueryPlan",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "JoinNode",
    "BatchOperator",
    "BatchScan",
    "BatchFilter",
    "BatchHashJoin",
    "HashJoinBuild",
    "PipelineStats",
]
