"""A database instance: a schema plus one :class:`Table` per relation."""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.engine.table import Table
from repro.errors import EngineError
from repro.schema.schema import Schema


class Database:
    """An in-memory database: a validated schema and its relation instances.

    Tables may be attached lazily, which is how the Tuple Generator of
    Section 6 plugs into the engine.  Two lazy flavours exist:

    * :meth:`attach_dynamic` registers a zero-argument callable returning the
      complete table, built on first access;
    * :meth:`attach_stream` registers a factory of columnar *batches*;
      streaming consumers pull batches via :meth:`scan_batches` without the
      relation ever being materialised, while whole-table consumers get a
      concatenated (and then cached) table from :meth:`table`.
    """

    def __init__(self, schema: Schema, tables: Optional[Mapping[str, Table]] = None,
                 name: str = "db") -> None:
        self.schema = schema
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._lazy: Dict[str, Callable[[], Table]] = {}
        self._streams: Dict[str, Callable[[], Iterator[Table]]] = {}
        #: Declared total rows of stream-attached relations (see
        #: :meth:`attach_stream`); lets :meth:`row_count` answer for free.
        self._stream_rows: Dict[str, int] = {}
        #: Iterator returned by the most recent factory call per stream
        #: relation, used to detect factories that violate the fresh-iterator
        #: contract (see :meth:`scan_batches`).
        self._stream_passes: Dict[str, Iterator[Table]] = {}
        for rel_name, table in (tables or {}).items():
            self.attach(rel_name, table)

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #
    def attach(self, relation: str, table: Table) -> None:
        """Attach a materialised table for ``relation``."""
        rel = self.schema.relation(relation)
        missing = [c for c in rel.all_columns if not table.has_column(c)]
        if missing:
            raise EngineError(
                f"table for {relation!r} is missing columns {missing!r}"
            )
        self._tables[relation] = table
        self._lazy.pop(relation, None)
        self._streams.pop(relation, None)
        self._stream_passes.pop(relation, None)

    def attach_dynamic(self, relation: str, factory: Callable[[], Table]) -> None:
        """Register a dynamic (generate-on-demand) source for ``relation``.

        ``factory`` is a zero-argument callable returning a :class:`Table`;
        it is invoked the first time the relation is scanned, mirroring the
        engine-resident Tuple Generator of the paper.
        """
        self.schema.relation(relation)
        self._lazy[relation] = factory
        self._tables.pop(relation, None)
        self._streams.pop(relation, None)
        self._stream_passes.pop(relation, None)

    def attach_stream(self, relation: str,
                      stream_factory: Callable[[], Iterator[Table]],
                      row_count: Optional[int] = None) -> None:
        """Register a batch-streaming source for ``relation``.

        ``stream_factory`` is a zero-argument callable returning a **fresh**
        iterator of columnar batches on *every* call — each scan is one full
        independent single-pass cursor over the relation, and the factory is
        re-invoked per scan.  A factory that hands back the same (by then
        exhausted) iterator object twice would silently yield an empty or
        truncated second scan; the database detects this and raises
        :class:`EngineError` instead (see :meth:`scan_batches`).  Nothing is
        generated until the relation is scanned; :meth:`scan_batches`
        consumes batches one at a time (bounded memory), and :meth:`table`
        concatenates a full pass and caches the result for subsequent
        whole-table access.

        ``row_count`` declares the stream's total rows when the source knows
        it up front (a tuple generator always does): :meth:`row_count` then
        answers without consuming a stream pass — essential when the stream
        expands a scale-free summary to billions of tuples.
        """
        self.schema.relation(relation)
        self._streams[relation] = stream_factory
        self._stream_passes.pop(relation, None)
        if row_count is not None:
            self._stream_rows[relation] = int(row_count)
        else:
            self._stream_rows.pop(relation, None)
        self._tables.pop(relation, None)
        self._lazy.pop(relation, None)

    def table(self, relation: str) -> Table:
        """Return the table for ``relation``, materialising it if dynamic."""
        if relation in self._tables:
            return self._tables[relation]
        if relation in self._lazy:
            table = self._lazy[relation]()
            self._tables[relation] = table
            return table
        if relation in self._streams:
            table = self._concat_batches(relation, self._stream_pass(relation))
            self._tables[relation] = table
            return table
        raise EngineError(f"no data attached for relation {relation!r}")

    def scan_batches(self, relation: str) -> Iterator[Table]:
        """Iterate over the relation in columnar batches.

        Stream-attached relations are served straight from their batch
        factory without ever materialising the whole table; already
        materialised (or plain dynamic) relations yield a single batch.
        Unknown relations raise immediately, not at first iteration.

        **Single-pass contract:** every call starts one fresh, independent
        pass — the stream factory is re-invoked and must return a new
        iterator each time (restartable sources such as
        :meth:`~repro.tuplegen.generator.TupleGenerator.stream` do this
        naturally).  A factory that returns the same iterator object as a
        previous scan would silently serve empty or truncated data from the
        exhausted cursor; that violation raises :class:`EngineError` here —
        re-attach via :meth:`attach_stream` to reset a one-shot source.
        """
        if relation in self._streams and relation not in self._tables:
            return self._stream_pass(relation)
        table = self.table(relation)  # raises EngineError when unattached
        return iter((table,))

    def has_table(self, relation: str) -> bool:
        """Return ``True`` if data (materialised or dynamic) is attached."""
        return (relation in self._tables or relation in self._lazy
                or relation in self._streams)

    def is_dynamic(self, relation: str) -> bool:
        """Return ``True`` if the relation is served by a dynamic generator
        or batch stream that has not been materialised yet."""
        return (relation in self._lazy or relation in self._streams) \
            and relation not in self._tables

    @property
    def relations(self) -> Tuple[str, ...]:
        """Names of relations with attached data."""
        return tuple(sorted(set(self._tables) | set(self._lazy) | set(self._streams)))

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _stream_pass(self, relation: str) -> Iterator[Table]:
        """Start one fresh pass over a stream-attached relation, enforcing
        the fresh-iterator contract of :meth:`scan_batches`."""
        batches = self._streams[relation]()
        if batches is self._stream_passes.get(relation):
            raise EngineError(
                f"stream factory for relation {relation!r} returned the same"
                " iterator object as a previous scan; each scan consumes one"
                " full single-pass cursor, so the factory must return a fresh"
                " iterator per call (re-attach via attach_stream to reset a"
                " one-shot source)"
            )
        self._stream_passes[relation] = batches
        return batches

    def _concat_batches(self, relation: str, batches: Iterator[Table]) -> Table:
        """Concatenate a batch stream into one table (empty streams produce
        a zero-row table with the relation's schema columns)."""
        collected = list(batches)
        if not collected:
            rel = self.schema.relation(relation)
            return Table.empty(rel.all_columns, name=relation)
        return Table.concat(collected, name=relation)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def row_count(self, relation: str) -> int:
        """Return the number of rows of one attached relation.

        Stream-attached relations answer from their declared row count when
        the source provided one, and are otherwise counted by consuming a
        batch stream pass (bounded memory) *without* materialising or caching
        the full table — either way counting does not defeat dynamic
        generation.
        """
        if relation in self._tables:
            return self._tables[relation].num_rows
        if relation in self._streams:
            declared = self._stream_rows.get(relation)
            if declared is not None:
                return declared
            return sum(batch.num_rows for batch in self._stream_pass(relation))
        return self.table(relation).num_rows  # plain dynamic, or raises

    def row_counts(self) -> Dict[str, int]:
        """Return the number of rows per attached relation (materialised,
        dynamic or stream-attached)."""
        return {name: self.row_count(name) for name in self.relations}

    def total_rows(self) -> int:
        """Total rows across all attached relations."""
        return sum(self.row_counts().values())

    def nbytes(self) -> int:
        """Approximate in-memory footprint of all materialised tables."""
        return sum(self._tables[name].nbytes() for name in self._tables)

    # ------------------------------------------------------------------ #
    # persistence (used by the Figure 15 disk-vs-dynamic experiment)
    # ------------------------------------------------------------------ #
    def dump(self, directory: Path) -> Dict[str, Path]:
        """Write every materialised relation to ``directory`` as ``.npz``
        files and return the file path per relation."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for name in self.relations:
            table = self.table(name)
            path = directory / f"{name}.npz"
            np.savez(path, **{c: table.column(c) for c in table.column_names})
            paths[name] = path
        return paths

    @classmethod
    def load(cls, schema: Schema, directory: Path, name: str = "db") -> "Database":
        """Load a database previously written by :meth:`dump`."""
        directory = Path(directory)
        db = cls(schema, name=name)
        for rel in schema.relations:
            path = directory / f"{rel.name}.npz"
            if not path.exists():
                continue
            with np.load(path) as data:
                table = Table({c: data[c] for c in data.files}, name=rel.name)
            db.attach(rel.name, table)
        return db

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, {len(self.relations)} relations)"
