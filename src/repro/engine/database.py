"""A database instance: a schema plus one :class:`Table` per relation."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.engine.table import Table
from repro.errors import EngineError
from repro.schema.schema import Schema


class Database:
    """An in-memory database: a validated schema and its relation instances.

    Tables may be attached lazily (``datagen``-style dynamic relations are
    registered as callables that build the table on first access), which is
    how the Tuple Generator of Section 6 plugs into the engine.
    """

    def __init__(self, schema: Schema, tables: Optional[Mapping[str, Table]] = None,
                 name: str = "db") -> None:
        self.schema = schema
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._lazy: Dict[str, "callable"] = {}
        for rel_name, table in (tables or {}).items():
            self.attach(rel_name, table)

    # ------------------------------------------------------------------ #
    # table management
    # ------------------------------------------------------------------ #
    def attach(self, relation: str, table: Table) -> None:
        """Attach a materialised table for ``relation``."""
        rel = self.schema.relation(relation)
        missing = [c for c in rel.all_columns if not table.has_column(c)]
        if missing:
            raise EngineError(
                f"table for {relation!r} is missing columns {missing!r}"
            )
        self._tables[relation] = table
        self._lazy.pop(relation, None)

    def attach_dynamic(self, relation: str, factory) -> None:
        """Register a dynamic (generate-on-demand) source for ``relation``.

        ``factory`` is a zero-argument callable returning a :class:`Table`;
        it is invoked the first time the relation is scanned, mirroring the
        engine-resident Tuple Generator of the paper.
        """
        self.schema.relation(relation)
        self._lazy[relation] = factory
        self._tables.pop(relation, None)

    def table(self, relation: str) -> Table:
        """Return the table for ``relation``, materialising it if dynamic."""
        if relation in self._tables:
            return self._tables[relation]
        if relation in self._lazy:
            table = self._lazy[relation]()
            self._tables[relation] = table
            return table
        raise EngineError(f"no data attached for relation {relation!r}")

    def has_table(self, relation: str) -> bool:
        """Return ``True`` if data (materialised or dynamic) is attached."""
        return relation in self._tables or relation in self._lazy

    def is_dynamic(self, relation: str) -> bool:
        """Return ``True`` if the relation is served by a dynamic generator
        that has not been materialised yet."""
        return relation in self._lazy and relation not in self._tables

    @property
    def relations(self) -> Tuple[str, ...]:
        """Names of relations with attached data."""
        return tuple(sorted(set(self._tables) | set(self._lazy)))

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def row_counts(self) -> Dict[str, int]:
        """Return the number of rows per attached (materialised) relation."""
        return {name: self.table(name).num_rows for name in self.relations}

    def total_rows(self) -> int:
        """Total rows across all attached relations."""
        return sum(self.row_counts().values())

    def nbytes(self) -> int:
        """Approximate in-memory footprint of all materialised tables."""
        return sum(self._tables[name].nbytes() for name in self._tables)

    # ------------------------------------------------------------------ #
    # persistence (used by the Figure 15 disk-vs-dynamic experiment)
    # ------------------------------------------------------------------ #
    def dump(self, directory: Path) -> Dict[str, Path]:
        """Write every materialised relation to ``directory`` as ``.npz``
        files and return the file path per relation."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: Dict[str, Path] = {}
        for name in self.relations:
            table = self.table(name)
            path = directory / f"{name}.npz"
            np.savez(path, **{c: table.column(c) for c in table.column_names})
            paths[name] = path
        return paths

    @classmethod
    def load(cls, schema: Schema, directory: Path, name: str = "db") -> "Database":
        """Load a database previously written by :meth:`dump`."""
        directory = Path(directory)
        db = cls(schema, name=name)
        for rel in schema.relations:
            path = directory / f"{rel.name}.npz"
            if not path.exists():
                continue
            with np.load(path) as data:
                table = Table({c: data[c] for c in data.files}, name=rel.name)
            db.attach(rel.name, table)
        return db

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Database({self.name!r}, {len(self.relations)} relations)"
