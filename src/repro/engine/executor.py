"""Query executor producing annotated query plans.

The executor evaluates a :class:`~repro.workload.query.Query` against a
:class:`~repro.engine.database.Database`, building the left-deep plan of the
paper's Figure 1(c): scan/filter the root relation, then repeatedly filter a
dimension relation and PK-FK join it in.  Every operator's output cardinality
is recorded, which is precisely the AQP the client site ships to the vendor.

Two execution modes produce identical results:

* ``"pipelined"`` (the default) runs the fact side batch-at-a-time through
  the volcano-style operators of :mod:`repro.engine.pipeline`: the root
  relation is consumed via :meth:`Database.scan_batches`, so stream-attached
  relations are never materialised and peak memory is one batch plus the
  (small) dimension build sides;
* ``"materialize"`` is the classic table-at-a-time path: every relation is
  fully scanned before the first operator runs.

Both modes share the same join kernel (:class:`HashJoinBuild`), and because
filters are row-local and PK-FK joins match each fact row at most once, the
modes emit byte-identical result tables and
:class:`~repro.engine.plan.AnnotatedQueryPlan` cardinalities.  The executor's
:attr:`Executor.stats` hook records the peak batch (or intermediate) rows
either mode pushed through the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.pipeline import (
    BatchFilter,
    BatchHashJoin,
    BatchOperator,
    BatchScan,
    HashJoinBuild,
    PipelineStats,
    collect,
    count_predicates,
    drain,
)
from repro.engine.plan import AnnotatedQueryPlan, FilterNode, JoinNode, PlanNode, ScanNode
from repro.engine.table import Table
from repro.errors import EngineError
from repro.obs.trace import span as trace_span
from repro.predicates.dnf import DNFPredicate
from repro.workload.query import Query, Workload

#: Supported execution modes.
EXECUTOR_MODES = ("pipelined", "materialize")


@dataclass
class ExecutionResult:
    """The outcome of executing one query: the final intermediate table (the
    join result, before any projection/aggregation) and the AQP."""

    table: Table
    plan: AnnotatedQueryPlan


class Executor:
    """Executes workload queries against a database, producing AQPs.

    Parameters
    ----------
    database:
        The database to execute against.
    mode:
        ``"pipelined"`` (default) evaluates batch-at-a-time without ever
        materialising stream-attached relations; ``"materialize"`` is the
        table-at-a-time path.  Results are identical in both modes.
    """

    def __init__(self, database: Database, mode: str = "pipelined") -> None:
        if mode not in EXECUTOR_MODES:
            raise EngineError(
                f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
            )
        self.database = database
        self.schema = database.schema
        self.mode = mode
        #: Peak-batch-rows accounting across every query this executor ran.
        self.stats = PipelineStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query) -> ExecutionResult:
        """Execute ``query`` and return the result table plus its AQP.

        Collecting the result table concatenates the output batches; use
        :meth:`execute_plan` when only the AQP is needed (constant memory in
        pipelined mode) or :meth:`count` for streaming predicate counts.
        """
        pipeline, make_plan = self._prepare(query)
        table = collect(pipeline)
        return ExecutionResult(table=table, plan=make_plan())

    def execute_plan(self, query: Query) -> AnnotatedQueryPlan:
        """Execute ``query`` for its AQP alone, discarding result batches.

        In pipelined mode this is the constant-memory path: batches flow
        through the operators into a cardinality-accumulating sink and are
        dropped, so AQPs can be collected over databases far larger than
        memory.
        """
        pipeline, make_plan = self._prepare(query)
        drain(pipeline)
        return make_plan()

    def count(self, query: Query,
              predicates: Sequence[DNFPredicate]) -> List[int]:
        """Execute ``query`` and count, per predicate, the matching result
        rows — without retaining the result table in pipelined mode."""
        pipeline, _ = self._prepare(query)
        return count_predicates(pipeline, predicates)

    def execute_workload(self, workload: Workload) -> List[AnnotatedQueryPlan]:
        """Execute every query of the workload, returning the AQPs."""
        with trace_span("engine.execute_workload", mode=self.mode,
                        queries=len(workload)) as span:
            plans = [self.execute_plan(query) for query in workload]
            span.set_attribute("batches", self.stats.batches)
            span.set_attribute("peak_batch_rows", self.stats.peak_batch_rows)
        return plans

    # ------------------------------------------------------------------ #
    # plan assembly (shared by both modes)
    # ------------------------------------------------------------------ #
    def _prepare(
        self, query: Query,
    ) -> Tuple[BatchOperator, Callable[[], AnnotatedQueryPlan]]:
        """Validate the query and assemble its operator chain.

        Materialize mode forces the root relation into a whole table first,
        so the scan yields one full-size batch and every operator sees (and
        accounts) complete intermediates — table-at-a-time execution as a
        degenerate one-batch pipeline, sharing a single plan-construction
        path with pipelined mode.
        """
        query.validate(self.schema)
        if self.mode == "materialize":
            self.database.table(query.root)
        return self._build_pipeline(query)

    def _build_pipeline(
        self, query: Query,
    ) -> Tuple[BatchOperator, Callable[[], AnnotatedQueryPlan]]:
        """Assemble the operator chain for ``query``.

        Returns the chain's top operator plus a plan factory to call *after*
        the chain has been drained: operator cardinalities are only complete
        once every batch has flowed through.  Dimension (build) sides are
        resolved eagerly — they are whole-table consumers by design; only
        the fact side streams.
        """
        scan_op = BatchScan(self.database, query.root, self.stats)
        source: BatchOperator = scan_op
        root_filter = query.filter_for(query.root)
        filter_op: Optional[BatchFilter] = None
        if not root_filter.is_true:
            filter_op = BatchFilter(source, root_filter, self.stats)
            source = filter_op

        joins: List[Tuple[BatchHashJoin, str, str, int, DNFPredicate, int]] = []
        for _, fk_column, parent in query.join_order(self.schema):
            parent_table = self.database.table(parent)
            scan_cardinality = parent_table.num_rows
            parent_filter = query.filter_for(parent)
            build_side = parent_table
            if not parent_filter.is_true:
                build_side = parent_table.select(parent_table.evaluate(parent_filter))
            build = HashJoinBuild(build_side, self.schema.relation(parent).primary_key)
            join_op = BatchHashJoin(source, fk_column, build, self.stats)
            source = join_op
            joins.append((join_op, fk_column, parent, scan_cardinality,
                          parent_filter, build_side.num_rows))

        def make_plan() -> AnnotatedQueryPlan:
            plan: PlanNode = ScanNode(relation=query.root, cardinality=scan_op.rows_out)
            if filter_op is not None:
                plan = FilterNode(
                    relation=query.root,
                    predicate=root_filter,
                    child=plan,
                    cardinality=filter_op.rows_out,
                )
            for join_op, fk_column, parent, scan_cardinality, parent_filter, \
                    filtered_cardinality in joins:
                parent_scan: PlanNode = ScanNode(
                    relation=parent, cardinality=scan_cardinality
                )
                if not parent_filter.is_true:
                    parent_scan = FilterNode(
                        relation=parent,
                        predicate=parent_filter,
                        child=parent_scan,
                        cardinality=filtered_cardinality,
                    )
                plan = JoinNode(
                    fk_column=fk_column,
                    parent_relation=parent,
                    left=plan,
                    right=parent_scan,
                    cardinality=join_op.rows_out,
                )
            return AnnotatedQueryPlan(
                query_id=query.query_id,
                root_relation=query.root,
                root=plan,
                relations=tuple(query.relations),
            )

        return source, make_plan
