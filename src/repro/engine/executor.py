"""Query executor producing annotated query plans.

The executor evaluates a :class:`~repro.workload.query.Query` against a
:class:`~repro.engine.database.Database`, building the left-deep plan of the
paper's Figure 1(c): scan/filter the root relation, then repeatedly filter a
dimension relation and PK-FK join it in.  Every operator's output cardinality
is recorded, which is precisely the AQP the client site ships to the vendor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.plan import AnnotatedQueryPlan, FilterNode, JoinNode, PlanNode, ScanNode
from repro.engine.table import Table
from repro.errors import EngineError
from repro.workload.query import Query, Workload


@dataclass
class ExecutionResult:
    """The outcome of executing one query: the final intermediate table (the
    join result, before any projection/aggregation) and the AQP."""

    table: Table
    plan: AnnotatedQueryPlan


class Executor:
    """Executes workload queries against a database, producing AQPs."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.schema = database.schema

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query) -> ExecutionResult:
        """Execute ``query`` and return the result table plus its AQP."""
        query.validate(self.schema)
        root_rel = self.schema.relation(query.root)

        current = self.database.table(query.root)
        plan: PlanNode = ScanNode(relation=query.root, cardinality=current.num_rows)

        root_filter = query.filter_for(query.root)
        if not root_filter.is_true:
            current = current.select(current.evaluate(root_filter))
            plan = FilterNode(
                relation=query.root,
                predicate=root_filter,
                child=plan,
                cardinality=current.num_rows,
            )

        for child, fk_column, parent in query.join_order(self.schema):
            parent_table = self.database.table(parent)
            parent_scan: PlanNode = ScanNode(relation=parent, cardinality=parent_table.num_rows)
            parent_filter = query.filter_for(parent)
            if not parent_filter.is_true:
                parent_table = parent_table.select(parent_table.evaluate(parent_filter))
                parent_scan = FilterNode(
                    relation=parent,
                    predicate=parent_filter,
                    child=parent_scan,
                    cardinality=parent_table.num_rows,
                )
            current = self._pk_fk_join(current, fk_column, parent, parent_table)
            plan = JoinNode(
                fk_column=fk_column,
                parent_relation=parent,
                left=plan,
                right=parent_scan,
                cardinality=current.num_rows,
            )

        aqp = AnnotatedQueryPlan(
            query_id=query.query_id,
            root_relation=query.root,
            root=plan,
            relations=tuple(query.relations),
        )
        return ExecutionResult(table=current, plan=aqp)

    def execute_workload(self, workload: Workload) -> List[AnnotatedQueryPlan]:
        """Execute every query of the workload, returning the AQPs."""
        return [self.execute(query).plan for query in workload]

    # ------------------------------------------------------------------ #
    # join implementation
    # ------------------------------------------------------------------ #
    def _pk_fk_join(self, left: Table, fk_column: str, parent: str,
                    parent_table: Table) -> Table:
        """Join the running intermediate result with a (possibly filtered)
        parent relation on ``left.fk_column = parent.pk``."""
        if not left.has_column(fk_column):
            raise EngineError(
                f"intermediate result is missing foreign-key column {fk_column!r}"
            )
        parent_rel = self.schema.relation(parent)
        pk = parent_table.column(parent_rel.primary_key)
        fks = left.column(fk_column)

        order = np.argsort(pk, kind="stable")
        pk_sorted = pk[order]
        positions = np.searchsorted(pk_sorted, fks)
        positions = np.clip(positions, 0, max(len(pk_sorted) - 1, 0))
        if len(pk_sorted) == 0:
            matched = np.zeros(len(fks), dtype=bool)
        else:
            matched = pk_sorted[positions] == fks

        joined_left = left.select(matched)
        parent_rows = order[positions[matched]]
        extra: Dict[str, np.ndarray] = {}
        for column in parent_table.column_names:
            if column == parent_rel.primary_key or joined_left.has_column(column):
                continue
            extra[column] = parent_table.column(column)[parent_rows]
        return joined_left.with_columns(extra)
