"""Volcano-style batched execution pipeline.

The operators in this module evaluate the paper's left-deep AQP plans
batch-at-a-time instead of table-at-a-time: the root (fact) relation is
pulled through :meth:`~repro.engine.database.Database.scan_batches`, filters
and PK-FK joins are applied to one columnar batch at a time, and a sink at
the top of the chain accumulates whatever the caller needs (the full result
table, plain cardinalities, or per-predicate counts).

Stream-attached relations are therefore never materialised along the fact
side: peak memory is one batch (plus the build sides of the joins, which are
the small dimension relations of a star/snowflake query).  The pipelined
result is *identical* to table-at-a-time execution — filters are row-local
and PK-FK joins match each fact row against at most one dimension row, so
per-batch evaluation followed by concatenation commutes with whole-table
evaluation, preserving both row order and every operator cardinality.

Operator chains are single-use: each operator counts the rows it emits in
``rows_out`` (the AQP annotation) while it is drained, so a chain must be
built, drained through exactly one sink, and then only inspected — a second
drain raises :class:`EngineError` rather than double-counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import EngineError
from repro.predicates.dnf import DNFPredicate


@dataclass
class PipelineStats:
    """Memory-accounting hook shared by every operator of an executor.

    ``peak_batch_rows`` is the largest batch that flowed through any
    operator — the pipelined executor's peak working-set size in rows.  In
    table-at-a-time (``materialize``) mode the executor feeds every full
    intermediate table through the same hook, so the counter doubles as the
    apples-to-apples memory-footprint comparison between the two modes
    (dimension build sides are excluded in both modes).
    """

    batches: int = 0
    peak_batch_rows: int = 0
    rows: int = 0

    def observe(self, num_rows: int) -> None:
        """Record one batch (or one full intermediate) of ``num_rows``."""
        self.batches += 1
        self.rows += num_rows
        if num_rows > self.peak_batch_rows:
            self.peak_batch_rows = num_rows


class BatchOperator:
    """Base class of the streaming operators: an iterable of columnar
    batches that counts the rows it emits."""

    def __init__(self, stats: Optional[PipelineStats] = None) -> None:
        self.stats = stats
        #: Total rows emitted so far — the operator's AQP cardinality once
        #: the chain has been fully drained.
        self.rows_out = 0
        self._consumed = False

    def __iter__(self) -> Iterator[Table]:
        if self._consumed:
            raise EngineError(
                f"{type(self).__name__} has already been drained; operator"
                " chains are single-use — build a new pipeline"
            )
        self._consumed = True
        for batch in self._produce():
            self.rows_out += batch.num_rows
            if self.stats is not None:
                self.stats.observe(batch.num_rows)
            yield batch

    def _produce(self) -> Iterator[Table]:
        raise NotImplementedError


class BatchScan(BatchOperator):
    """Leaf operator: pulls a relation's batches from the database.

    Stream-attached relations are served straight from their batch factory
    (one fresh single pass, see :meth:`Database.scan_batches`); materialised
    relations arrive as a single batch.  A source that yields no batches at
    all still emits one empty batch carrying the relation's schema columns,
    so downstream operators always see the correct shape.
    """

    def __init__(self, database: Database, relation: str,
                 stats: Optional[PipelineStats] = None) -> None:
        super().__init__(stats)
        self.database = database
        self.relation = relation

    def _produce(self) -> Iterator[Table]:
        empty = True
        for batch in self.database.scan_batches(self.relation):
            empty = False
            yield batch
        if empty:
            rel = self.database.schema.relation(self.relation)
            yield Table.empty(rel.all_columns, name=self.relation)


class BatchFilter(BatchOperator):
    """Vectorised selection applied batch-by-batch."""

    def __init__(self, source: BatchOperator, predicate: DNFPredicate,
                 stats: Optional[PipelineStats] = None) -> None:
        super().__init__(stats)
        self.source = source
        self.predicate = predicate

    def _produce(self) -> Iterator[Table]:
        for batch in self.source:
            yield batch.select(batch.evaluate(self.predicate))


class HashJoinBuild:
    """The build side of a PK-FK join: a (filtered) dimension table indexed
    by primary key.

    The index is a sorted copy of the key column probed with a vectorised
    binary search — the columnar equivalent of a hash-table build, built
    once per join and probed by every fact batch.
    """

    def __init__(self, table: Table, primary_key: str) -> None:
        self.table = table
        self.primary_key = primary_key
        pk = table.column(primary_key)
        self._order = np.argsort(pk, kind="stable")
        self._pk_sorted = pk[self._order]

    def probe(self, left: Table, fk_column: str) -> Table:
        """Join ``left`` rows whose ``fk_column`` matches a build-side key,
        carrying over every build-side column not already present."""
        if not left.has_column(fk_column):
            raise EngineError(
                f"intermediate result is missing foreign-key column {fk_column!r}"
            )
        fks = left.column(fk_column)
        positions = np.searchsorted(self._pk_sorted, fks)
        positions = np.clip(positions, 0, max(len(self._pk_sorted) - 1, 0))
        if len(self._pk_sorted) == 0:
            matched = np.zeros(len(fks), dtype=bool)
        else:
            matched = self._pk_sorted[positions] == fks
        joined = left.select(matched)
        build_rows = self._order[positions[matched]]
        extra: Dict[str, np.ndarray] = {}
        for column in self.table.column_names:
            if column == self.primary_key or joined.has_column(column):
                continue
            extra[column] = self.table.column(column)[build_rows]
        return joined.with_columns(extra)


class BatchHashJoin(BatchOperator):
    """PK-FK join: probes each fact-side batch against a prebuilt dimension
    side.  Every fact row matches at most one dimension row, so the join
    neither reorders nor duplicates probe rows — batch boundaries are
    preserved exactly."""

    def __init__(self, source: BatchOperator, fk_column: str,
                 build: HashJoinBuild,
                 stats: Optional[PipelineStats] = None) -> None:
        super().__init__(stats)
        self.source = source
        self.fk_column = fk_column
        self.build = build

    def _produce(self) -> Iterator[Table]:
        for batch in self.source:
            yield self.build.probe(batch, self.fk_column)


# ---------------------------------------------------------------------- #
# sinks
# ---------------------------------------------------------------------- #
def collect(pipeline: BatchOperator) -> Table:
    """Drain the pipeline and concatenate its batches into one table."""
    # BatchScan always emits at least one (possibly empty) batch, which
    # Table.concat requires.
    return Table.concat(list(pipeline))


def drain(pipeline: BatchOperator) -> int:
    """Drain the pipeline, discarding batches; returns the emitted rows.

    This is the cardinality-accumulating sink of AQP collection: after
    draining, every operator's ``rows_out`` holds its annotation while peak
    memory stayed at one batch.
    """
    rows = 0
    for batch in pipeline:
        rows += batch.num_rows
    return rows


def count_predicates(pipeline: BatchOperator,
                     predicates: Sequence[DNFPredicate]) -> List[int]:
    """Drain the pipeline, accumulating per-predicate match counts.

    Evaluates every predicate against each batch as it streams past —
    equivalent to ``collect(pipeline).count(p)`` for each predicate, at one
    batch of peak memory.
    """
    counts = [0] * len(predicates)
    for batch in pipeline:
        for i, predicate in enumerate(predicates):
            counts[i] += batch.count(predicate)
    return counts
