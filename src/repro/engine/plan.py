"""Annotated query plans (AQPs).

An AQP (Section 2.1) is a query execution plan whose operator output edges are
annotated with the row cardinalities observed during execution.  The plan
shape used here matches the paper's Figure 1(c): the root relation is scanned
(and filtered), and dimension relations are filtered and joined in one at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.predicates.dnf import DNFPredicate


@dataclass
class PlanNode:
    """Base class for plan operators.  ``cardinality`` is the annotated
    number of output rows of the operator."""

    cardinality: int = 0

    def children(self) -> Tuple["PlanNode", ...]:
        """Child operators (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Yield the node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanNode(PlanNode):
    """A full scan of a base relation."""

    relation: str = ""

    def label(self) -> str:
        """Human-readable operator label."""
        return f"Scan({self.relation})"


@dataclass
class FilterNode(PlanNode):
    """A selection on the output of a child operator."""

    relation: str = ""
    predicate: DNFPredicate = field(default_factory=DNFPredicate.true)
    child: Optional[PlanNode] = None

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    def label(self) -> str:
        """Human-readable operator label."""
        return f"Filter({self.relation})"


@dataclass
class JoinNode(PlanNode):
    """A PK-FK join between the running intermediate result (``left``) and a
    filtered dimension relation (``right``)."""

    fk_column: str = ""
    parent_relation: str = ""
    left: Optional[PlanNode] = None
    right: Optional[PlanNode] = None

    def children(self) -> Tuple[PlanNode, ...]:
        out = []
        if self.left is not None:
            out.append(self.left)
        if self.right is not None:
            out.append(self.right)
        return tuple(out)

    def label(self) -> str:
        """Human-readable operator label."""
        return f"Join({self.fk_column} = {self.parent_relation}.pk)"


@dataclass
class AnnotatedQueryPlan:
    """An executed plan: the operator tree with cardinality annotations plus
    bookkeeping needed to convert it into cardinality constraints."""

    query_id: str
    root_relation: str
    root: PlanNode
    relations: Tuple[str, ...] = ()

    def nodes(self) -> List[PlanNode]:
        """All operators of the plan in pre-order."""
        return list(self.root.walk())

    def operator_cardinalities(self) -> Dict[str, int]:
        """Cardinality per operator label (for reporting and comparisons)."""
        out: Dict[str, int] = {}
        for i, node in enumerate(self.nodes()):
            label = getattr(node, "label", lambda: type(node).__name__)()
            out[f"{i}:{label}"] = node.cardinality
        return out

    def output_cardinality(self) -> int:
        """Cardinality of the plan's final output."""
        return self.root.cardinality

    def pretty(self) -> str:
        """Return an indented textual rendering of the annotated plan."""
        lines: List[str] = []

        def _render(node: PlanNode, depth: int) -> None:
            label = getattr(node, "label", lambda: type(node).__name__)()
            lines.append("  " * depth + f"{label}  [rows={node.cardinality}]")
            for child in node.children():
                _render(child, depth + 1)

        _render(self.root, 0)
        return "\n".join(lines)
