"""In-memory columnar tables.

The engine substrate stores every relation as a set of equal-length
``numpy.int64`` columns.  All values are integers (the anonymizer of the paper
maps client values to integers before they ever reach the vendor pipeline),
which keeps scans, joins and predicate evaluation simple and fast.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EngineError
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import IntervalSet


class Table:
    """A columnar table: a mapping of column name to an int64 array."""

    def __init__(self, columns: Mapping[str, np.ndarray], name: str = "") -> None:
        if not columns:
            raise EngineError("a table needs at least one column")
        arrays: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for col_name, values in columns.items():
            arr = np.asarray(values, dtype=np.int64)
            if arr.ndim != 1:
                raise EngineError(f"column {col_name!r} must be one-dimensional")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise EngineError(
                    f"column {col_name!r} has {arr.shape[0]} rows, expected {length}"
                )
            arrays[col_name] = arr
        self.name = name
        self._columns = arrays
        self._num_rows = int(length or 0)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, column_names: Sequence[str], name: str = "") -> "Table":
        """Return a table with the given columns and zero rows."""
        return cls({c: np.empty(0, dtype=np.int64) for c in column_names}, name=name)

    @classmethod
    def concat(cls, tables: Sequence["Table"], name: str = "") -> "Table":
        """Concatenate tables with identical columns (e.g. streamed batches)."""
        if not tables:
            raise EngineError("cannot concatenate zero tables")
        if len(tables) == 1:
            return tables[0]
        columns = tables[0].column_names
        return cls({
            c: np.concatenate([t.column(c) for t in tables]) for c in columns
        }, name=name or tables[0].name)

    @classmethod
    def from_rows(cls, column_names: Sequence[str], rows: Iterable[Sequence[int]],
                  name: str = "") -> "Table":
        """Build a table from an iterable of row tuples."""
        data = list(rows)
        if not data:
            return cls.empty(column_names, name=name)
        matrix = np.asarray(data, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != len(column_names):
            raise EngineError("row width does not match the number of columns")
        return cls({c: matrix[:, i] for i, c in enumerate(column_names)}, name=name)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the array backing the named column."""
        try:
            return self._columns[name]
        except KeyError:
            raise EngineError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Return ``True`` if the table has the named column."""
        return name in self._columns

    def row(self, index: int) -> Dict[str, int]:
        """Return a single row as a dict (slow; intended for tests/debug)."""
        if not 0 <= index < self._num_rows:
            raise EngineError(f"row index {index} out of range")
        return {c: int(arr[index]) for c, arr in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, int]]:
        """Iterate over rows as dicts (slow; intended for tests/debug)."""
        for i in range(self._num_rows):
            yield self.row(i)

    # ------------------------------------------------------------------ #
    # relational operations used by the executor
    # ------------------------------------------------------------------ #
    def select(self, mask: np.ndarray) -> "Table":
        """Return the rows where ``mask`` is true."""
        if mask.shape[0] != self._num_rows:
            raise EngineError("selection mask length does not match table")
        return Table({c: arr[mask] for c, arr in self._columns.items()}, name=self.name)

    def take(self, indices: np.ndarray) -> "Table":
        """Return the rows at the given positions (with repetition allowed)."""
        return Table({c: arr[indices] for c, arr in self._columns.items()}, name=self.name)

    def with_columns(self, extra: Mapping[str, np.ndarray]) -> "Table":
        """Return a copy extended with additional columns."""
        merged: Dict[str, np.ndarray] = dict(self._columns)
        for name, values in extra.items():
            if name in merged:
                raise EngineError(f"column {name!r} already present")
            merged[name] = values
        return Table(merged, name=self.name)

    def project(self, columns: Sequence[str]) -> "Table":
        """Return a copy restricted to the given columns."""
        return Table({c: self.column(c) for c in columns}, name=self.name)

    # ------------------------------------------------------------------ #
    # predicate evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, predicate: DNFPredicate) -> np.ndarray:
        """Return a boolean mask of rows satisfying a DNF predicate.

        Attributes mentioned by the predicate but absent from the table make
        the corresponding conjunct false for all rows (consistent with
        :meth:`Conjunct.evaluate` on missing attributes).
        """
        if predicate.is_true:
            return np.ones(self._num_rows, dtype=bool)
        mask = np.zeros(self._num_rows, dtype=bool)
        for conjunct in predicate.conjuncts:
            mask |= self._evaluate_conjunct(conjunct)
        return mask

    def _evaluate_conjunct(self, conjunct: Conjunct) -> np.ndarray:
        mask = np.ones(self._num_rows, dtype=bool)
        for attr, values in conjunct.constraints.items():
            if not self.has_column(attr):
                return np.zeros(self._num_rows, dtype=bool)
            mask &= _membership_mask(self.column(attr), values)
            if not mask.any():
                break
        return mask

    def count(self, predicate: DNFPredicate) -> int:
        """Return the number of rows satisfying the predicate."""
        return int(self.evaluate(predicate).sum())

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        """Approximate memory footprint of the table in bytes."""
        return sum(arr.nbytes for arr in self._columns.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {self._num_rows} rows, {len(self._columns)} cols)"


def _membership_mask(values: np.ndarray, allowed: IntervalSet) -> np.ndarray:
    """Vectorised membership test of ``values`` in an :class:`IntervalSet`."""
    mask = np.zeros(values.shape[0], dtype=bool)
    for interval in allowed:
        mask |= (values >= interval.lo) & (values < interval.hi)
    return mask
