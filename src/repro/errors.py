"""Exception hierarchy for the Hydra reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """The relational schema is malformed (missing keys, dangling FKs, ...)."""


class PredicateError(ReproError):
    """A predicate or interval is malformed (empty domain, bad bounds, ...)."""


class ConstraintError(ReproError):
    """A cardinality constraint is inconsistent with the schema or views."""


class ViewError(ReproError):
    """View construction or CC-to-view rewriting failed."""


class PartitionError(ReproError):
    """Domain partitioning failed or produced an invalid partition."""


class PartitionBudgetError(PartitionError):
    """A partitioning pass exceeded its configured size budget and was
    aborted early so the caller can retry with a coarser configuration."""


class LPError(ReproError):
    """LP formulation or solving failed."""


class InfeasibleLPError(LPError):
    """The LP has no feasible solution (mutually inconsistent constraints)."""


class LPTooLargeError(LPError):
    """The LP formulation is too large to materialise.

    This models the behaviour reported in the paper where the LP solver
    crashes on the grid-partitioning formulation of DataSynth for the complex
    workload (Section 7.2).
    """


class SummaryError(ReproError):
    """Summary construction (align/merge/consistency) failed."""


class GenerationError(ReproError):
    """Tuple generation or materialisation failed."""


class EngineError(ReproError):
    """The in-memory relational engine hit an unexpected state."""


class WorkloadError(ReproError):
    """A query or workload is malformed with respect to the schema."""


class ServiceError(ReproError):
    """The regeneration service hit an unexpected state (unknown
    fingerprint, submission after shutdown, ...)."""


class ServiceOverloadedError(ServiceError):
    """The service rejected a cold submission because an admission limit was
    reached — the global ``max_pending`` backpressure cap or the submitting
    tenant's ``max_pending_per_tenant`` fair-admission cap; retry later or
    raise the limit."""


class ServiceClosedError(ServiceError):
    """A cold submission arrived after the service's worker pool was shut
    down (``close()``), or the pool went away while the build was queued.
    The flight is failed and unregistered — waiters never hang on it."""


class UnknownBackendError(ReproError):
    """No pipeline backend is registered under the requested engine name."""


class ConfigError(ReproError):
    """A :class:`~repro.api.RegenConfig` knob is out of its valid range."""


class SummaryStoreError(ServiceError):
    """A summary store is unreadable: unknown format version, corrupted or
    partially written entry files, or a missing store directory."""


class ClusterError(SummaryStoreError):
    """A replicated/sharded store operation failed: the leader is
    unreachable, the wire payload is malformed, or the change log and the
    local replica disagree in a way a resync cannot repair."""


class LeaderUnavailableError(ClusterError):
    """A write (or a required catch-up read) could not reach the shard's
    leader store server; retry once the leader is back."""


class ChangeLogError(ClusterError):
    """The append-only change log is unreadable or refused an append
    (corrupt segment, unknown log format, closed log)."""


class ObservabilityError(ReproError):
    """Misuse of the :mod:`repro.obs` layer: invalid metric names, label
    sets, bucket layouts or quantile arguments."""
