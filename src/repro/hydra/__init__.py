"""The Hydra regenerator: client-side extraction and vendor-side pipeline."""

from repro.hydra.client import ClientPackage, extract_constraints
from repro.hydra.pipeline import Hydra, HydraConfig, HydraResult, ViewBuildReport

__all__ = [
    "Hydra",
    "HydraConfig",
    "HydraResult",
    "ViewBuildReport",
    "ClientPackage",
    "extract_constraints",
]
