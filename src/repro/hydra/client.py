"""Client-side helpers (the left half of Figure 2).

At the client site, Hydra executes the query workload against the original
database to obtain annotated query plans, converts them into cardinality
constraints with the parser, and (optionally) anonymises values before
anything leaves the premises.  These helpers bundle those steps so that the
vendor-side pipeline can be exercised end to end in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.codd.anonymizer import Anonymizer
from repro.constraints.parser import constraints_from_plans
from repro.constraints.workload import ConstraintSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plan import AnnotatedQueryPlan
from repro.workload.query import Workload


@dataclass
class ClientPackage:
    """Everything the client ships to the vendor: the (anonymised) schema is
    implicit in the shared :class:`~repro.schema.Schema` object, the AQPs are
    retained for reporting, and the CCs drive regeneration.

    ``peak_batch_rows`` is the executor's memory-accounting telemetry: the
    largest batch (pipelined) or intermediate table (materialize) that AQP
    collection pushed through a plan."""

    plans: List[AnnotatedQueryPlan]
    constraints: ConstraintSet
    row_counts: Dict[str, int]
    peak_batch_rows: int = 0


def extract_constraints(database: Database, workload: Workload,
                        include_sizes: bool = True,
                        name: str = "client-ccs",
                        executor_mode: str = "pipelined") -> ClientPackage:
    """Execute the workload on the client database and derive its CCs.

    AQP collection runs through the pipelined executor by default: plans are
    drained into a cardinality-accumulating sink, so stream-attached (lazy)
    relations are never materialised and peak memory stays at one batch.
    """
    workload.validate(database.schema)
    executor = Executor(database, mode=executor_mode)
    plans = executor.execute_workload(workload)
    # Collect row counts over every attached relation the workload touches —
    # including stream-attached (lazy) relations, which ``Database.relations``
    # covers and ``row_count`` counts without materialising them.
    touched = set(workload.relations())
    row_counts = {rel: database.row_count(rel)
                  for rel in database.relations if rel in touched}
    constraints = constraints_from_plans(
        plans, database.schema, row_counts=row_counts,
        include_sizes=include_sizes, name=name,
    )
    return ClientPackage(plans=plans, constraints=constraints,
                         row_counts=row_counts,
                         peak_batch_rows=executor.stats.peak_batch_rows)
