"""The Hydra vendor-side pipeline (Figure 2).

Given the client schema and the cardinality constraints extracted from the
client's annotated query plans, :class:`Hydra` produces a
:class:`~repro.summary.DatabaseSummary`:

1. the shared preprocessor rewrites CCs onto per-relation views and
   decomposes each view into sub-views (maximal cliques),
2. the LP formulator region-partitions every sub-view and emits one LP per
   view (cardinality constraints + cross-sub-view consistency constraints),
3. the LP solver finds an integral feasible point,
4. the summary generator deterministically aligns and merges the sub-view
   solutions, instantiates view summaries, repairs referential integrity and
   extracts the per-relation summaries.

The summary can then be handed to the tuple generator for dynamic generation
or materialisation — both of which cost time proportional to the *target*
data size, while everything in this module costs time independent of it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily at runtime to avoid a service<->hydra cycle
    from repro.service.store import SummaryStore

from repro.constraints.workload import ConstraintSet
from repro.errors import LPTooLargeError
from repro.lp.decompose import decompose_model
from repro.lp.formulate import (
    STRATEGY_GRID,
    STRATEGY_REGION,
    count_lp_variables,
    formulate_view_lp,
)
from repro.lp.model import LPSolution, ViewLP
from repro.lp.solver import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_WORKERS,
    ParallelLPSolver,
)
from repro.schema.schema import Schema
from repro.summary.align import merge_subview_solutions
from repro.summary.consistency import enforce_referential_consistency
from repro.summary.relation_summary import (
    DatabaseSummary,
    build_relation_summary,
)
from repro.summary.solution import ViewSolution, subview_solutions
from repro.summary.view_summary import ViewSummary, instantiate_view_summary
from repro.views.preprocess import Preprocessor, ViewTask


@dataclass
class HydraConfig:
    """Tuning knobs of the Hydra pipeline.

    Parameters
    ----------
    strategy:
        Partitioning strategy; ``"region"`` is Hydra proper, ``"grid"`` turns
        the pipeline into a DataSynth-style formulation (useful for
        ablations).
    prefer_integer:
        Ask the solver for an exactly integral solution first.
    milp_variable_limit / time_limit:
        Passed to :class:`~repro.lp.solver.ParallelLPSolver`; the MILP size
        limit applies per connected component after decomposition.
    max_grid_variables:
        Ceiling on grid materialisation when ``strategy="grid"``.
    workers:
        Concurrent component solves; view LPs are decomposed into
        independent connected components and farmed out to a pool.
    cache_size:
        Capacity of the LRU component-solution cache (``0`` disables it);
        repeated builds over identical constraint sets skip their solves.
    use_processes:
        Use a process pool instead of threads for component solves.
    strict:
        Raise :class:`~repro.errors.InfeasibleLPError` on residual constraint
        violation instead of reporting it in the diagnostics.
    """

    strategy: str = STRATEGY_REGION
    prefer_integer: bool = True
    milp_variable_limit: int = 4_000
    time_limit: Optional[float] = 10.0
    max_grid_variables: int = 200_000
    max_region_variables: int = 8_000
    workers: int = DEFAULT_WORKERS
    cache_size: int = DEFAULT_CACHE_SIZE
    use_processes: bool = False
    strict: bool = False


@dataclass
class ViewBuildReport:
    """Diagnostics for one view: LP size, solve statistics and timings."""

    relation: str
    num_subviews: int = 0
    num_constraints: int = 0
    lp_variables: int = 0
    lp_constraints: int = 0
    solver_method: str = "none"
    max_violation: float = 0.0
    formulate_seconds: float = 0.0
    solve_seconds: float = 0.0
    merge_seconds: float = 0.0


@dataclass
class HydraResult:
    """The outcome of a Hydra run: the database summary plus per-view
    diagnostics (used by the experiment harness)."""

    summary: DatabaseSummary
    view_reports: Dict[str, ViewBuildReport] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: Wall-clock of the batched parallel solve phase.  Per-view
    #: ``solve_seconds`` overlap under concurrency, so their sum overstates
    #: the elapsed time; this is the honest end-to-end figure.
    lp_wall_seconds: float = 0.0
    #: Aggregate solver diagnostics: component count, cache hits/misses and
    #: the wall-clock of the batched parallel solve.
    solver_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def lp_variable_counts(self) -> Dict[str, int]:
        """LP variables per relation (Figure 12 / 17 metric)."""
        return {name: report.lp_variables for name, report in self.view_reports.items()}

    def lp_seconds(self) -> float:
        """Total LP formulation + solving time (Figure 13 metric).

        Uses the wall-clock of the batched solve phase when available;
        per-view solve times overlap under concurrency.
        """
        formulate = sum(r.formulate_seconds for r in self.view_reports.values())
        if self.lp_wall_seconds > 0.0:
            return formulate + self.lp_wall_seconds
        return formulate + sum(r.solve_seconds for r in self.view_reports.values())

    def cache_counters(self) -> Dict[str, int]:
        """Cache/serving counters of this build: LP component cache hits and
        misses, whether the whole summary came from a store, and the store's
        on-disk footprint (zero when no store is attached)."""
        return {
            "hits": int(self.solver_stats.get("cache_hits", 0)),
            "misses": int(self.solver_stats.get("cache_misses", 0)),
            "summary_store_hits": int(self.solver_stats.get("summary_store_hits", 0)),
            "store_bytes": int(self.solver_stats.get("store_bytes", 0)),
        }


class Hydra:
    """The Hydra data regenerator.

    Parameters
    ----------
    schema / config:
        The client schema and tuning knobs.
    store:
        Optional :class:`~repro.service.store.SummaryStore`.  When given,
        builds whose ``(schema, constraints, relations)`` fingerprint is
        already stored skip the whole pipeline (zero LP solves), fresh builds
        are persisted, and the solver's component-solution cache is backed by
        the store so solutions survive restarts and are shared across worker
        processes.
    """

    def __init__(self, schema: Schema, config: Optional[HydraConfig] = None,
                 store: Optional["SummaryStore"] = None, **knobs: object) -> None:
        if knobs:
            # Deprecated loose-kwargs call path (``Hydra(schema, workers=4)``);
            # the supported spellings are an explicit HydraConfig or the
            # repro.api Session facade.
            import warnings

            warnings.warn(
                "passing tuning knobs as keyword arguments to Hydra() is"
                " deprecated; use Hydra(schema, config=HydraConfig(...)) or"
                " repro.api.Session(schema, config=RegenConfig(...))",
                DeprecationWarning, stacklevel=2,
            )
            if config is not None:
                raise TypeError("pass either config= or loose knobs, not both")
            config = HydraConfig(**knobs)  # type: ignore[arg-type]
        self.schema = schema
        self.config = config or HydraConfig()
        self.store = store
        self.preprocessor = Preprocessor(schema)
        self.solver = ParallelLPSolver(
            workers=self.config.workers,
            cache_size=self.config.cache_size,
            prefer_integer=self.config.prefer_integer,
            milp_variable_limit=self.config.milp_variable_limit,
            time_limit=self.config.time_limit,
            use_processes=self.config.use_processes,
            strict=self.config.strict,
            cache_backend=(
                store.solution_cache(self.config.cache_size) if store is not None
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def request_fingerprint(self, ccs: ConstraintSet,
                            relations: Optional[Sequence[str]] = None) -> str:
        """The store fingerprint of one build request.

        Includes the result-affecting configuration knobs (strategy,
        integrality, size/time limits) so a store shared between
        differently-configured pipelines never serves one configuration's
        summary as another's; performance knobs (``workers``, ``cache_size``,
        ``use_processes``) do not change the result and are excluded.
        """
        from repro.service.fingerprint import workload_fingerprint

        config = self.config
        return workload_fingerprint(
            self.schema, ccs, relations=relations,
            profile=[
                "hydra", config.strategy, config.prefer_integer,
                config.milp_variable_limit, config.time_limit,
                config.max_grid_variables, config.max_region_variables,
            ],
        )

    def component_manifest(self, ccs: ConstraintSet,
                           relations: Optional[Sequence[str]] = None,
                           ) -> Dict[str, List[str]]:
        """Per-relation canonical component keys of a build request, without
        solving anything.

        Preprocessing and LP formulation cost time independent of the data
        size; the returned keys are exactly the solver's decomposition keys
        (:func:`repro.lp.decompose.component_key`), so diffing two manifests
        names the constraint-graph components whose cached solutions an
        incremental build reuses verbatim.
        """
        names = list(relations) if relations is not None else list(self.schema.relation_names)
        by_relation = ccs.by_relation()
        manifest: Dict[str, List[str]] = {}
        for relation in names:
            task = self.preprocessor.build_task(relation, by_relation.get(relation, []))
            if not task.subviews:
                manifest[relation] = []
                continue
            view_lp = formulate_view_lp(
                task,
                strategy=self.config.strategy,
                max_grid_variables=self.config.max_grid_variables,
                max_region_variables=self.config.max_region_variables,
            )
            manifest[relation] = sorted(
                component.key for component in decompose_model(view_lp.model).components
            )
        return manifest

    def build_summary(self, ccs: ConstraintSet,
                      relations: Optional[Sequence[str]] = None) -> HydraResult:
        """Run the full vendor-side pipeline and return the database summary.

        Parameters
        ----------
        ccs:
            The client's cardinality constraints.
        relations:
            The relations to regenerate; defaults to every relation of the
            schema (relations without constraints receive a single-row
            summary carrying their nominal row count).
        """
        started = time.perf_counter()
        fingerprint: Optional[str] = None
        if self.store is not None:
            fingerprint = self.request_fingerprint(ccs, relations)
            cached = self.store.get_summary(fingerprint)
            if cached is not None:
                return HydraResult(
                    summary=cached,
                    total_seconds=time.perf_counter() - started,
                    solver_stats={
                        "components_solved": 0,
                        "cache_hits": 0,
                        "cache_misses": 0,
                        "lp_wall_seconds": 0.0,
                        "summary_store_hits": 1,
                        "store_bytes": self.store.store_bytes(),
                    },
                )
        names = list(relations) if relations is not None else list(self.schema.relation_names)
        by_relation = ccs.by_relation()

        # Phase 1: preprocess every relation and formulate the view LPs.
        view_summaries: Dict[str, ViewSummary] = {}
        reports: Dict[str, ViewBuildReport] = {}
        tasks: Dict[str, ViewTask] = {}
        view_lps: Dict[str, ViewLP] = {}
        for relation in names:
            constraints = by_relation.get(relation, [])
            task = self.preprocessor.build_task(relation, constraints)
            tasks[relation] = task
            report = ViewBuildReport(
                relation=relation,
                num_subviews=len(task.subviews),
                num_constraints=len(task.constraints),
            )
            reports[relation] = report
            if not task.subviews:
                view_summaries[relation] = instantiate_view_summary(
                    task.view, None, task.total_rows
                )
                continue
            t0 = time.perf_counter()
            view_lp = formulate_view_lp(
                task,
                strategy=self.config.strategy,
                max_grid_variables=self.config.max_grid_variables,
                max_region_variables=self.config.max_region_variables,
            )
            report.formulate_seconds = time.perf_counter() - t0
            report.lp_variables = view_lp.num_variables
            report.lp_constraints = view_lp.model.num_constraints
            view_lps[relation] = view_lp

        # Phase 2: solve all view LPs in one batch — the solver decomposes
        # each into independent components, deduplicates across views and
        # runs the component solves on its worker pool.
        lp_order = [relation for relation in names if relation in view_lps]
        stats_before = (self.solver.stats.components_solved,
                        self.solver.stats.cache_hits,
                        self.solver.stats.cache_misses)
        t1 = time.perf_counter()
        solutions = self.solver.solve_many([view_lps[r].model for r in lp_order])
        lp_wall_seconds = time.perf_counter() - t1
        solved: Dict[str, LPSolution] = dict(zip(lp_order, solutions))

        # Phase 3: align, merge and instantiate each view's summary.
        for relation in lp_order:
            solution = solved[relation]
            report = reports[relation]
            report.solve_seconds = solution.solve_seconds
            report.solver_method = solution.method
            report.max_violation = solution.max_violation
            view_summaries[relation] = self._merge_view(
                tasks[relation], view_lps[relation], solution, report
            )

        consistency = enforce_referential_consistency(
            view_summaries, self.preprocessor.views, self.schema
        )

        summary = DatabaseSummary()
        for relation in names:
            summary.relations[relation] = build_relation_summary(
                relation, view_summaries, self.preprocessor.views, self.schema
            )
        summary.extra_tuples = dict(consistency.extra_tuples)
        summary.lp_variable_counts = {
            name: report.lp_variables for name, report in reports.items()
        }
        summary.component_keys = {
            relation: (
                sorted(
                    component.key
                    for component in decompose_model(view_lps[relation].model).components
                )
                if relation in view_lps else []
            )
            for relation in names
        }
        summary.timings = {
            "total_seconds": time.perf_counter() - started,
            "lp_seconds": sum(r.formulate_seconds for r in reports.values()) + lp_wall_seconds,
            "lp_wall_seconds": lp_wall_seconds,
            "merge_seconds": sum(r.merge_seconds for r in reports.values()),
        }
        # Stats are reported as this build's deltas (the solver object — and
        # its cache — lives across builds).  The counters themselves are
        # race-free, but when several builds share one Hydra concurrently
        # (RegenerationService with max_workers > 1) the attribution is
        # best-effort: a delta may include a concurrent build's solves.
        stats = self.solver.stats
        solver_stats = {
            "components_solved": stats.components_solved - stats_before[0],
            "cache_hits": stats.cache_hits - stats_before[1],
            "cache_misses": stats.cache_misses - stats_before[2],
            "lp_wall_seconds": lp_wall_seconds,
        }
        if self.store is not None and fingerprint is not None:
            self.store.put_summary(fingerprint, summary, meta={
                "schema": self.schema.name,
                "constraints": len(ccs),
                "relations": len(names),
            })
            solver_stats["summary_store_hits"] = 0
            solver_stats["store_bytes"] = self.store.store_bytes()
        return HydraResult(
            summary=summary,
            view_reports=reports,
            total_seconds=time.perf_counter() - started,
            lp_wall_seconds=lp_wall_seconds,
            solver_stats=solver_stats,
        )

    def count_lp_variables(self, ccs: ConstraintSet,
                           strategy: Optional[str] = None) -> Dict[str, int]:
        """Count LP variables per relation without solving (Figures 12/17)."""
        strategy = strategy or self.config.strategy
        counts: Dict[str, int] = {}
        for relation, constraints in ccs.by_relation().items():
            task = self.preprocessor.build_task(relation, constraints)
            counts[relation] = count_lp_variables(
                task, strategy,
                max_region_variables=self.config.max_region_variables,
            )
        return counts

    # ------------------------------------------------------------------ #
    # per-view processing
    # ------------------------------------------------------------------ #
    def _merge_view(self, task: ViewTask, view_lp: ViewLP, solution: LPSolution,
                    report: ViewBuildReport) -> ViewSummary:
        """Align and merge one view's sub-view solutions into its summary."""
        t0 = time.perf_counter()
        per_subview = subview_solutions(view_lp, solution)
        order = task.merge_order()
        view_solution = merge_subview_solutions(
            task.relation, per_subview, order,
            aligned_attributes=view_lp.aligned_attributes,
        )
        summary = instantiate_view_summary(task.view, view_solution, task.total_rows)
        report.merge_seconds = time.perf_counter() - t0
        return summary
