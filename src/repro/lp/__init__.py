"""LP formulation (region and grid strategies) and feasibility solvers."""

from repro.lp.formulate import (
    DEFAULT_MAX_GRID_VARIABLES,
    STRATEGY_GRID,
    STRATEGY_REGION,
    count_lp_variables,
    formulate_view_lp,
)
from repro.lp.model import LPConstraint, LPModel, LPSolution, SubViewBlock, ViewLP
from repro.lp.solver import DEFAULT_MILP_VARIABLE_LIMIT, LPSolver

__all__ = [
    "LPModel",
    "LPConstraint",
    "LPSolution",
    "SubViewBlock",
    "ViewLP",
    "LPSolver",
    "DEFAULT_MILP_VARIABLE_LIMIT",
    "formulate_view_lp",
    "count_lp_variables",
    "STRATEGY_REGION",
    "STRATEGY_GRID",
    "DEFAULT_MAX_GRID_VARIABLES",
]
