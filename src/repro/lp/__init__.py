"""LP formulation (region and grid strategies), decomposition and solvers."""

from repro.lp.decompose import (
    Decomposition,
    LPComponent,
    component_key,
    decompose_model,
    stitch_solutions,
)
from repro.lp.formulate import (
    DEFAULT_MAX_GRID_VARIABLES,
    STRATEGY_GRID,
    STRATEGY_REGION,
    count_lp_variables,
    formulate_view_lp,
)
from repro.lp.model import LPConstraint, LPModel, LPSolution, SubViewBlock, ViewLP
from repro.lp.solver import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_MILP_VARIABLE_LIMIT,
    DEFAULT_WORKERS,
    LPSolver,
    ParallelLPSolver,
    SolverStats,
)

__all__ = [
    "LPModel",
    "LPConstraint",
    "LPSolution",
    "SubViewBlock",
    "ViewLP",
    "LPSolver",
    "ParallelLPSolver",
    "SolverStats",
    "Decomposition",
    "LPComponent",
    "component_key",
    "decompose_model",
    "stitch_solutions",
    "DEFAULT_MILP_VARIABLE_LIMIT",
    "DEFAULT_WORKERS",
    "DEFAULT_CACHE_SIZE",
    "formulate_view_lp",
    "count_lp_variables",
    "STRATEGY_REGION",
    "STRATEGY_GRID",
    "DEFAULT_MAX_GRID_VARIABLES",
]
