"""Constraint-graph decomposition of regeneration LPs.

The LPs produced by region partitioning are naturally block-structured: a
variable only interacts with the variables it shares a constraint row with,
so the constraint graph (variables as nodes, one clique per constraint) often
splits into several independent connected components — e.g. the per-sub-view
blocks of CCs whose predicates touch disjoint parts of the domain.  Solving
the components separately is both embarrassingly parallel and asymptotically
cheaper than solving the monolithic system, because LP/MILP solve cost grows
superlinearly with size.

This module provides:

* :func:`decompose_model` — split an :class:`~repro.lp.model.LPModel` into
  independent components via union-find over the constraint rows;
* :func:`component_key` — a canonical content hash of a component's
  ``(A, b)`` system, used as the key of the solution cache (the "millions of
  users" serving scenario repeatedly solves identical components);
* :func:`stitch_solutions` — recompose per-component solutions into one
  solution of the original model.

Any combination of feasible component solutions is feasible for the full
model, because components share no constraint row by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LPError
from repro.lp.model import LPConstraint, LPModel, LPSolution


@dataclass
class LPComponent:
    """One independent block of an LP: a self-contained local model plus the
    mapping from its local variable indices back to the global ones."""

    model: LPModel
    #: ``variable_indices[local]`` is the global index of local variable
    #: ``local``; sorted ascending so the mapping is canonical.
    variable_indices: Tuple[int, ...]
    #: Indices (into the parent model's constraint list) of the rows that
    #: ended up in this component, in their original order.
    constraint_indices: Tuple[int, ...]
    _key: Optional[str] = field(default=None, repr=False, compare=False)

    @property
    def num_variables(self) -> int:
        """Number of variables local to the component."""
        return self.model.num_variables

    @property
    def key(self) -> str:
        """Canonical content hash of the component's ``(A, b)`` system."""
        if self._key is None:
            self._key = component_key(self.model)
        return self._key


@dataclass
class Decomposition:
    """The result of decomposing an LP model.

    Attributes
    ----------
    num_variables:
        Variable count of the original model (stitching needs it).
    components:
        Independent sub-LPs, largest first (better load balancing when the
        components are farmed out to a worker pool).
    free_variables:
        Global indices of variables that appear in no constraint; they can
        take any non-negative value and are fixed to zero when stitching.
    orphan_constraints:
        Constraints that reference no variable at all (``0 = rhs``); a
        non-zero right-hand side makes the whole model infeasible by that
        amount.
    """

    num_variables: int
    components: List[LPComponent] = field(default_factory=list)
    free_variables: Tuple[int, ...] = ()
    orphan_constraints: List[LPConstraint] = field(default_factory=list)

    @property
    def orphan_violation(self) -> float:
        """Largest violation contributed by variable-free constraints."""
        if not self.orphan_constraints:
            return 0.0
        return float(max(abs(c.rhs) for c in self.orphan_constraints))


def decompose_model(model: LPModel, name_prefix: Optional[str] = None) -> Decomposition:
    """Split ``model`` into independent connected components.

    Two variables belong to the same component iff they are connected through
    a chain of shared constraint rows (union-find over the rows).  Returns
    the components largest-first plus the leftover free variables and
    variable-free constraints.
    """
    n = model.num_variables
    parent = list(range(n))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    orphans: List[LPConstraint] = []
    for constraint in model.constraints:
        if not constraint.variables:
            orphans.append(constraint)
            continue
        first = constraint.variables[0]
        for other in constraint.variables[1:]:
            union(first, other)

    constrained: Dict[int, List[int]] = {}
    for row, constraint in enumerate(model.constraints):
        if not constraint.variables:
            continue
        constrained.setdefault(find(constraint.variables[0]), []).append(row)

    members: Dict[int, List[int]] = {}
    free: List[int] = []
    for variable in range(n):
        root = find(variable)
        if root in constrained:
            members.setdefault(root, []).append(variable)
        else:
            free.append(variable)

    prefix = name_prefix if name_prefix is not None else model.name
    components: List[LPComponent] = []
    for root, rows in constrained.items():
        variables = sorted(members[root])
        local_of = {g: l for l, g in enumerate(variables)}
        local = LPModel(name=f"{prefix}#cc{len(components)}",
                        num_variables=len(variables))
        for row in rows:
            constraint = model.constraints[row]
            local.add_constraint(
                [local_of[v] for v in constraint.variables],
                constraint.rhs,
                coefficients=constraint.coefficients,
                kind=constraint.kind,
                tag=constraint.tag,
            )
        components.append(LPComponent(
            model=local,
            variable_indices=tuple(variables),
            constraint_indices=tuple(rows),
        ))

    components.sort(key=lambda c: c.num_variables, reverse=True)
    return Decomposition(
        num_variables=n,
        components=components,
        free_variables=tuple(free),
        orphan_constraints=orphans,
    )


def component_key(model: LPModel) -> str:
    """Canonical content hash of a model's ``(A, b)`` equality system.

    Two components with identical sparse matrices and right-hand sides get
    the same key regardless of their names or constraint tags, so repeated
    regeneration requests for the same summary reuse cached solutions.
    """
    a, b = model.matrix()
    digest = hashlib.sha256()
    digest.update(np.int64(a.shape[0]).tobytes())
    digest.update(np.int64(a.shape[1]).tobytes())
    digest.update(np.asarray(a.indptr, dtype=np.int64).tobytes())
    digest.update(np.asarray(a.indices, dtype=np.int64).tobytes())
    digest.update(np.asarray(a.data, dtype=np.float64).tobytes())
    digest.update(np.asarray(b, dtype=np.float64).tobytes())
    return digest.hexdigest()


def stitch_solutions(decomposition: Decomposition,
                     solutions: Sequence[LPSolution]) -> LPSolution:
    """Recompose per-component solutions into a solution of the full model.

    ``solutions`` must align with ``decomposition.components``.  Free
    variables are fixed to zero (any non-negative value is feasible for
    them).  Diagnostics aggregate conservatively: the stitched solution is
    feasible only if every component is and no orphan constraint is violated;
    the reported violation is the worst across components and orphans.
    """
    if len(solutions) != len(decomposition.components):
        raise LPError(
            f"expected {len(decomposition.components)} component solutions,"
            f" got {len(solutions)}"
        )
    values = np.zeros(decomposition.num_variables, dtype=np.int64)
    for component, solution in zip(decomposition.components, solutions):
        values[np.asarray(component.variable_indices, dtype=np.intp)] = solution.values

    orphan_violation = decomposition.orphan_violation
    feasible = all(s.feasible for s in solutions) and orphan_violation == 0.0
    max_violation = max(
        [orphan_violation] + [s.max_violation for s in solutions], default=0.0
    )
    methods = sorted({s.method for s in solutions})
    if not methods:
        method = "empty"
    elif len(methods) == 1 and len(decomposition.components) <= 1:
        method = methods[0]
    else:
        method = "decomposed[" + "+".join(methods) + "]"
    return LPSolution(
        values=values,
        feasible=feasible,
        method=method,
        max_violation=float(max_violation),
        solve_seconds=sum(s.solve_seconds for s in solutions),
    )
