"""LP formulation for a view (Section 4).

Given a :class:`~repro.views.preprocess.ViewTask` (view definition, rewritten
constraints, sub-view decomposition), the formulator:

1. partitions every sub-view's domain — with **region partitioning** for
   Hydra or **grid partitioning** for the DataSynth baseline;
2. refines the partitions along attributes shared between sub-views so that
   marginal distributions can be equated;
3. emits the equality constraints: one per cardinality constraint per
   sub-view in whose scope it falls, plus the consistency constraints along
   the clique-tree edges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import LPError, LPTooLargeError, PartitionBudgetError
from repro.partition.box import Box
from repro.partition.consistency import RefinedVariable
from repro.partition.grid import grid_cell_count, grid_intervals
from repro.partition.signature import (
    partition_variables,
    shared_segments_from_constraints,
)
from repro.lp.model import LPModel, SubViewBlock, ViewLP
from repro.views.preprocess import SubView, ViewConstraint, ViewTask

#: Strategies understood by :func:`formulate_view_lp`.
STRATEGY_REGION = "region"
STRATEGY_GRID = "grid"

#: Ceiling on materialised grid variables (the DataSynth "solver crash" limit).
DEFAULT_MAX_GRID_VARIABLES = 200_000

#: Soft budget on region-strategy LP variables per view.  When the
#: consistency refinement would exceed it, refinement is dropped attribute by
#: attribute (most expensive first); alignment then operates on the remaining
#: attributes, trading a little volumetric accuracy for bounded LP size.
DEFAULT_MAX_REGION_VARIABLES = 8_000


def formulate_view_lp(task: ViewTask, strategy: str = STRATEGY_REGION,
                      max_grid_variables: int = DEFAULT_MAX_GRID_VARIABLES,
                      max_region_variables: int = DEFAULT_MAX_REGION_VARIABLES) -> ViewLP:
    """Build the LP for one view using the requested partitioning strategy."""
    if strategy == STRATEGY_REGION:
        variables_per_subview, aligned = _region_variables(task, max_region_variables)
    elif strategy == STRATEGY_GRID:
        variables_per_subview = _grid_variables(task, max_grid_variables)
        aligned = tuple(sorted(_shared_attributes(task)))
    else:
        raise LPError(f"unknown partitioning strategy {strategy!r}")

    model = LPModel(name=f"{task.relation}:{strategy}")
    blocks: List[SubViewBlock] = []
    for index, subview in enumerate(task.subviews):
        refined = variables_per_subview[index]
        start = model.num_variables
        model.num_variables += len(refined)
        blocks.append(
            SubViewBlock(
                subview_index=index,
                attributes=subview.attributes,
                variable_indices=tuple(range(start, start + len(refined))),
                variables=refined,
            )
        )

    _add_cardinality_constraints(task, model, blocks)
    _add_consistency_constraints(task, model, blocks, aligned)
    return ViewLP(relation=task.relation, model=model, blocks=blocks, strategy=strategy,
                  aligned_attributes=aligned)


def count_lp_variables(task: ViewTask, strategy: str = STRATEGY_REGION,
                       max_region_variables: int = DEFAULT_MAX_REGION_VARIABLES) -> int:
    """Number of LP variables the strategy would create for this view,
    computed without materialising grids (used for Figures 12 and 17)."""
    if strategy == STRATEGY_GRID:
        total = 0
        for subview in task.subviews:
            total += grid_cell_count(
                subview.attributes, task.view.domains, task.constraints
            )
        return total
    if strategy == STRATEGY_REGION:
        variables, _aligned = _region_variables(task, max_region_variables)
        return sum(len(vars_) for vars_ in variables.values())
    raise LPError(f"unknown partitioning strategy {strategy!r}")


# ---------------------------------------------------------------------- #
# variable construction
# ---------------------------------------------------------------------- #
def _region_variables(task: ViewTask, max_region_variables: int,
                      ) -> Tuple[Dict[int, List[RefinedVariable]], Tuple[str, ...]]:
    """Region-partition every sub-view and refine along shared attributes.

    Returns the refined variables per sub-view and the tuple of shared
    attributes that were actually refined (the *aligned* attributes).  When
    the full refinement would exceed ``max_region_variables``, the most
    expensive shared attributes are dropped from refinement one by one; the
    alignment step later only groups on the attributes kept here, which keeps
    both the LP and the merge consistent with each other.
    """
    shared = _shared_attributes(task)

    def segments_for(active: Set[str], max_segments: Optional[int]) -> Dict[str, List]:
        segments: Dict[str, List] = {}
        for attribute in active:
            in_scope = [
                task.constraints[i]
                for subview in task.subviews if attribute in subview.attributes
                for i in subview.constraint_indices
            ]
            full = shared_segments_from_constraints(
                attribute, task.view.domains[attribute], in_scope
            )
            segments[attribute] = _coarsen_segments(full, max_segments)
        return segments

    # Escalation ladder: exact shared segments first, then progressively
    # coarser alignment granularities, then dropping alignment attributes.
    granularities: List[Optional[int]] = [None, 12, 6, 3, 2]
    active = set(shared)
    attempt = 0
    while True:
        max_segments = granularities[min(attempt, len(granularities) - 1)]
        if attempt >= len(granularities) and active:
            # Past the coarsest granularity: drop the widest attribute.
            segments_probe = segments_for(active, granularities[-1])
            widest = max(active, key=lambda a: len(segments_probe[a]))
            active.discard(widest)
        segments = segments_for(active, max_segments)
        out: Dict[int, List[RefinedVariable]] = {}
        total = 0
        over_budget = False
        for index, subview in enumerate(task.subviews):
            constraints = [task.constraints[i] for i in subview.constraint_indices]
            try:
                out[index] = partition_variables(
                    subview.attributes, task.view.domains, constraints,
                    subview.constraint_indices, segments,
                    max_states=max_region_variables if active else None,
                )
            except PartitionBudgetError:
                over_budget = True
                break
            total += len(out[index])
        if not over_budget and (total <= max_region_variables or not active):
            return out, tuple(sorted(active))
        if not active:
            return out, ()
        attempt += 1


def _coarsen_segments(segments: List, max_segments: Optional[int]) -> List:
    """Merge adjacent elementary segments down to at most ``max_segments``
    pieces (coarser alignment granularity, used when a view's LP would
    otherwise exceed its variable budget)."""
    if max_segments is None or len(segments) <= max_segments:
        return segments
    from repro.predicates.interval import Interval as _Interval

    merged: List = []
    per_group = len(segments) / max_segments
    start = 0
    for group in range(max_segments):
        end = int(round((group + 1) * per_group))
        end = max(end, start + 1)
        end = min(end, len(segments))
        merged.append(_Interval(segments[start].lo, segments[end - 1].hi))
        start = end
        if start >= len(segments):
            break
    return merged


def _grid_variables(task: ViewTask,
                    max_grid_variables: int) -> Dict[int, List[RefinedVariable]]:
    """Grid-partition every sub-view (DataSynth).

    The grid is intervalised from the constants of *all* view constraints, so
    shared attributes are automatically aligned across sub-views and no
    further refinement is needed.
    """
    total = 0
    for subview in task.subviews:
        total += grid_cell_count(subview.attributes, task.view.domains, task.constraints)
    if total > max_grid_variables:
        raise LPTooLargeError(
            f"grid formulation of view {task.relation!r} needs {total} variables"
            f" (limit {max_grid_variables})"
        )

    shared = _shared_attributes(task)
    out: Dict[int, List[RefinedVariable]] = {}
    for index, subview in enumerate(task.subviews):
        intervals = grid_intervals(subview.attributes, task.view.domains, task.constraints)
        cells: List[Dict[str, "object"]] = [{}]
        for attribute in subview.attributes:
            cells = [dict(cell, **{attribute: piece})
                     for cell in cells for piece in intervals[attribute]]
        segment_index = {
            attribute: {iv.lo: i for i, iv in enumerate(intervals[attribute])}
            for attribute in subview.attributes
        }
        variables: List[RefinedVariable] = []
        for cell in cells:
            box = Box(cell)  # type: ignore[arg-type]
            label = frozenset(
                i for i in subview.constraint_indices
                if box.satisfies_predicate(task.constraints[i].predicate)
            )
            shared_cell = tuple(
                (attribute, segment_index[attribute][box.interval(attribute).lo])
                for attribute in subview.attributes if attribute in shared
            )
            variables.append(
                RefinedVariable(label=label, boxes=[box], shared_cell=shared_cell)
            )
        out[index] = variables
    return out


def _shared_attributes(task: ViewTask) -> Set[str]:
    """Attributes appearing in more than one sub-view of the view."""
    counts: Dict[str, int] = defaultdict(int)
    for subview in task.subviews:
        for attribute in subview.attributes:
            counts[attribute] += 1
    return {attribute for attribute, count in counts.items() if count > 1}


# ---------------------------------------------------------------------- #
# constraint construction
# ---------------------------------------------------------------------- #
def _add_cardinality_constraints(task: ViewTask, model: LPModel,
                                 blocks: Sequence[SubViewBlock]) -> None:
    for block in blocks:
        subview = task.subviews[block.subview_index]
        for constraint_index in subview.constraint_indices:
            constraint = task.constraints[constraint_index]
            members = [
                global_index
                for global_index, variable in zip(block.variable_indices, block.variables)
                if constraint_index in variable.label
            ]
            model.add_constraint(
                members,
                constraint.cardinality,
                kind="cardinality",
                tag=f"cc{constraint_index}@sv{block.subview_index}",
            )


def _add_consistency_constraints(task: ViewTask, model: LPModel,
                                 blocks: Sequence[SubViewBlock],
                                 aligned: Tuple[str, ...]) -> None:
    aligned_set = set(aligned)
    block_by_index = {block.subview_index: block for block in blocks}
    for left_index, right_index in task.consistency_edges:
        left = block_by_index[left_index]
        right = block_by_index[right_index]
        shared = tuple(sorted(
            set(left.attributes) & set(right.attributes) & aligned_set
        ))
        if not shared:
            continue
        left_groups = _group_by_cell(left, shared)
        right_groups = _group_by_cell(right, shared)
        for cell in sorted(set(left_groups) | set(right_groups)):
            left_vars = left_groups.get(cell, [])
            right_vars = right_groups.get(cell, [])
            variables = tuple(left_vars) + tuple(right_vars)
            coefficients = tuple([1.0] * len(left_vars) + [-1.0] * len(right_vars))
            model.add_constraint(
                variables,
                rhs=0,
                coefficients=coefficients,
                kind="consistency",
                tag=f"consistency:sv{left_index}-sv{right_index}:{cell}",
            )


def _group_by_cell(block: SubViewBlock, shared: Sequence[str]) -> Dict[Tuple[int, ...], List[int]]:
    groups: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
    for global_index, variable in zip(block.variable_indices, block.variables):
        groups[variable.cell_of(shared)].append(global_index)
    return dict(groups)
