"""LP model containers.

The LPs produced by both Hydra and DataSynth have a very specific shape: all
variables are non-negative tuple counts and every constraint is a linear
equality.  Cardinality constraints are plain coefficient-one sums; the
consistency constraints between sub-views are differences of two sums
(``sum(left) - sum(right) = 0``).  There is no objective — any feasible point
will do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.errors import LPError
from repro.partition.consistency import RefinedVariable


@dataclass
class LPConstraint:
    """An equality constraint ``sum(coefficients[i] * x[variables[i]]) = rhs``."""

    variables: Tuple[int, ...]
    rhs: int
    coefficients: Optional[Tuple[float, ...]] = None
    kind: str = "cardinality"
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.coefficients is not None and len(self.coefficients) != len(self.variables):
            raise LPError("coefficients must match variables")

    def coefficient_list(self) -> Tuple[float, ...]:
        """Coefficients, defaulting to all ones."""
        if self.coefficients is None:
            return tuple(1.0 for _ in self.variables)
        return self.coefficients


@dataclass
class LPModel:
    """A full LP: non-negative variables and linear equality constraints."""

    name: str
    num_variables: int = 0
    constraints: List[LPConstraint] = field(default_factory=list)
    #: Cached ``(A, b)`` system, invalidated whenever a constraint is added;
    #: the solver, the decomposer and the violation check all need it.
    _matrix_cache: Optional[Tuple["sparse.csr_matrix", np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def add_constraint(self, variables: Sequence[int], rhs: int,
                       coefficients: Optional[Sequence[float]] = None,
                       kind: str = "cardinality", tag: Optional[str] = None) -> None:
        """Append an equality constraint over the given variable indices."""
        for index in variables:
            if not 0 <= index < self.num_variables:
                raise LPError(f"variable index {index} out of range")
        if rhs < 0:
            raise LPError("constraint right-hand side must be non-negative")
        self._matrix_cache = None
        self.constraints.append(
            LPConstraint(
                variables=tuple(variables),
                rhs=int(rhs),
                coefficients=tuple(coefficients) if coefficients is not None else None,
                kind=kind,
                tag=tag,
            )
        )

    @property
    def num_constraints(self) -> int:
        """Number of equality constraints."""
        return len(self.constraints)

    def cardinality_constraints(self) -> List[LPConstraint]:
        """The constraints that encode CCs (as opposed to consistency)."""
        return [c for c in self.constraints if c.kind == "cardinality"]

    def matrix(self) -> Tuple["sparse.csr_matrix", np.ndarray]:
        """Return the sparse equality matrix ``A`` and right-hand side ``b``.

        The system is cached until the next :meth:`add_constraint` call;
        callers must not mutate the returned arrays.
        """
        if self._matrix_cache is not None:
            return self._matrix_cache
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for i, constraint in enumerate(self.constraints):
            coefficients = constraint.coefficient_list()
            rows.extend([i] * len(constraint.variables))
            cols.extend(constraint.variables)
            data.extend(coefficients)
        a = sparse.csr_matrix(
            (np.asarray(data, dtype=np.float64), (rows, cols)),
            shape=(len(self.constraints), self.num_variables),
        )
        b = np.array([c.rhs for c in self.constraints], dtype=np.float64)
        self._matrix_cache = (a, b)
        return a, b

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LPModel({self.name!r}, {self.num_variables} vars,"
                f" {self.num_constraints} constraints)")


@dataclass
class SubViewBlock:
    """Bookkeeping for one sub-view inside a view LP: which global variable
    indices belong to it and the refined variables they correspond to."""

    subview_index: int
    attributes: Tuple[str, ...]
    variable_indices: Tuple[int, ...]
    variables: List[RefinedVariable]


@dataclass
class ViewLP:
    """The complete LP of one view, plus the structure needed to map the
    solution back to sub-view solutions."""

    relation: str
    model: LPModel
    blocks: List[SubViewBlock] = field(default_factory=list)
    strategy: str = "region"
    #: Shared attributes along which partitions were refined; the summary
    #: generator aligns sub-view solutions on exactly these attributes.
    aligned_attributes: Tuple[str, ...] = ()

    @property
    def num_variables(self) -> int:
        """Total number of LP variables across all sub-views."""
        return self.model.num_variables

    def block_for(self, subview_index: int) -> SubViewBlock:
        """Return the block of the given sub-view."""
        for block in self.blocks:
            if block.subview_index == subview_index:
                return block
        raise LPError(f"no block for sub-view {subview_index}")


@dataclass
class LPSolution:
    """A solved LP: integer variable values plus solver diagnostics."""

    values: np.ndarray
    feasible: bool
    method: str
    max_violation: float = 0.0
    solve_seconds: float = 0.0

    def value(self, index: int) -> int:
        """Return the value of one variable."""
        return int(self.values[index])
