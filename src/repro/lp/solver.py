"""LP / integer-feasibility solvers.

The paper uses the Z3 SMT solver purely as a feasibility engine: given the
equality constraints over non-negative tuple counts, any feasible assignment
will do.  This module substitutes Z3 with:

* an exact integer feasibility pass built on ``scipy.optimize.milp`` (HiGHS),
  which returns integral counts whenever the system is integrally feasible —
  matching the paper's claim that Hydra satisfies CCs exactly up to the
  referential-integrity additions; and
* a continuous fallback using ``scipy.optimize.linprog`` with L1 slack
  minimisation, used when the MILP is unavailable, too large or infeasible.
  The slack solution is then rounded; any residual violation is reported in
  the solution diagnostics rather than silently dropped.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.errors import InfeasibleLPError, LPError
from repro.lp.decompose import (
    Decomposition,
    LPComponent,
    decompose_model,
    stitch_solutions,
)
from repro.lp.model import LPModel, LPSolution
from repro.metrics.timing import TimingLog
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as trace_span

logger = get_logger("lp.solver")

#: Above this many variables the MILP pass is skipped and the continuous
#: solver is used directly (keeps solve times predictable on huge grids).
DEFAULT_MILP_VARIABLE_LIMIT = 4_000

#: Default wall-clock budget for the exact MILP pass; when HiGHS cannot find
#: an integral solution within it, the continuous + rounding path takes over.
DEFAULT_MILP_TIME_LIMIT = 10.0

#: Default worker count of :class:`ParallelLPSolver`.
DEFAULT_WORKERS = 2

#: Default capacity of the per-solver component solution cache.
DEFAULT_CACHE_SIZE = 256

#: Residual violation above which a strict parallel solver declares the
#: constraint set infeasible.
STRICT_VIOLATION_TOLERANCE = 1e-6


class LPSolver:
    """Feasibility solver for the regeneration LPs.

    Parameters
    ----------
    prefer_integer:
        Try the exact MILP feasibility pass first (default).  When disabled
        the continuous path is used directly, mimicking systems (such as
        DataSynth) that work with fractional solutions and rely on sampling.
    milp_variable_limit:
        Maximum problem size for the MILP pass.
    time_limit:
        Wall-clock budget (seconds) for the MILP pass; the continuous path is
        used when HiGHS cannot produce an integral solution in time.
    """

    def __init__(self, prefer_integer: bool = True,
                 milp_variable_limit: int = DEFAULT_MILP_VARIABLE_LIMIT,
                 time_limit: Optional[float] = DEFAULT_MILP_TIME_LIMIT) -> None:
        self.prefer_integer = prefer_integer
        self.milp_variable_limit = milp_variable_limit
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(self, model: LPModel) -> LPSolution:
        """Solve the model, returning integer variable values.

        Raises
        ------
        InfeasibleLPError
            Only when even the slack-minimising fallback cannot be solved
            (which indicates a malformed model rather than conflicting CCs).
        """
        if model.num_variables == 0:
            return LPSolution(
                values=np.zeros(0, dtype=np.int64), feasible=True, method="empty"
            )
        started = time.perf_counter()
        if self.prefer_integer and model.num_variables <= self.milp_variable_limit:
            solution = self._solve_milp(model)
            if solution is not None:
                solution.solve_seconds = time.perf_counter() - started
                return solution
        solution = self._solve_continuous(model)
        solution.solve_seconds = time.perf_counter() - started
        return solution

    # ------------------------------------------------------------------ #
    # MILP feasibility
    # ------------------------------------------------------------------ #
    def _solve_milp(self, model: LPModel) -> Optional[LPSolution]:
        a, b = model.matrix()
        n = model.num_variables
        try:
            constraints = optimize.LinearConstraint(a, b, b)
            options = {}
            if self.time_limit is not None:
                options["time_limit"] = self.time_limit
            result = optimize.milp(
                c=np.zeros(n),
                constraints=constraints,
                integrality=np.ones(n),
                bounds=optimize.Bounds(lb=0, ub=np.inf),
                options=options or None,
            )
        except (ValueError, AttributeError):
            return None
        if not result.success or result.x is None:
            return None
        values = np.rint(result.x).astype(np.int64)
        values[values < 0] = 0
        violation = self._max_violation(a, b, values)
        return LPSolution(values=values, feasible=True, method="milp",
                          max_violation=violation)

    # ------------------------------------------------------------------ #
    # continuous fallback with L1 slack minimisation
    # ------------------------------------------------------------------ #
    def _solve_continuous(self, model: LPModel) -> LPSolution:
        a, b = model.matrix()
        n = model.num_variables
        m = len(model.constraints)

        # Variables: x (n), s_plus (m), s_minus (m) with A x + s+ - s- = b and
        # objective sum(s+ + s-): a feasible system yields zero slack.
        identity = sparse.identity(m, format="csr")
        a_aug = sparse.hstack([a, identity, -identity], format="csr")
        c = np.concatenate([np.zeros(n), np.ones(2 * m)])
        bounds = [(0, None)] * (n + 2 * m)

        # Escalation ladder for numerically extreme instances (right-hand
        # sides around 1e15 in the exabyte experiment make HiGHS bail out
        # with an unknown model status and no primal point): plain solve,
        # then presolve off, then the rhs normalised to unit scale — the
        # system is homogeneous, so solutions rescale exactly.
        rhs_scale = float(b.max()) if b.size and b.max() > 1.0 else 1.0
        attempts = [
            ({}, 1.0),
            ({"options": {"presolve": False}}, 1.0),
            ({}, rhs_scale),
        ]
        result = None
        try:
            for extra, scale in attempts:
                result = optimize.linprog(
                    c, A_eq=a_aug, b_eq=b / scale, bounds=bounds,
                    method="highs", **extra,
                )
                if result.x is not None:
                    result_scale = scale
                    break
        except ValueError as error:
            raise InfeasibleLPError(
                f"LP {model.name!r} could not be solved: {error}"
            ) from error
        if result is None or result.x is None:
            raise InfeasibleLPError(
                f"LP {model.name!r} could not be solved: {result.message}"
            )
        # ``success`` can be False for numerically difficult instances even
        # though HiGHS returns a primal-feasible point; use the point and
        # report the residual violation honestly instead of giving up.
        raw = result.x[:n] * result_scale
        values = self._round(raw)
        violation = self._max_violation(a, b, values)
        feasible = bool(result.fun is not None and result.fun * result_scale < 0.5)
        return LPSolution(values=values, feasible=feasible, method="linprog+l1",
                          max_violation=violation)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _round(values: np.ndarray) -> np.ndarray:
        rounded = np.rint(values)
        rounded[rounded < 0] = 0
        return rounded.astype(np.int64)

    @staticmethod
    def _max_violation(a: "sparse.csr_matrix", b: np.ndarray, values: np.ndarray) -> float:
        if b.size == 0:
            return 0.0
        residual = a.dot(values.astype(np.float64)) - b
        return float(np.abs(residual).max())


def _solve_component(args: Tuple[LPModel, bool, int, Optional[float]]) -> LPSolution:
    """Module-level worker so component solves can cross process boundaries."""
    model, prefer_integer, milp_variable_limit, time_limit = args
    return LPSolver(
        prefer_integer=prefer_integer,
        milp_variable_limit=milp_variable_limit,
        time_limit=time_limit,
    ).solve(model)


class SolverStats:
    """Counters and timings accumulated by a :class:`ParallelLPSolver`.

    The counters are registry-backed views (one :class:`MetricsRegistry` per
    solver by default): ``models_solved`` / ``components_solved`` /
    ``cache_hits`` / ``cache_misses`` read the underlying
    ``repro_lp_*_total`` counters, so legacy delta-reads
    (``stats.components_solved - before``) and the full Prometheus/JSON
    exports see the same numbers.  ``timings`` keeps the historical
    :class:`TimingLog` phase totals, itself re-backed on the same registry.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._models = self.registry.counter(
            "repro_lp_models_solved_total",
            "LP models solved (after decomposition and stitching)")
        self._components = self.registry.counter(
            "repro_lp_components_solved_total",
            "Independent LP components actually solved (cache misses)")
        self._hits = self.registry.counter(
            "repro_lp_cache_hits_total", "Component-solution cache hits")
        self._misses = self.registry.counter(
            "repro_lp_cache_misses_total", "Component-solution cache misses")
        self._solve_seconds = self.registry.histogram(
            "repro_lp_solve_seconds",
            "Wall-clock latency of ParallelLPSolver.solve_many calls")
        self.timings = TimingLog(registry=self.registry)

    @property
    def models_solved(self) -> int:
        return int(self._models.value())

    @property
    def components_solved(self) -> int:
        return int(self._components.value())

    @property
    def cache_hits(self) -> int:
        return int(self._hits.value())

    @property
    def cache_misses(self) -> int:
        return int(self._misses.value())

    def observe_solve(self, seconds: float) -> None:
        """Record one ``solve_many`` wall-clock latency."""
        self._solve_seconds.observe(seconds)

    def __repr__(self) -> str:
        return (f"SolverStats(models_solved={self.models_solved},"
                f" components_solved={self.components_solved},"
                f" cache_hits={self.cache_hits},"
                f" cache_misses={self.cache_misses})")


class SolutionCache:
    """Interface of a component-solution cache backend.

    :class:`ParallelLPSolver` talks to its cache exclusively through this
    interface, so the default in-process LRU can be swapped for a persistent
    backend (e.g. :class:`repro.service.store.StoreSolutionCache`, which
    shares solutions across worker processes through a summary store).
    Implementations must be thread-safe: the solver calls ``get``/``put``
    concurrently from its worker threads.
    """

    #: Maximum number of entries, or ``None`` when unbounded / not applicable.
    capacity: Optional[int] = None

    def get(self, key: str) -> Optional[LPSolution]:
        """Return the cached solution for ``key``, or ``None`` on a miss."""
        raise NotImplementedError

    def put(self, key: str, solution: LPSolution) -> None:
        """Store a solution under ``key``."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop all cached solutions."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUSolutionCache(SolutionCache):
    """The default backend: a thread-safe in-process LRU.

    ``capacity=None`` disables eviction (unbounded); the summary store's
    memory-only mode relies on that, since evicting there would lose data.
    """

    def __init__(self, capacity: Optional[int]) -> None:
        if capacity is not None and capacity < 1:
            raise LPError("LRUSolutionCache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, LPSolution]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[LPSolution]:
        with self._lock:
            solution = self._entries.get(key)
            if solution is not None:
                self._entries.move_to_end(key)
            return solution

    def put(self, key: str, solution: LPSolution) -> None:
        with self._lock:
            self._entries[key] = solution
            self._entries.move_to_end(key)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)

    def keys(self) -> List[str]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def pop(self, key: str) -> Optional[LPSolution]:
        """Drop one entry (the summary store's GC evicts through this)."""
        with self._lock:
            return self._entries.pop(key, None)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ParallelLPSolver:
    """Decomposing, caching, parallel feasibility solver.

    Every model is first split into independent connected components of its
    constraint graph (:mod:`repro.lp.decompose`).  Components are solved with
    the plain :class:`LPSolver` — concurrently on a worker pool when more
    than one needs solving — and stitched back together.  Solved components
    are kept in an LRU cache keyed by the canonical hash of their ``(A, b)``
    system, so repeated regeneration requests (the dynamic-serving scenario
    of Section 6) skip redundant solves entirely.

    Parameters
    ----------
    workers:
        Maximum number of concurrent component solves.  ``1`` keeps the
        decomposition and the cache but solves inline.
    cache_size:
        Capacity of the LRU component-solution cache; ``0`` disables caching.
    prefer_integer / milp_variable_limit / time_limit:
        Forwarded to the underlying :class:`LPSolver`.  Note that the MILP
        size limit now applies per component, so decomposition lets larger
        models keep the exact integral path.
    strict:
        When ``True``, raise :class:`~repro.errors.InfeasibleLPError` as soon
        as a stitched solution violates its constraints by more than
        ``STRICT_VIOLATION_TOLERANCE`` (mutually inconsistent CC sets),
        instead of reporting the violation in the diagnostics.
    use_processes:
        Solve components on a process pool instead of a thread pool.  Worth
        it only when single components are large enough to amortise the
        pickling and worker start-up cost.
    cache_backend:
        Custom :class:`SolutionCache` implementation.  When given it takes
        precedence over ``cache_size`` (which then only serves as the
        documented default-backend capacity); pass a
        :class:`repro.service.store.StoreSolutionCache` to persist and share
        component solutions across processes.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 cache_size: int = DEFAULT_CACHE_SIZE,
                 prefer_integer: bool = True,
                 milp_variable_limit: int = DEFAULT_MILP_VARIABLE_LIMIT,
                 time_limit: Optional[float] = DEFAULT_MILP_TIME_LIMIT,
                 strict: bool = False,
                 use_processes: bool = False,
                 cache_backend: Optional[SolutionCache] = None) -> None:
        if workers < 1:
            raise LPError("ParallelLPSolver needs at least one worker")
        if cache_size < 0:
            raise LPError("cache_size must be non-negative")
        self.workers = workers
        self.cache_size = cache_size
        self.prefer_integer = prefer_integer
        self.milp_variable_limit = milp_variable_limit
        self.time_limit = time_limit
        self.strict = strict
        self.use_processes = use_processes
        self.stats = SolverStats()
        if cache_backend is not None:
            self._cache: Optional[SolutionCache] = cache_backend
        elif cache_size > 0:
            self._cache = LRUSolutionCache(cache_size)
        else:
            self._cache = None
        # Cache keys carry a namespace derived from every knob that changes
        # what a solve produces: a persistent backend may be shared between
        # solvers with different configurations (e.g. Hydra's exact-MILP path
        # and DataSynth's continuous path), and serving one's solution to the
        # other would silently change results.
        self._cache_namespace = hashlib.sha256(repr(
            (prefer_integer, milp_variable_limit, time_limit)
        ).encode("utf-8")).hexdigest()[:12]

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(self, model: LPModel) -> LPSolution:
        """Solve one model (decompose, solve components, stitch)."""
        return self.solve_many([model])[0]

    def solve_many(self, models: Sequence[LPModel]) -> List[LPSolution]:
        """Solve a batch of models, sharing one worker pool and the cache.

        Components are deduplicated across the whole batch, so e.g. the view
        LPs of two similar workloads are each solved once.  Returns one
        solution per input model, in order.
        """
        started = time.perf_counter()
        with trace_span("lp.solve_many", models=len(models)) as solve_span:
            with trace_span("lp.decompose"), \
                    self.stats.timings.time("decompose") as _:
                decompositions = [decompose_model(model) for model in models]

            resolved = self._resolve_components(decompositions)

            solutions: List[LPSolution] = []
            with trace_span("lp.stitch"), self.stats.timings.time("stitch") as _:
                for model, decomposition in zip(models, decompositions):
                    parts = [resolved[c.key] for c in decomposition.components]
                    stitched = stitch_solutions(decomposition, parts)
                    if self.strict and stitched.max_violation > STRICT_VIOLATION_TOLERANCE:
                        raise InfeasibleLPError(
                            f"LP {model.name!r} is infeasible: residual violation"
                            f" {stitched.max_violation:g} after decomposed solve"
                        )
                    solutions.append(stitched)
            self.stats._models.inc(len(models))
            wall = time.perf_counter() - started
            self.stats.timings.record("wall", wall)
            self.stats.observe_solve(wall)
            solve_span.set_attribute(
                "components", sum(len(d.components) for d in decompositions))
        return solutions

    @property
    def cache_info(self) -> Dict[str, int]:
        """Current cache occupancy and hit/miss counters."""
        if self._cache is None:
            size, capacity = 0, 0
        else:
            size = len(self._cache)
            capacity = self._cache.capacity if self._cache.capacity is not None \
                else self.cache_size
        return {
            "size": size,
            "capacity": capacity,
            "hits": self.stats.cache_hits,
            "misses": self.stats.cache_misses,
        }

    def clear_cache(self) -> None:
        """Drop all cached component solutions."""
        if self._cache is not None:
            self._cache.clear()

    # ------------------------------------------------------------------ #
    # component scheduling
    # ------------------------------------------------------------------ #
    def _resolve_components(
            self, decompositions: Sequence[Decomposition]) -> Dict[str, LPSolution]:
        """Return a solution per unique component key across the batch:
        cached where possible, freshly solved (and cached) otherwise."""
        pending: "OrderedDict[str, LPComponent]" = OrderedDict()
        resolved: Dict[str, LPSolution] = {}
        for decomposition in decompositions:
            for component in decomposition.components:
                key = self._cache_key(component)
                if key in resolved or key in pending:
                    continue
                cached = self._cache_get(key)
                if cached is not None:
                    # A cache hit costs no solve time; report it as free so
                    # aggregated LP-time metrics reflect actual computation.
                    resolved[key] = replace(cached, solve_seconds=0.0)
                else:
                    pending[key] = component

        if not pending:
            return self._by_component_key(decompositions, resolved)
        items = list(pending.items())
        components = [component for _, component in items]
        with trace_span("lp.solve_components", pending=len(components)), \
                self.stats.timings.time("solve") as _:
            if self.workers > 1 and len(components) > 1:
                results = self._solve_pool(components)
            else:
                results = [self._solve_one(c.model) for c in components]
        for (key, _component), solution in zip(items, results):
            resolved[key] = solution
            self._cache_put(key, solution)
        self.stats._components.inc(len(components))
        logger.debug("solved %d pending components (%d resolved from cache)",
                     len(components), len(resolved) - len(components))
        return self._by_component_key(decompositions, resolved)

    def _cache_key(self, component: LPComponent) -> str:
        """Content key of a component, namespaced by the solver config."""
        return f"{component.key}-{self._cache_namespace}"

    def _by_component_key(self, decompositions: Sequence[Decomposition],
                          resolved: Dict[str, LPSolution]) -> Dict[str, LPSolution]:
        """Re-key resolved solutions by the raw component hash (the key the
        stitching loop looks components up under)."""
        return {
            component.key: resolved[self._cache_key(component)]
            for decomposition in decompositions
            for component in decomposition.components
        }

    def _solve_pool(self, components: Sequence[LPComponent]) -> List[LPSolution]:
        jobs = [(c.model, self.prefer_integer, self.milp_variable_limit,
                 self.time_limit) for c in components]
        max_workers = min(self.workers, len(components))
        pool_cls = ProcessPoolExecutor if self.use_processes else ThreadPoolExecutor
        with pool_cls(max_workers=max_workers) as pool:
            return list(pool.map(_solve_component, jobs))

    def _solve_one(self, model: LPModel) -> LPSolution:
        return _solve_component(
            (model, self.prefer_integer, self.milp_variable_limit, self.time_limit)
        )

    # ------------------------------------------------------------------ #
    # cache plumbing (delegates to the pluggable backend)
    # ------------------------------------------------------------------ #
    def _cache_get(self, key: str) -> Optional[LPSolution]:
        solution = self._cache.get(key) if self._cache is not None else None
        if solution is None:
            self.stats._misses.inc()
        else:
            self.stats._hits.inc()
        return solution

    def _cache_put(self, key: str, solution: LPSolution) -> None:
        if self._cache is not None:
            self._cache.put(key, solution)
