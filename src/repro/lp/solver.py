"""LP / integer-feasibility solvers.

The paper uses the Z3 SMT solver purely as a feasibility engine: given the
equality constraints over non-negative tuple counts, any feasible assignment
will do.  This module substitutes Z3 with:

* an exact integer feasibility pass built on ``scipy.optimize.milp`` (HiGHS),
  which returns integral counts whenever the system is integrally feasible —
  matching the paper's claim that Hydra satisfies CCs exactly up to the
  referential-integrity additions; and
* a continuous fallback using ``scipy.optimize.linprog`` with L1 slack
  minimisation, used when the MILP is unavailable, too large or infeasible.
  The slack solution is then rounded; any residual violation is reported in
  the solution diagnostics rather than silently dropped.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.errors import InfeasibleLPError, LPError
from repro.lp.model import LPModel, LPSolution

#: Above this many variables the MILP pass is skipped and the continuous
#: solver is used directly (keeps solve times predictable on huge grids).
DEFAULT_MILP_VARIABLE_LIMIT = 4_000

#: Default wall-clock budget for the exact MILP pass; when HiGHS cannot find
#: an integral solution within it, the continuous + rounding path takes over.
DEFAULT_MILP_TIME_LIMIT = 10.0


class LPSolver:
    """Feasibility solver for the regeneration LPs.

    Parameters
    ----------
    prefer_integer:
        Try the exact MILP feasibility pass first (default).  When disabled
        the continuous path is used directly, mimicking systems (such as
        DataSynth) that work with fractional solutions and rely on sampling.
    milp_variable_limit:
        Maximum problem size for the MILP pass.
    time_limit:
        Wall-clock budget (seconds) for the MILP pass; the continuous path is
        used when HiGHS cannot produce an integral solution in time.
    """

    def __init__(self, prefer_integer: bool = True,
                 milp_variable_limit: int = DEFAULT_MILP_VARIABLE_LIMIT,
                 time_limit: Optional[float] = DEFAULT_MILP_TIME_LIMIT) -> None:
        self.prefer_integer = prefer_integer
        self.milp_variable_limit = milp_variable_limit
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(self, model: LPModel) -> LPSolution:
        """Solve the model, returning integer variable values.

        Raises
        ------
        InfeasibleLPError
            Only when even the slack-minimising fallback cannot be solved
            (which indicates a malformed model rather than conflicting CCs).
        """
        if model.num_variables == 0:
            return LPSolution(
                values=np.zeros(0, dtype=np.int64), feasible=True, method="empty"
            )
        started = time.perf_counter()
        if self.prefer_integer and model.num_variables <= self.milp_variable_limit:
            solution = self._solve_milp(model)
            if solution is not None:
                solution.solve_seconds = time.perf_counter() - started
                return solution
        solution = self._solve_continuous(model)
        solution.solve_seconds = time.perf_counter() - started
        return solution

    # ------------------------------------------------------------------ #
    # MILP feasibility
    # ------------------------------------------------------------------ #
    def _solve_milp(self, model: LPModel) -> Optional[LPSolution]:
        a, b = model.matrix()
        n = model.num_variables
        try:
            constraints = optimize.LinearConstraint(a, b, b)
            options = {}
            if self.time_limit is not None:
                options["time_limit"] = self.time_limit
            result = optimize.milp(
                c=np.zeros(n),
                constraints=constraints,
                integrality=np.ones(n),
                bounds=optimize.Bounds(lb=0, ub=np.inf),
                options=options or None,
            )
        except (ValueError, AttributeError):
            return None
        if not result.success or result.x is None:
            return None
        values = np.rint(result.x).astype(np.int64)
        values[values < 0] = 0
        violation = self._max_violation(a, b, values)
        return LPSolution(values=values, feasible=True, method="milp",
                          max_violation=violation)

    # ------------------------------------------------------------------ #
    # continuous fallback with L1 slack minimisation
    # ------------------------------------------------------------------ #
    def _solve_continuous(self, model: LPModel) -> LPSolution:
        a, b = model.matrix()
        n = model.num_variables
        m = len(model.constraints)

        # Variables: x (n), s_plus (m), s_minus (m) with A x + s+ - s- = b and
        # objective sum(s+ + s-): a feasible system yields zero slack.
        identity = sparse.identity(m, format="csr")
        a_aug = sparse.hstack([a, identity, -identity], format="csr")
        c = np.concatenate([np.zeros(n), np.ones(2 * m)])
        result = optimize.linprog(
            c,
            A_eq=a_aug,
            b_eq=b,
            bounds=[(0, None)] * (n + 2 * m),
            method="highs",
        )
        if result.x is None:
            raise InfeasibleLPError(
                f"LP {model.name!r} could not be solved: {result.message}"
            )
        # ``success`` can be False for numerically difficult instances (e.g.
        # right-hand sides around 1e16 in the exabyte experiment) even though
        # HiGHS returns a primal-feasible point; use the point and report the
        # residual violation honestly instead of giving up.
        raw = result.x[:n]
        values = self._round(raw)
        violation = self._max_violation(a, b, values)
        feasible = bool(result.fun is not None and result.fun < 0.5)
        return LPSolution(values=values, feasible=feasible, method="linprog+l1",
                          max_violation=violation)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _round(values: np.ndarray) -> np.ndarray:
        rounded = np.rint(values)
        rounded[rounded < 0] = 0
        return rounded.astype(np.int64)

    @staticmethod
    def _max_violation(a: "sparse.csr_matrix", b: np.ndarray, values: np.ndarray) -> float:
        if b.size == 0:
            return 0.0
        residual = a.dot(values.astype(np.float64)) - b
        return float(np.abs(residual).max())
