"""Evaluation metrics: volumetric similarity, LP sizes, integrity accounting,
timing utilities and the materialisation cost model."""

from repro.metrics.costmodel import (
    ThroughputModel,
    format_duration,
    materialization_table,
    rows_for_target_bytes,
)
from repro.metrics.integrity import IntegrityComparison, compare_extra_tuples
from repro.metrics.lpsize import LPSizeComparison, compare_lp_sizes
from repro.metrics.similarity import (
    ConstraintResult,
    SimilarityReport,
    SummaryViewResolver,
    denormalized_view,
    evaluate_on_database,
    evaluate_on_summary,
    evaluate_with_executor,
)
from repro.metrics.timing import Timer, TimingLog

__all__ = [
    "ConstraintResult",
    "SimilarityReport",
    "SummaryViewResolver",
    "denormalized_view",
    "evaluate_on_database",
    "evaluate_on_summary",
    "evaluate_with_executor",
    "LPSizeComparison",
    "compare_lp_sizes",
    "IntegrityComparison",
    "compare_extra_tuples",
    "ThroughputModel",
    "materialization_table",
    "rows_for_target_bytes",
    "format_duration",
    "Timer",
    "TimingLog",
]
