"""Materialisation cost modelling (Figure 14).

The paper reports wall-clock materialisation times for 10 GB, 100 GB and
1000 GB databases (minutes for Hydra, hours-to-weeks for DataSynth).  Those
target sizes cannot be materialised on this substrate, so the benchmark
measures per-row throughput of both systems at a small scale and extrapolates
linearly in the number of rows — which is the right model because both
systems' materialisation passes are embarrassingly row-linear (Hydra streams
``np.repeat`` batches out of the summary; DataSynth samples, repairs and
re-scans full view instances)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codd.scaling import BYTES_PER_VALUE, bytes_per_row
from repro.schema.schema import Schema


@dataclass
class ThroughputModel:
    """A linear cost model calibrated from one measured run."""

    measured_rows: int
    measured_seconds: float
    overhead_seconds: float = 0.0

    @property
    def rows_per_second(self) -> float:
        """Calibrated throughput."""
        if self.measured_seconds <= 0:
            return float("inf")
        return self.measured_rows / self.measured_seconds

    def predict_seconds(self, target_rows: int) -> float:
        """Predicted wall-clock time to materialise ``target_rows`` rows."""
        if self.rows_per_second == float("inf"):
            return self.overhead_seconds
        return self.overhead_seconds + target_rows / self.rows_per_second


def rows_for_target_bytes(schema: Schema, target_bytes: int,
                          nominal_counts: Mapping[str, int],
                          nominal_bytes: Optional[int] = None) -> int:
    """Total row count of a database scaled to ``target_bytes``.

    ``nominal_counts`` are the row counts of the reference (e.g. 100 GB)
    configuration; the same per-relation proportions are kept.
    """
    if nominal_bytes is None:
        nominal_bytes = sum(
            count * bytes_per_row(schema, name) for name, count in nominal_counts.items()
        )
    if nominal_bytes <= 0:
        return 0
    factor = target_bytes / nominal_bytes
    return int(sum(count * factor for count in nominal_counts.values()))


def materialization_table(schema: Schema, nominal_counts: Mapping[str, int],
                          hydra_model: ThroughputModel, datasynth_model: Optional[ThroughputModel],
                          target_gigabytes: Sequence[int] = (10, 100, 1000),
                          ) -> List[Dict[str, object]]:
    """Build the Figure 14 table: predicted materialisation time per target
    size for Hydra and (when it could run) DataSynth."""
    rows: List[Dict[str, object]] = []
    for gigabytes in target_gigabytes:
        target_bytes = gigabytes * 10**9
        total_rows = rows_for_target_bytes(schema, target_bytes, nominal_counts)
        entry: Dict[str, object] = {
            "size_gb": gigabytes,
            "total_rows": total_rows,
            "hydra_seconds": hydra_model.predict_seconds(total_rows),
        }
        if datasynth_model is not None:
            entry["datasynth_seconds"] = datasynth_model.predict_seconds(total_rows)
        rows.append(entry)
    return rows


def format_duration(seconds: float) -> str:
    """Human-friendly rendering used by the benchmark reports."""
    if seconds < 120:
        return f"{seconds:.1f} sec"
    minutes = seconds / 60
    if minutes < 120:
        return f"{minutes:.1f} min"
    hours = minutes / 60
    if hours < 48:
        return f"{hours:.1f} hours"
    days = hours / 24
    if days < 14:
        return f"{days:.1f} days"
    return f"{days / 7:.1f} weeks"
