"""Referential-integrity accounting (Figure 11).

Both Hydra and DataSynth need to add tuples to referenced relations so that
every foreign key finds its target; the paper compares how many such *extra
tuples* each system injects per relation (Hydra's are typically an order of
magnitude fewer because its deterministic view solutions diverge less across
views than DataSynth's sampled instances)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass
class IntegrityComparison:
    """Extra tuples added per relation by each system."""

    hydra: Dict[str, int] = field(default_factory=dict)
    datasynth: Dict[str, int] = field(default_factory=dict)

    def relations(self, only_nonzero: bool = True) -> List[str]:
        """Relations to report (by default only those where either system
        added tuples)."""
        names = sorted(set(self.hydra) | set(self.datasynth))
        if not only_nonzero:
            return names
        return [
            name for name in names
            if self.hydra.get(name, 0) > 0 or self.datasynth.get(name, 0) > 0
        ]

    def rows(self) -> List[Tuple[str, int, int]]:
        """Tabular form: (relation, hydra extra tuples, datasynth extra tuples)."""
        return [
            (name, self.hydra.get(name, 0), self.datasynth.get(name, 0))
            for name in self.relations()
        ]

    def totals(self) -> Tuple[int, int]:
        """Total extra tuples for (hydra, datasynth)."""
        return sum(self.hydra.values()), sum(self.datasynth.values())


def compare_extra_tuples(hydra_extra: Mapping[str, int],
                         datasynth_extra: Optional[Mapping[str, int]] = None,
                         ) -> IntegrityComparison:
    """Bundle the two systems' extra-tuple counts for reporting."""
    return IntegrityComparison(
        hydra=dict(hydra_extra),
        datasynth=dict(datasynth_extra or {}),
    )
