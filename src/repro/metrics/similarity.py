"""Volumetric-similarity metrics (Figure 10 and Section 7.6).

Volumetric similarity is measured per cardinality constraint: the relative
difference between the row count the constraint demands (observed at the
client) and the row count the regenerated database actually produces.  Two
evaluation paths are provided:

* :func:`evaluate_on_database` executes the constraints against a
  materialised database through the engine (joins and all);
* :func:`evaluate_on_summary` evaluates them analytically on the database
  summary by chasing foreign keys through the relation summaries, which is
  scale independent and therefore usable for the exabyte scenario.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.errors import SummaryError
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary, RelationSummary
from repro.workload.query import Query


@dataclass
class ConstraintResult:
    """Evaluation outcome for one cardinality constraint."""

    constraint: CardinalityConstraint
    expected: int
    actual: int

    @property
    def relative_error(self) -> float:
        """Signed relative error ``(actual - expected) / expected``.

        A constraint expecting zero rows contributes zero error when the
        regenerated database also produces zero rows, and an error equal to
        the produced count otherwise.
        """
        if self.expected == 0:
            return float(self.actual)
        return (self.actual - self.expected) / self.expected

    @property
    def absolute_relative_error(self) -> float:
        """Magnitude of the relative error."""
        return abs(self.relative_error)


@dataclass
class SimilarityReport:
    """All per-constraint results plus the aggregate views the paper plots."""

    results: List[ConstraintResult]

    def errors(self) -> np.ndarray:
        """Absolute relative errors of all constraints."""
        return np.array([r.absolute_relative_error for r in self.results], dtype=float)

    def signed_errors(self) -> np.ndarray:
        """Signed relative errors of all constraints."""
        return np.array([r.relative_error for r in self.results], dtype=float)

    def fraction_within(self, threshold: float) -> float:
        """Fraction of constraints with absolute relative error <= threshold."""
        if not self.results:
            return 1.0
        return float((self.errors() <= threshold + 1e-12).mean())

    def error_curve(self, thresholds: Sequence[float]) -> List[Tuple[float, float]]:
        """The cumulative curve of Figure 10: % of CCs within each error."""
        return [(t, 100.0 * self.fraction_within(t)) for t in thresholds]

    def max_error(self) -> float:
        """Largest absolute relative error."""
        errors = self.errors()
        return float(errors.max()) if errors.size else 0.0

    def fraction_negative(self) -> float:
        """Fraction of constraints with fewer rows than requested."""
        if not self.results:
            return 0.0
        return float((self.signed_errors() < -1e-12).mean())

    def fraction_exact(self, tolerance: float = 1e-9) -> float:
        """Fraction of constraints satisfied exactly."""
        return self.fraction_within(tolerance)


# ---------------------------------------------------------------------- #
# evaluation against a regenerated database (through the engine)
# ---------------------------------------------------------------------- #
def _view_query(database: Database, relation: str) -> Query:
    """The denormalised-view query of ``relation``: the relation joined with
    every relation it references, directly or transitively."""
    closure = database.schema.referenced_closure(relation)
    return Query(query_id=f"__view_{relation}", root=relation,
                 relations=(relation, *closure))


def denormalized_view(database: Database, relation: str) -> Table:
    """Materialise the denormalised view of ``relation``: the relation joined
    with every relation it references, directly or transitively."""
    return Executor(database).execute(_view_query(database, relation)).table


def evaluate_with_executor(ccs: ConstraintSet,
                           executor: Executor) -> SimilarityReport:
    """Evaluate every constraint through an existing executor.

    Constraints are grouped per root relation and counted in one pass over
    that relation's denormalised view — in pipelined mode the view streams
    through the join operators batch-at-a-time, so the fact relation of a
    stream-attached (dynamically regenerated) database is never
    materialised, whatever scale it expands to.
    """
    indexed = list(enumerate(ccs))
    groups: Dict[str, List[Tuple[int, CardinalityConstraint]]] = {}
    for index, cc in indexed:
        groups.setdefault(cc.relation, []).append((index, cc))
    actuals: Dict[int, int] = {}
    for relation, pairs in groups.items():
        query = _view_query(executor.database, relation)
        counts = executor.count(query, [cc.predicate for _, cc in pairs])
        for (index, _), actual in zip(pairs, counts):
            actuals[index] = actual
    return SimilarityReport(results=[
        ConstraintResult(constraint=cc, expected=cc.cardinality,
                         actual=actuals[index])
        for index, cc in indexed
    ])


def evaluate_on_database(ccs: ConstraintSet, database: Database,
                         mode: str = "pipelined") -> SimilarityReport:
    """Evaluate every constraint against a regenerated database."""
    return evaluate_with_executor(ccs, Executor(database, mode=mode))


# ---------------------------------------------------------------------- #
# evaluation against a database summary (scale independent)
# ---------------------------------------------------------------------- #
class SummaryViewResolver:
    """Reconstructs denormalised view rows from relation summaries by chasing
    foreign keys, caching parent lookups along the way."""

    def __init__(self, summary: DatabaseSummary, schema: Schema) -> None:
        self.summary = summary
        self.schema = schema
        self._prefix: Dict[str, List[int]] = {}
        self._cache: Dict[Tuple[str, int], Dict[str, int]] = {}

    def _prefix_counts(self, relation: str) -> List[int]:
        if relation not in self._prefix:
            self._prefix[relation] = self.summary.relation(relation).prefix_counts()
        return self._prefix[relation]

    def attributes_for_pk(self, relation: str, pk: int) -> Dict[str, int]:
        """Return all (transitively reachable) attribute values of the tuple
        of ``relation`` whose primary key is ``pk``."""
        key = (relation, pk)
        if key in self._cache:
            return self._cache[key]
        relation_summary = self.summary.relation(relation)
        prefix = self._prefix_counts(relation)
        position = bisect_left(prefix, pk)
        if position >= len(relation_summary.rows):
            raise SummaryError(
                f"primary key {pk} outside relation {relation!r} ({prefix[-1] if prefix else 0} rows)"
            )
        values, _ = relation_summary.rows[position]
        out = self._expand_row(relation, values)
        self._cache[key] = out
        return out

    def _expand_row(self, relation: str, values: Sequence[int]) -> Dict[str, int]:
        rel = self.schema.relation(relation)
        relation_summary = self.summary.relation(relation)
        out: Dict[str, int] = {}
        for attribute in rel.attribute_names:
            out[attribute] = values[relation_summary.column_index(attribute)]
        for fk in rel.foreign_keys:
            fk_value = values[relation_summary.column_index(fk.column)]
            out.update(self.attributes_for_pk(fk.target, fk_value))
        return out

    def view_rows(self, relation: str) -> List[Tuple[Dict[str, int], int]]:
        """Return the denormalised view of ``relation`` as (row, count) pairs."""
        relation_summary = self.summary.relation(relation)
        return [
            (self._expand_row(relation, values), count)
            for values, count in relation_summary.rows
        ]


def evaluate_on_summary(ccs: ConstraintSet, summary: DatabaseSummary,
                        schema: Schema) -> SimilarityReport:
    """Evaluate every constraint analytically against a database summary."""
    resolver = SummaryViewResolver(summary, schema)
    view_rows: Dict[str, List[Tuple[Dict[str, int], int]]] = {}
    results: List[ConstraintResult] = []
    for cc in ccs:
        if cc.relation not in view_rows:
            view_rows[cc.relation] = resolver.view_rows(cc.relation)
        actual = sum(
            count for row, count in view_rows[cc.relation] if cc.predicate.evaluate(row)
        )
        results.append(ConstraintResult(constraint=cc, expected=cc.cardinality, actual=actual))
    return SimilarityReport(results=results)
