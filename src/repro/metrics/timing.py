"""Small timing utilities shared by the experiment harness.

Since the :mod:`repro.obs` layer landed, :class:`TimingLog` is a thin facade
over a phase-labeled :class:`repro.obs.metrics.Histogram`: every
``record``/``time`` call is one histogram observation, so a log owned by an
instrumented component (e.g. the parallel LP solver) exposes not only the
accumulated totals of the legacy API but also per-phase counts and
p50/p95/p99 estimates through its backing registry.  The public surface —
``Timer``, ``TimingLog(entries=...)``, ``record``, ``time``, ``total``,
``entries`` — is unchanged.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry


class Timer:
    """A context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.seconds = time.perf_counter() - self._start
            self._start = None


class TimingLog:
    """Accumulates named timings for multi-phase experiments.

    Recording is thread-safe, so phases running inside a worker pool (e.g.
    the parallel LP solver) can share one log.  Each named phase is one
    labeled series of a ``repro_timing_seconds`` histogram on ``registry``
    (a private registry by default), so ``phases``/``quantile`` offer
    distribution views on top of the accumulated ``entries`` totals.
    """

    def __init__(self, entries: Optional[Dict[str, float]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._histogram: Histogram = self.registry.histogram(
            "repro_timing_seconds",
            "Per-phase wall-clock accumulated through TimingLog",
            labelnames=("phase",),
        )
        if entries:
            for name, seconds in entries.items():
                self.record(name, seconds)

    def record(self, name: str, seconds: float) -> None:
        """Add (accumulate) a timing under ``name``."""
        self._histogram.labels(phase=name).observe(seconds)

    def time(self, name: str) -> "_LogTimer":
        """Return a context manager that records its duration under ``name``."""
        return _LogTimer(self, name)

    @property
    def entries(self) -> Dict[str, float]:
        """Accumulated seconds per phase name (the legacy dict view)."""
        return {child.labelvalues[0]: child.sum
                for child in self._histogram.children()}

    def total(self) -> float:
        """Sum of all recorded timings."""
        return sum(self.entries.values())

    def quantile(self, name: str, q: float) -> float:
        """Estimated ``q``-quantile of the individual timings of one phase."""
        return self._histogram.labels(phase=name).quantile(q)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimingLog):
            return NotImplemented
        return self.entries == other.entries

    def __repr__(self) -> str:
        return f"TimingLog(entries={self.entries!r})"


class _LogTimer:
    def __init__(self, log: TimingLog, name: str) -> None:
        self._log = log
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "Timer":
        return self._timer.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        self._log.record(self._name, self._timer.seconds)
