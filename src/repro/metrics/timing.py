"""Small timing utilities shared by the experiment harness."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional


class Timer:
    """A context-manager stopwatch.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.seconds >= 0.0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.seconds = time.perf_counter() - self._start
            self._start = None


@dataclass
class TimingLog:
    """Accumulates named timings for multi-phase experiments.

    Recording is thread-safe, so phases running inside a worker pool (e.g.
    the parallel LP solver) can share one log.
    """

    entries: Dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, name: str, seconds: float) -> None:
        """Add (accumulate) a timing under ``name``."""
        with self._lock:
            self.entries[name] = self.entries.get(name, 0.0) + seconds

    def time(self, name: str) -> "_LogTimer":
        """Return a context manager that records its duration under ``name``."""
        return _LogTimer(self, name)

    def total(self) -> float:
        """Sum of all recorded timings."""
        with self._lock:
            return sum(self.entries.values())


class _LogTimer:
    def __init__(self, log: TimingLog, name: str) -> None:
        self._log = log
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "Timer":
        return self._timer.__enter__()

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        self._log.record(self._name, self._timer.seconds)
