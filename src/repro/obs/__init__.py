"""Unified observability: metrics registry, request tracing, structured logs.

``repro.obs`` is the one telemetry substrate every layer of the library
reports through:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  labeled :class:`Counter` / :class:`Gauge` / :class:`Histogram` families
  (log-scale buckets, p50/p95/p99 estimation) with snapshot, Prometheus
  text exposition and JSON export;
* :mod:`repro.obs.trace` — contextvars-propagated :class:`Span` trees with
  trace/span ids, durations and attributes, sampled at the root, exported
  as JSONL and reconstructed with :func:`build_tree`;
* :mod:`repro.obs.logging` — ``repro.*``-namespaced loggers with an
  optional JSON formatter that joins log lines to the active span.

The solver (solve latency, cache hits), the store (hits/misses/evictions,
bytes), the executor (batches, rows, peak) and the serving front-end (queue
depth, per-tenant latency distributions) all instrument through this
package; ``RegenerationService.stats()`` and the ``python -m repro stats
--metrics|--prometheus|--json`` / ``trace`` CLI commands read it back out.
The :class:`~repro.api.RegenConfig` knobs ``obs_enabled``, ``trace_sample``
and ``log_format`` switch the layer without touching call sites; see
``docs/OBSERVABILITY.md`` for the full metric catalogue and trace-field
reference.
"""

from repro.obs.logging import (
    JsonFormatter,
    LOG_FORMATS,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    QUANTILE_RELATIVE_ERROR,
    get_registry,
    log_buckets,
)
from repro.obs.trace import (
    Span,
    Tracer,
    build_tree,
    current_span,
    get_tracer,
    parse_jsonl,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "log_buckets",
    "DEFAULT_BUCKETS",
    "QUANTILE_RELATIVE_ERROR",
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "build_tree",
    "parse_jsonl",
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "LOG_FORMATS",
]
