"""Structured logging for the ``repro.*`` logger namespace.

Every module in the library logs through :func:`get_logger`, which pins the
logger name under the ``repro.`` root (``get_logger("service")`` →
``logging.getLogger("repro.service")``) — one switch silences or redirects
the whole library, and the :mod:`tools.check_obs` lint rejects any logger
outside the namespace.  The library itself only attaches a
:class:`logging.NullHandler` (standard library etiquette: no output unless
the application asks for it).

:func:`configure_logging` is that ask: it attaches one stream handler to the
``repro`` root, either human-readable text or one JSON object per line
(:class:`JsonFormatter`), and is idempotent — reconfiguring replaces the
previous handler instead of stacking duplicates.  JSON records carry the
timestamp, level, logger, message, any ``extra={...}`` fields passed at the
call site, and — when the call happens inside a sampled trace — the active
``trace_id``/``span_id``, so log lines can be joined against exported spans.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

from repro.errors import ObservabilityError
from repro.obs.trace import current_span

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

#: Attribute names every ``LogRecord`` carries by default; anything else on a
#: record is a caller-supplied ``extra`` field and lands in the JSON output.
_STANDARD_ATTRS = frozenset(
    vars(logging.LogRecord("", 0, "", 0, "", (), None))
) | {"message", "asctime", "taskName"}

#: Supported ``configure_logging`` / ``RegenConfig.log_format`` spellings.
LOG_FORMATS = ("text", "json")

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger inside the ``repro.*`` namespace.

    ``name`` may be a bare suffix (``"service"``), an already-qualified
    ``repro.*`` name, or a module ``__name__`` (which already starts with
    ``repro.``); empty returns the namespace root.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per log record, trace-correlated when possible."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                payload[key] = value
        span = current_span()
        if span is not None:
            payload.setdefault("trace_id", span.trace_id)
            payload.setdefault("span_id", span.span_id)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


class TextFormatter(logging.Formatter):
    """Terse single-line text format with the extra fields appended."""

    default_msec_format = "%s.%03d"

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)s %(name)s %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        extras = " ".join(
            f"{key}={value}" for key, value in record.__dict__.items()
            if key not in _STANDARD_ATTRS and not key.startswith("_")
        )
        return f"{base} {extras}" if extras else base

    def formatTime(self, record: logging.LogRecord,
                   datefmt: Optional[str] = None) -> str:
        return time.strftime("%H:%M:%S", time.localtime(record.created))


def configure_logging(level: "int | str" = logging.INFO,
                      log_format: str = "text",
                      stream: Optional[IO[str]] = None) -> logging.Handler:
    """Attach (or replace) the library's output handler on the ``repro``
    root logger and return it.  ``log_format`` is ``"text"`` or ``"json"``."""
    if log_format not in LOG_FORMATS:
        raise ObservabilityError(
            f"unknown log format {log_format!r}; expected one of {LOG_FORMATS}"
        )
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(JsonFormatter() if log_format == "json"
                         else TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return handler
