"""The thread-safe metrics registry: labeled counters, gauges, histograms.

One :class:`MetricsRegistry` holds a set of named metric *families*; a family
with label names fans out into one child time series per distinct label-value
combination (``requests.labels(tenant="a").inc()``), exactly like the
Prometheus data model it exports to.  Three metric kinds:

* :class:`Counter` — monotonically increasing totals (requests, hits,
  evictions).  Names end in ``_total`` by convention.
* :class:`Gauge` — values that go up and down (queue depth, store bytes).
* :class:`Histogram` — distributions over fixed **log-scale buckets** with
  p50/p95/p99 estimation.  The default buckets span 1µs..10ks at 8 buckets
  per decade, so any quantile estimate is within one bucket of the truth —
  a guaranteed relative error bound of ``10^(1/8) ≈ 1.334`` (the accuracy
  tests assert exactly this).

Everything is safe to update from any number of threads: each family holds
one lock, updates are a dict lookup plus an add, and nothing on a hot path
allocates after the first observation of a label set.  A registry can be
``enabled=False``, turning every update into a no-op while keeping the full
read API (snapshots report zeros) — the ``obs_enabled`` config knob.

Exports: :meth:`MetricsRegistry.snapshot` (plain dicts, monitoring-friendly),
:meth:`MetricsRegistry.to_prometheus` (text exposition format, scrapeable),
and :meth:`MetricsRegistry.to_json` (machine-readable dump for CI and
scripts).  The process-wide default registry is reachable via
:func:`get_registry`; components that need isolated counters (each
:class:`~repro.service.RegenerationService`, each
:class:`~repro.service.store.SummaryStore`) construct their own.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default histogram buckets: log-scale upper bounds, 8 per decade across
#: 1e-6 .. 1e4 (seconds).  Ratio between consecutive bounds: 10**(1/8).
DEFAULT_BUCKETS_PER_DECADE = 8

#: Guaranteed relative error bound of quantile estimates over the default
#: buckets (one bucket of slack): ``10 ** (1 / DEFAULT_BUCKETS_PER_DECADE)``.
QUANTILE_RELATIVE_ERROR = 10.0 ** (1.0 / DEFAULT_BUCKETS_PER_DECADE)


def log_buckets(minimum: float = 1e-6, maximum: float = 1e4,
                per_decade: int = DEFAULT_BUCKETS_PER_DECADE) -> Tuple[float, ...]:
    """Log-scale histogram bucket upper bounds covering ``minimum..maximum``.

    >>> bounds = log_buckets(1e-3, 1e0, per_decade=1)
    >>> [round(b, 4) for b in bounds]
    [0.001, 0.01, 0.1, 1.0]
    """
    if minimum <= 0 or maximum <= minimum or per_decade < 1:
        raise ObservabilityError("log_buckets needs 0 < minimum < maximum"
                                 " and per_decade >= 1")
    steps = int(round(math.log10(maximum / minimum) * per_decade))
    return tuple(minimum * 10.0 ** (i / per_decade) for i in range(steps + 1))


DEFAULT_BUCKETS = log_buckets()

_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ObservabilityError(
            f"invalid metric name {name!r}: use lowercase [a-z0-9_], not"
            " starting with a digit"
        )
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in zip(labelnames, labelvalues))
    return "{" + pairs + "}"


class _Child:
    """One time series of a family (one label-value combination)."""

    __slots__ = ("_family", "labelvalues")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        self._family = family
        self.labelvalues = labelvalues


class CounterChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        family = self._family
        if not family.registry.enabled:
            return
        with family._lock:
            self._value += amount

    def value(self) -> float:
        with self._family._lock:
            return self._value


class GaugeChild(_Child):
    __slots__ = ("_value",)

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self._value = 0.0

    def set(self, value: float) -> None:
        family = self._family
        if not family.registry.enabled:
            return
        with family._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        family = self._family
        if not family.registry.enabled:
            return
        with family._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is below it (peak tracking)."""
        family = self._family
        if not family.registry.enabled:
            return
        with family._lock:
            if value > self._value:
                self._value = float(value)

    def value(self) -> float:
        with self._family._lock:
            return self._value


class HistogramChild(_Child):
    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self, family: "_Family", labelvalues: Tuple[str, ...]) -> None:
        super().__init__(family, labelvalues)
        self.counts = [0] * (len(family.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        family = self._family
        if not family.registry.enabled:
            return
        index = bisect_left(family.buckets, value)
        with family._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); ``nan`` with no data.

        The estimate interpolates linearly inside the bucket containing the
        target rank and is clamped to the observed min/max, so it is always
        within one bucket of the exact quantile — a relative error of at
        most the bucket ratio (:data:`QUANTILE_RELATIVE_ERROR` for the
        default buckets).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} out of range [0, 1]")
        family = self._family
        with family._lock:
            if self.count == 0:
                return math.nan
            target = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count > 0:
                    lo = family.buckets[index - 1] if index > 0 else 0.0
                    hi = family.buckets[index] if index < len(family.buckets) \
                        else self.max
                    fraction = (target - (cumulative - bucket_count)) / bucket_count
                    estimate = lo + (hi - lo) * fraction
                    return min(max(estimate, self.min), self.max)
            return self.max

    def summary(self) -> Dict[str, float]:
        """Count, sum and the p50/p95/p99 estimates as one plain dict."""
        with self._family._lock:
            count, total = self.count, self.sum
        out = {"count": count, "sum": total}
        if count:
            out.update(p50=self.quantile(0.50), p95=self.quantile(0.95),
                       p99=self.quantile(0.99))
        return out


_CHILD_TYPES = {"counter": CounterChild, "gauge": GaugeChild,
                "histogram": HistogramChild}


class _Family:
    """One named metric family; fans out into labeled children."""

    def __init__(self, registry: "MetricsRegistry", kind: str, name: str,
                 help: str, labelnames: Tuple[str, ...],
                 buckets: Tuple[float, ...] = ()) -> None:
        self.registry = registry
        self.kind = kind
        self.name = _check_name(name)
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Child] = {}
        if not labelnames:  # unlabeled: the family IS its single child
            self._default = self._child(())
        else:
            self._default = None

    def _child(self, labelvalues: Tuple[str, ...]) -> _Child:
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = _CHILD_TYPES[self.kind](self, labelvalues)
                self._children[labelvalues] = child
            return child

    def labels(self, **labels: str) -> _Child:
        """The child time series for one label-value combination."""
        if set(labels) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name} takes labels {self.labelnames},"
                f" got {tuple(sorted(labels))}"
            )
        return self._child(tuple(str(labels[k]) for k in self.labelnames))

    def children(self) -> List[_Child]:
        with self._lock:
            return list(self._children.values())

    # Unlabeled convenience: family proxies its single child's update API.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self._default.set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)  # type: ignore[union-attr]

    def set_max(self, value: float) -> None:
        self._default.set_max(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self._default.observe(value)  # type: ignore[union-attr]

    def value(self) -> float:
        return self._default.value()  # type: ignore[union-attr]

    def quantile(self, q: float) -> float:
        return self._default.quantile(q)  # type: ignore[union-attr]

    def summary(self) -> Dict[str, float]:
        return self._default.summary()  # type: ignore[union-attr]


class Counter(_Family):
    """A monotonically increasing total (optionally labeled)."""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...]) -> None:
        super().__init__(registry, "counter", name, help, labelnames)


class Gauge(_Family):
    """A value that can go up and down (optionally labeled)."""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...]) -> None:
        super().__init__(registry, "gauge", name, help, labelnames)


class Histogram(_Family):
    """A distribution over fixed log-scale buckets with quantile estimation."""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...],
                 buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObservabilityError("histogram buckets must be strictly increasing")
        super().__init__(registry, "histogram", name, help, labelnames, bounds)


class MetricsRegistry:
    """A named collection of metric families, exportable in one call.

    ``counter`` / ``gauge`` / ``histogram`` are *get-or-create*: asking for
    an existing name returns the existing family (so instrumented modules
    never need to coordinate creation order), but asking with a different
    kind or label set raises :class:`~repro.errors.ObservabilityError` —
    one name, one meaning.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    def _get_or_create(self, kind: str, name: str, help: str,
                       labelnames: Iterable[str],
                       buckets: Optional[Sequence[float]] = None) -> _Family:
        names = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != names:
                    raise ObservabilityError(
                        f"metric {name} already registered as"
                        f" {family.kind}{family.labelnames}, not {kind}{names}"
                    )
                return family
            if kind == "counter":
                family = Counter(self, name, help, names)
            elif kind == "gauge":
                family = Gauge(self, name, help, names)
            else:
                family = Histogram(self, name, help, names, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        """Get or create a counter family."""
        return self._get_or_create("counter", name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        """Get or create a gauge family."""
        return self._get_or_create("gauge", name, help, labelnames)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram family."""
        return self._get_or_create("histogram", name, help, labelnames, buckets)  # type: ignore[return-value]

    def families(self) -> List[_Family]:
        """Every registered family, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """Flat ``{series_name: value}`` dict of every time series.

        Counter/gauge series map to their value; histogram series map to
        their :meth:`HistogramChild.summary` dict.  Labeled series are keyed
        ``name{label="value"}`` in Prometheus spelling.
        """
        out: Dict[str, object] = {}
        for family in self.families():
            for child in family.children():
                key = family.name + _label_suffix(family.labelnames,
                                                  child.labelvalues)
                if family.kind == "histogram":
                    out[key] = child.summary()  # type: ignore[union-attr]
                else:
                    out[key] = child.value()  # type: ignore[union-attr]
        return out

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                suffix = _label_suffix(family.labelnames, child.labelvalues)
                if family.kind != "histogram":
                    value = child.value()  # type: ignore[union-attr]
                    lines.append(f"{family.name}{suffix} {_format(value)}")
                    continue
                cumulative = 0
                bounds = [*family.buckets, math.inf]
                for bound, count in zip(bounds, child.counts):  # type: ignore[union-attr]
                    cumulative += count
                    le = "+Inf" if bound == math.inf else _format(bound)
                    label = _bucket_suffix(family.labelnames,
                                           child.labelvalues, le)
                    lines.append(f"{family.name}_bucket{label} {cumulative}")
                lines.append(f"{family.name}_sum{suffix}"
                             f" {_format(child.sum)}")  # type: ignore[union-attr]
                lines.append(f"{family.name}_count{suffix}"
                             f" {child.count}")  # type: ignore[union-attr]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: Optional[int] = None) -> str:
        """Machine-readable JSON dump (kind, help, labels, per-series data)."""
        dump: Dict[str, object] = {}
        for family in self.families():
            series = []
            for child in family.children():
                labels = dict(zip(family.labelnames, child.labelvalues))
                if family.kind == "histogram":
                    data: Dict[str, object] = child.summary()  # type: ignore[union-attr]
                    data["buckets"] = {
                        _format(bound): count
                        for bound, count in zip([*family.buckets, math.inf],
                                                child.counts)  # type: ignore[union-attr]
                        if count
                    }
                else:
                    data = {"value": child.value()}  # type: ignore[union-attr]
                series.append({"labels": labels, **data})
            dump[family.name] = {"kind": family.kind, "help": family.help,
                                 "series": series}
        return json.dumps(dump, indent=indent, sort_keys=True)


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _bucket_suffix(labelnames: Sequence[str], labelvalues: Sequence[str],
                   le: str) -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in zip(labelnames, labelvalues)]
    pairs.append(f'le="{le}"')
    return "{" + ",".join(pairs) + "}"


#: The process-wide default registry (components with per-instance counters
#: construct their own; this one serves module-level instrumentation and
#: ad-hoc user metrics).
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY
