"""Request tracing: contextvars-propagated spans with JSONL export.

A :class:`Span` is one timed operation — a submit, an LP solve, a streamed
relation — carrying a ``trace_id`` shared by every span of one request, its
own ``span_id``, its parent's id, wall-clock start time, duration and free
attributes.  Spans nest through a :mod:`contextvars` variable, so opening a
span inside another (same thread / async task) records the parent/child edge
automatically; crossing a worker pool requires capturing the parent
explicitly (``parent=tracer.current()`` at enqueue time) because each pool
thread runs in its own context — exactly what
:class:`~repro.service.RegenerationService` does for cold builds.

The process-wide :class:`Tracer` samples at the *root*: a new trace is
recorded with probability ``sample`` (default 0 — tracing off, and a
disabled ``span()`` costs one contextvar read); child spans inherit their
parent's decision, so a trace is always complete or absent, never ragged.
Finished spans land in a bounded ring buffer, exportable as JSON-lines via
:meth:`Tracer.to_jsonl` / :meth:`Tracer.export`, and
:func:`build_tree` reconstructs the parent/child forest from exported
records (the round-trip the serving tests assert).

Instrumented modules call the module-level :func:`span` helper against the
global tracer; generators and cursors, whose lifetime extends across
``yield``-s, use :meth:`Tracer.start_span` / :meth:`Span.finish` instead of
the context manager so the contextvar is never left set in a consumer's
context between batches.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ObservabilityError

#: Default capacity of the finished-span ring buffer.
DEFAULT_CAPACITY = 4096

_current_span: "contextvars.ContextVar[Optional[Span]]" = \
    contextvars.ContextVar("repro_obs_span", default=None)


class Span:
    """One timed, attributed operation within a trace.

    Use as a context manager (the common case) or drive :meth:`finish`
    manually for spans whose lifetime crosses generator ``yield``-s.  While
    active as a context manager the span is the thread's *current* span and
    children opened inside nest under it.
    """

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "started_at", "_t0", "duration_seconds",
                 "status", "error", "_token", "_finished")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str],
                 attributes: Optional[Dict[str, object]] = None) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = os.urandom(8).hex()
        self.parent_id = parent_id
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.duration_seconds = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._token: Optional[contextvars.Token] = None
        self._finished = False

    def set_attribute(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Close the span (idempotent) and hand it to the tracer's buffer."""
        if self._finished:
            return
        self._finished = True
        self.duration_seconds = time.perf_counter() - self._t0
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        self.tracer._record(self)

    def to_dict(self) -> Dict[str, object]:
        """The span as one JSON-serialisable record."""
        record: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": round(self.started_at, 6),
            "duration_seconds": round(self.duration_seconds, 9),
            "status": self.status,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.attributes:
            record["attributes"] = self.attributes
        return record

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.finish(exc)


class _NullSpan:
    """The no-op span handed out when the trace is not sampled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def finish(self, error: Optional[BaseException] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Samples, collects and exports spans (one per process is the norm)."""

    def __init__(self, sample: float = 0.0,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._finished: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._random = random.Random()
        self.sample = 0.0
        self.configure(sample=sample, capacity=capacity)

    def configure(self, sample: Optional[float] = None,
                  capacity: Optional[int] = None) -> None:
        """Adjust the sampling rate and/or ring-buffer capacity."""
        if sample is not None:
            if not 0.0 <= sample <= 1.0:
                raise ObservabilityError(
                    f"trace sample rate {sample} out of range [0, 1]"
                )
            self.sample = float(sample)
        if capacity is not None:
            if capacity < 1:
                raise ObservabilityError("tracer capacity must be positive")
            with self._lock:
                if self._finished.maxlen != capacity:
                    self._finished = deque(self._finished, maxlen=capacity)

    @property
    def enabled(self) -> bool:
        """``True`` when new root spans can be sampled."""
        return self.sample > 0.0

    # ------------------------------------------------------------------ #
    # span creation
    # ------------------------------------------------------------------ #
    def current(self) -> Optional[Span]:
        """The active span of this thread/context, if any."""
        return _current_span.get()

    def span(self, name: str, parent: "Optional[Span | _NullSpan]" = None,
             **attributes: object):
        """A context-manager span: child of ``parent`` (explicit or the
        current span), or a new sampled trace root.  Returns the shared
        no-op span when the trace is not recorded."""
        return self.start_span(name, parent=parent, **attributes)

    def start_span(self, name: str,
                   parent: "Optional[Span | _NullSpan]" = None,
                   **attributes: object):
        """Like :meth:`span` but also usable without ``with``: callers that
        outlive their creation scope (stream cursors) hold the span and call
        :meth:`Span.finish` themselves — the span is then never made
        *current*, so nothing leaks into the consumer's context."""
        if parent is None:
            parent = _current_span.get()
        if isinstance(parent, Span):
            return Span(self, name, parent.trace_id, parent.span_id, attributes)
        if isinstance(parent, _NullSpan):
            return NULL_SPAN  # the parent's trace was not sampled
        if self.sample <= 0.0:
            return NULL_SPAN
        if self.sample < 1.0 and self._random.random() >= self.sample:
            return NULL_SPAN
        return Span(self, name, os.urandom(16).hex(), None, attributes)

    # ------------------------------------------------------------------ #
    # collection and export
    # ------------------------------------------------------------------ #
    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span.to_dict())

    def spans(self) -> List[Dict[str, object]]:
        """Finished span records, oldest first."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._finished.clear()

    def to_jsonl(self) -> str:
        """Finished spans as JSON-lines (one record per line)."""
        return "".join(json.dumps(record, sort_keys=True) + "\n"
                       for record in self.spans())

    def export(self, path: "str | os.PathLike[str]") -> int:
        """Write the finished spans to ``path`` as JSONL; returns the count."""
        records = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


#: The process-wide tracer used by the module-level helpers and by every
#: instrumented module.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer`."""
    return _TRACER


def span(name: str, parent: "Optional[Span | _NullSpan]" = None,
         **attributes: object):
    """Open a span on the process tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(name, parent=parent, **attributes)


def current_span() -> Optional[Span]:
    """The active span of this thread/context on the process tracer."""
    return _TRACER.current()


def tracing_active() -> bool:
    """``True`` when a :func:`span` call could record anything: the process
    tracer samples new roots, or the caller already sits inside a recorded
    span.  Hot paths (the store's warm read, for one) check this before
    building span attributes so fully-disabled tracing costs one attribute
    read plus one contextvar read per call."""
    return _TRACER.sample > 0.0 or _current_span.get() is not None


def parse_jsonl(text: str) -> List[Dict[str, object]]:
    """Parse exported JSONL back into span records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def build_tree(records: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Reconstruct the span forest from exported records.

    Each returned root is its record plus a ``children`` list (recursively),
    ordered by start time.  Spans whose parent is missing from ``records``
    (e.g. evicted from the ring buffer) become roots, so the result is
    always a complete forest over the given records.
    """
    by_id: Dict[str, Dict[str, object]] = {}
    for record in records:
        node = dict(record)
        node["children"] = []
        by_id[str(node["span_id"])] = node
    roots: List[Dict[str, object]] = []
    for node in by_id.values():
        parent = by_id.get(str(node.get("parent_id")))
        if parent is not None:
            parent["children"].append(node)  # type: ignore[union-attr]
        else:
            roots.append(node)
    def sort(nodes: List[Dict[str, object]]) -> None:
        nodes.sort(key=lambda n: n.get("started_at", 0.0))
        for node in nodes:
            sort(node["children"])  # type: ignore[arg-type]
    sort(roots)
    return roots
