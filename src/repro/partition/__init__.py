"""Domain partitioning: region partitioning (Hydra) and grid partitioning
(DataSynth), plus consistency refinement across sub-views."""

from repro.partition.box import Box, conjunct_boxes, domain_box
from repro.partition.consistency import (
    RefinedVariable,
    refine_regions,
    shared_attribute_segments,
)
from repro.partition.grid import (
    DEFAULT_MAX_CELLS,
    grid_cell_count,
    grid_intervals,
    grid_partition,
)
from repro.partition.region import (
    Region,
    optimal_partition,
    optimal_partition_paper,
    region_count,
    valid_partition,
)

__all__ = [
    "Box",
    "domain_box",
    "conjunct_boxes",
    "Region",
    "optimal_partition",
    "optimal_partition_paper",
    "valid_partition",
    "region_count",
    "grid_cell_count",
    "grid_intervals",
    "grid_partition",
    "DEFAULT_MAX_CELLS",
    "RefinedVariable",
    "refine_regions",
    "shared_attribute_segments",
]
