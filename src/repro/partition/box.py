"""Axis-aligned boxes over integer attribute domains.

Partition blocks in this library are axis-aligned boxes: for every attribute
of the sub-view, a contiguous half-open interval.  A *region* (the unit that
receives an LP variable) is a set of boxes that all satisfy exactly the same
set of cardinality constraints.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import Interval, IntervalSet


class Box:
    """An axis-aligned box: one contiguous interval per attribute."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Mapping[str, Interval]) -> None:
        if not intervals:
            raise PartitionError("a box needs at least one attribute")
        self._intervals: Tuple[Tuple[str, Interval], ...] = tuple(
            sorted(intervals.items())
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def attributes(self) -> Tuple[str, ...]:
        """The box's attributes, sorted."""
        return tuple(attr for attr, _ in self._intervals)

    @property
    def intervals(self) -> Dict[str, Interval]:
        """Mapping from attribute to its interval."""
        return dict(self._intervals)

    def interval(self, attribute: str) -> Interval:
        """Return the interval along ``attribute``."""
        for attr, interval in self._intervals:
            if attr == attribute:
                return interval
        raise PartitionError(f"box has no attribute {attribute!r}")

    def volume(self) -> int:
        """Number of integer points contained in the box."""
        out = 1
        for _, interval in self._intervals:
            out *= interval.width
        return out

    def contains_point(self, point: Mapping[str, int]) -> bool:
        """Return ``True`` if the point lies inside the box."""
        return all(interval.contains(point[attr]) for attr, interval in self._intervals)

    def corner(self) -> Dict[str, int]:
        """The box's lower-left corner (the representative value combination
        used when instantiating summaries, Section 5.2)."""
        return {attr: interval.lo for attr, interval in self._intervals}

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Box") -> Optional["Box"]:
        """Return the intersection box, or ``None`` when disjoint.

        Both boxes must span the same attributes.
        """
        result: Dict[str, Interval] = {}
        other_intervals = other.intervals
        for attr, interval in self._intervals:
            cap = interval.intersect(other_intervals[attr])
            if cap is None:
                return None
            result[attr] = cap
        return Box(result)

    def subtract(self, other: "Box") -> List["Box"]:
        """Return disjoint boxes covering ``self`` minus ``other``.

        ``other`` must be fully contained in ``self`` along every attribute it
        intersects (callers subtract an intersection, so this always holds).
        """
        inner = self.intersect(other)
        if inner is None:
            return [self]
        pieces: List[Box] = []
        current = dict(self.intervals)
        inner_intervals = inner.intervals
        for attr in self.attributes:
            outer_iv = current[attr]
            inner_iv = inner_intervals[attr]
            if outer_iv.lo < inner_iv.lo:
                piece = dict(current)
                piece[attr] = Interval(outer_iv.lo, inner_iv.lo)
                pieces.append(Box(piece))
            if inner_iv.hi < outer_iv.hi:
                piece = dict(current)
                piece[attr] = Interval(inner_iv.hi, outer_iv.hi)
                pieces.append(Box(piece))
            current[attr] = inner_iv
        return pieces

    def split_along(self, attribute: str, points: Iterable[int]) -> List["Box"]:
        """Split the box along one attribute at the given cut points."""
        pieces = self.interval(attribute).split_at(points)
        if len(pieces) == 1:
            return [self]
        out: List[Box] = []
        base = self.intervals
        for piece in pieces:
            intervals = dict(base)
            intervals[attribute] = piece
            out.append(Box(intervals))
        return out

    # ------------------------------------------------------------------ #
    # predicate interaction
    # ------------------------------------------------------------------ #
    def satisfies_conjunct(self, conjunct: Conjunct) -> bool:
        """``True`` when *every* point of the box satisfies the conjunct.
        Conjunct attributes outside the box's attribute set are ignored
        (they are unconstrained within this sub-view's domain)."""
        for attr, values in conjunct.constraints.items():
            try:
                interval = self.interval(attr)
            except PartitionError:
                continue
            if not values.covers(interval):
                return False
        return True

    def satisfies_predicate(self, predicate: DNFPredicate) -> bool:
        """``True`` when every point of the box satisfies the DNF predicate.

        For boxes produced by a valid partition this coincides with "some
        point satisfies", because all points of a block behave identically
        with respect to every sub-constraint.
        """
        if predicate.is_true:
            return True
        return any(self.satisfies_conjunct(c) for c in predicate.conjuncts)

    def overlaps_conjunct(self, conjunct: Conjunct) -> bool:
        """``True`` when at least one point of the box satisfies the conjunct."""
        for attr, values in conjunct.constraints.items():
            try:
                interval = self.interval(attr)
            except PartitionError:
                continue
            if not values.overlaps(interval):
                return False
        return True

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{attr}:{interval!r}" for attr, interval in self._intervals)
        return f"Box({body})"


def domain_box(attributes: Sequence[str], domains: Mapping[str, Interval]) -> Box:
    """Return the box spanning the full domain of the given attributes."""
    return Box({attr: domains[attr] for attr in attributes})


def conjunct_boxes(conjunct: Conjunct, universe: Box) -> List[Box]:
    """Decompose ``conjunct`` (clipped to ``universe``) into disjoint boxes.

    A conjunct whose per-attribute restriction is a union of intervals (an IN
    list, for example) expands into the cross product of the per-attribute
    pieces.
    """
    per_attr: List[Tuple[str, List[Interval]]] = []
    for attr in universe.attributes:
        domain_iv = universe.interval(attr)
        restriction = conjunct.restriction(attr)
        if restriction is None:
            per_attr.append((attr, [domain_iv]))
            continue
        clipped = restriction.intersect_interval(domain_iv)
        if clipped.is_empty:
            return []
        per_attr.append((attr, list(clipped.intervals)))

    boxes: List[Dict[str, Interval]] = [{}]
    for attr, pieces in per_attr:
        boxes = [dict(b, **{attr: piece}) for b in boxes for piece in pieces]
    return [Box(b) for b in boxes]
