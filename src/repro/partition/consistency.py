"""Consistency refinement across sub-views (Section 4.2, "Consistency
Constraints").

Sub-views of the same view may share attributes; their LP solutions must then
agree on the joint distribution of the shared attributes.  To express this
with linear constraints, the partitions of both sub-views are refined along
the shared attributes so that the boundaries line up (every refined variable
projects into exactly one *elementary segment* per shared attribute).  The LP
formulator then simply equates the per-segment-combination sums.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.partition.box import Box
from repro.partition.region import Region
from repro.predicates.interval import Interval, elementary_segments


@dataclass
class RefinedVariable:
    """One LP variable after consistency refinement.

    Attributes
    ----------
    label:
        The set of view-constraint indices satisfied by every point.
    boxes:
        Disjoint boxes making up the variable's extent.
    shared_cell:
        For every shared attribute of the sub-view, the index of the
        elementary segment the variable projects into.  Variables of two
        sub-views with the same projection onto their common attributes are
        tied together by a consistency constraint.
    """

    label: FrozenSet[int]
    boxes: List[Box]
    shared_cell: Tuple[Tuple[str, int], ...]

    def volume(self) -> int:
        """Number of integer points covered by the variable's extent."""
        return sum(box.volume() for box in self.boxes)

    def representative(self) -> Dict[str, int]:
        """Lower-left corner of the first box (summary instantiation value)."""
        if not self.boxes:
            raise PartitionError("refined variable has no boxes")
        return self.boxes[0].corner()

    def cell_of(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Return the segment indices along the given shared attributes."""
        lookup = dict(self.shared_cell)
        return tuple(lookup[attr] for attr in attributes)


def shared_attribute_segments(regions_per_subview: Mapping[int, Sequence[Region]],
                              subview_attributes: Mapping[int, Sequence[str]],
                              shared_attributes: Iterable[str],
                              domains: Mapping[str, Interval],
                              ) -> Dict[str, List[Interval]]:
    """Compute the elementary segments of every shared attribute.

    The split points of a shared attribute are the union of the box
    boundaries contributed by every sub-view containing it (the "union of the
    split points of P1 and P2" in the paper).
    """
    segments: Dict[str, List[Interval]] = {}
    for attribute in shared_attributes:
        points: set = set()
        for index, regions in regions_per_subview.items():
            if attribute not in subview_attributes[index]:
                continue
            for region in regions:
                for box in region.boxes:
                    interval = box.interval(attribute)
                    points.add(interval.lo)
                    points.add(interval.hi)
        segments[attribute] = elementary_segments(domains[attribute], sorted(points))
    return segments


def refine_regions(regions: Sequence[Region], attributes: Sequence[str],
                   shared_segments: Mapping[str, List[Interval]],
                   ) -> List[RefinedVariable]:
    """Refine a sub-view's regions along its shared attributes and group the
    resulting boxes into LP variables.

    Boxes are split at every shared-attribute segment boundary and grouped by
    ``(label, segment index per shared attribute)``; each group becomes one
    LP variable.  Sub-views with no shared attributes produce exactly one
    variable per region.
    """
    shared_here = [a for a in attributes if a in shared_segments]
    if not shared_here:
        return [
            RefinedVariable(label=r.label, boxes=list(r.boxes), shared_cell=())
            for r in regions
        ]

    cut_points = {a: [iv.lo for iv in shared_segments[a]][1:] for a in shared_here}
    segment_index = {
        a: {iv.lo: i for i, iv in enumerate(shared_segments[a])} for a in shared_here
    }

    variables: Dict[Tuple[FrozenSet[int], Tuple[Tuple[str, int], ...]], List[Box]] = defaultdict(list)
    for region in regions:
        for box in region.boxes:
            pieces = [box]
            for attribute in shared_here:
                next_pieces: List[Box] = []
                for piece in pieces:
                    next_pieces.extend(piece.split_along(attribute, cut_points[attribute]))
                pieces = next_pieces
            for piece in pieces:
                cell = tuple(
                    (attribute, _locate(piece.interval(attribute).lo,
                                        segment_index[attribute],
                                        shared_segments[attribute]))
                    for attribute in shared_here
                )
                variables[(region.label, cell)].append(piece)

    return [
        RefinedVariable(label=label, boxes=boxes, shared_cell=cell)
        for (label, cell), boxes in sorted(
            variables.items(), key=lambda kv: (sorted(kv[0][0]), kv[0][1])
        )
    ]


def estimate_refined_count(regions: Sequence[Region], attributes: Sequence[str],
                           shared_segments: Mapping[str, List[Interval]]) -> int:
    """Number of LP variables :func:`refine_regions` would produce, computed
    without materialising the refinement (used to keep view LPs within a
    configurable budget)."""
    shared_here = [a for a in attributes if a in shared_segments]
    if not shared_here:
        return len(regions)
    boundaries = {
        a: [iv.lo for iv in shared_segments[a]][1:] for a in shared_here
    }
    total = 0
    for region in regions:
        for box in region.boxes:
            pieces = 1
            for attribute in shared_here:
                interval = box.interval(attribute)
                inner = sum(1 for p in boundaries[attribute] if interval.lo < p < interval.hi)
                pieces *= inner + 1
            # A box contributes up to ``pieces`` refined pieces; different
            # boxes of a region may land in the same cell, so this is an
            # upper bound — adequate for budgeting purposes.
            total += pieces
    return total


def _locate(lo: int, index: Mapping[int, int], segments: Sequence[Interval]) -> int:
    """Find the elementary segment containing the point ``lo``."""
    if lo in index:
        return index[lo]
    for i, segment in enumerate(segments):
        if segment.contains(lo):
            return i
    raise PartitionError(f"value {lo} outside every elementary segment")
