"""Grid partitioning (the DataSynth baseline strategy, Section 3.2).

Grid partitioning intervalises the domain of every constrained attribute at
the constants appearing in the CCs and takes the full cross product of the
per-attribute intervals as the set of LP variables.  The number of cells
grows as ``l^n`` and the paper reports that it routinely overwhelms the LP
solver on complex workloads; :func:`grid_cell_count` therefore computes the
count without materialising the cells, and :func:`grid_partition` refuses to
materialise grids beyond a configurable limit (raising
:class:`~repro.errors.LPTooLargeError`, the analogue of the solver crash
reported in Section 7.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import LPTooLargeError, PartitionError
from repro.partition.box import Box
from repro.predicates.interval import Interval, elementary_segments
from repro.views.preprocess import ViewConstraint

#: Default ceiling on the number of grid cells that will be materialised.
DEFAULT_MAX_CELLS = 200_000


def attribute_cut_points(attribute: str,
                         constraints: Sequence[ViewConstraint]) -> List[int]:
    """Collect the interval boundaries that the CCs impose on one attribute."""
    points: set = set()
    for constraint in constraints:
        for conjunct in constraint.predicate.conjuncts:
            restriction = conjunct.restriction(attribute)
            if restriction is None:
                continue
            points.update(restriction.boundaries())
    return sorted(points)


def grid_intervals(attributes: Sequence[str], domains: Mapping[str, Interval],
                   constraints: Sequence[ViewConstraint]) -> Dict[str, List[Interval]]:
    """Intervalise every attribute's domain at the CC constants."""
    out: Dict[str, List[Interval]] = {}
    for attribute in attributes:
        domain = domains[attribute]
        cuts = attribute_cut_points(attribute, constraints)
        out[attribute] = elementary_segments(domain, cuts)
    return out


def grid_cell_count(attributes: Sequence[str], domains: Mapping[str, Interval],
                    constraints: Sequence[ViewConstraint]) -> int:
    """Number of grid cells (LP variables) without materialising them."""
    intervals = grid_intervals(attributes, domains, constraints)
    count = 1
    for attribute in attributes:
        count *= len(intervals[attribute])
    return count


def grid_partition(attributes: Sequence[str], domains: Mapping[str, Interval],
                   constraints: Sequence[ViewConstraint],
                   max_cells: int = DEFAULT_MAX_CELLS) -> List[Box]:
    """Materialise the grid cells as boxes.

    Raises
    ------
    LPTooLargeError
        When the number of cells exceeds ``max_cells`` — modelling the
        behaviour where the DataSynth formulation cannot be handled by the
        solver.
    """
    if not attributes:
        raise PartitionError("sub-view must have at least one attribute")
    count = grid_cell_count(attributes, domains, constraints)
    if count > max_cells:
        raise LPTooLargeError(
            f"grid partitioning would create {count} cells"
            f" (limit {max_cells}); the LP is too large to materialise"
        )
    intervals = grid_intervals(attributes, domains, constraints)
    cells: List[Dict[str, Interval]] = [{}]
    for attribute in attributes:
        cells = [dict(cell, **{attribute: piece})
                 for cell in cells for piece in intervals[attribute]]
    return [Box(cell) for cell in cells]
