"""Region partitioning (the paper's core contribution, Section 4).

Two equivalent implementations are provided:

* :func:`valid_partition` and :func:`optimal_partition_paper` follow the
  pseudo-code of Algorithms 2 and 1 literally (dimension-by-dimension
  refinement followed by label coarsening).  They are easy to audit against
  the paper and are used as a reference in the property-based tests.
* :func:`optimal_partition` is the production implementation: it processes
  one cardinality constraint at a time, keeping the running partition grouped
  by label, which avoids materialising the intermediate per-dimension grid
  while producing exactly the same set of labelled regions (the quotient of
  the domain by the equivalence relation ``R_C`` of Definition 4.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PartitionError
from repro.partition.box import Box, conjunct_boxes, domain_box
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import Interval
from repro.views.preprocess import ViewConstraint


@dataclass
class Region:
    """A region of the optimal partition: the set of boxes whose points all
    satisfy exactly the constraints in ``label``."""

    label: FrozenSet[int]
    boxes: List[Box]

    def volume(self) -> int:
        """Number of integer points covered by the region."""
        return sum(box.volume() for box in self.boxes)

    def representative(self) -> Dict[str, int]:
        """A representative point of the region (lower-left corner of its
        first box); used when instantiating summaries."""
        if not self.boxes:
            raise PartitionError("region has no boxes")
        return self.boxes[0].corner()

    def satisfies(self, constraint_index: int) -> bool:
        """``True`` when the region's points satisfy the given constraint."""
        return constraint_index in self.label


# ---------------------------------------------------------------------- #
# production implementation
# ---------------------------------------------------------------------- #
def optimal_partition(attributes: Sequence[str], domains: Mapping[str, Interval],
                      constraints: Sequence[ViewConstraint],
                      constraint_indices: Optional[Sequence[int]] = None) -> List[Region]:
    """Compute the optimal (minimum-region) partition of a sub-view domain.

    Parameters
    ----------
    attributes:
        The sub-view's attributes.
    domains:
        Domain interval per attribute.
    constraints:
        The view constraints within the sub-view's scope.
    constraint_indices:
        Labels to use for each constraint (defaults to ``0..len-1``); the
        LP formulator passes the view-level constraint indices so that labels
        are comparable across sub-views.

    Returns
    -------
    list[Region]
        One region per distinct constraint-satisfaction label with non-empty
        extent.  Unsatisfiable or always-true constraints are handled
        uniformly (a constraint that is true everywhere simply appears in
        every label).
    """
    if not attributes:
        raise PartitionError("sub-view must have at least one attribute")
    indices = list(constraint_indices) if constraint_indices is not None else list(
        range(len(constraints))
    )
    if len(indices) != len(constraints):
        raise PartitionError("constraint_indices must match constraints")

    universe = domain_box(attributes, domains)
    regions: Dict[FrozenSet[int], List[Box]] = {frozenset(): [universe]}

    for constraint, label_index in zip(constraints, indices):
        predicate = constraint.predicate
        if predicate.is_true:
            regions = {label | {label_index}: boxes for label, boxes in regions.items()}
            continue
        atomic = _predicate_boxes(predicate, universe)
        if not atomic:
            continue
        next_regions: Dict[FrozenSet[int], List[Box]] = defaultdict(list)
        for label, boxes in regions.items():
            inside_label = label | {label_index}
            for box in boxes:
                inside, outside = _split_box(box, atomic)
                if inside:
                    next_regions[inside_label].extend(inside)
                if outside:
                    next_regions[label].extend(outside)
        regions = dict(next_regions)

    return [Region(label=label, boxes=boxes) for label, boxes in sorted(
        regions.items(), key=lambda kv: sorted(kv[0])
    )]


def _predicate_boxes(predicate: DNFPredicate, universe: Box) -> List[Box]:
    """Decompose a DNF predicate (clipped to the universe) into disjoint
    boxes by subtracting earlier conjuncts from later ones."""
    covered: List[Box] = []
    for conjunct in predicate.conjuncts:
        pieces = conjunct_boxes(conjunct, universe)
        for piece in pieces:
            remaining = [piece]
            for existing in covered:
                next_remaining: List[Box] = []
                for part in remaining:
                    overlap = part.intersect(existing)
                    if overlap is None:
                        next_remaining.append(part)
                    else:
                        next_remaining.extend(part.subtract(overlap))
                remaining = next_remaining
                if not remaining:
                    break
            covered.extend(remaining)
    return covered


def _split_box(box: Box, atomic: Sequence[Box]) -> Tuple[List[Box], List[Box]]:
    """Split ``box`` into the parts inside / outside the union of the
    (disjoint) ``atomic`` boxes."""
    inside: List[Box] = []
    outside = [box]
    for piece in atomic:
        next_outside: List[Box] = []
        for part in outside:
            overlap = part.intersect(piece)
            if overlap is None:
                next_outside.append(part)
                continue
            inside.append(overlap)
            next_outside.extend(part.subtract(overlap))
        outside = next_outside
        if not outside:
            break
    return inside, outside


# ---------------------------------------------------------------------- #
# literal paper algorithms (reference implementation)
# ---------------------------------------------------------------------- #
def valid_partition(attributes: Sequence[str], domains: Mapping[str, Interval],
                    sub_constraints: Sequence[Conjunct]) -> List[Box]:
    """Algorithm 2 (Valid-Partition): refine the domain dimension by
    dimension so that no sub-constraint splits any block."""
    universe = domain_box(attributes, domains)
    blocks: List[Box] = [universe]
    for attribute in attributes:
        current = blocks
        for conjunct in sub_constraints:
            restriction = conjunct.restriction(attribute)
            if restriction is None:
                continue
            refined: List[Box] = []
            for block in current:
                interval = block.interval(attribute)
                clipped = restriction.intersect_interval(interval)
                if clipped.is_empty or clipped.width == interval.width:
                    refined.append(block)
                    continue
                cut_points = [p for p in clipped.boundaries()
                              if interval.lo < p < interval.hi]
                refined.extend(block.split_along(attribute, cut_points))
            current = refined
        blocks = current
    return blocks


def optimal_partition_paper(attributes: Sequence[str], domains: Mapping[str, Interval],
                            constraints: Sequence[ViewConstraint],
                            constraint_indices: Optional[Sequence[int]] = None,
                            ) -> List[Region]:
    """Algorithm 1 (Optimal-Partition): build a valid partition for the
    sub-constraints, label each block with the set of constraints it
    satisfies, then merge blocks with equal labels."""
    indices = list(constraint_indices) if constraint_indices is not None else list(
        range(len(constraints))
    )
    sub_constraints: List[Conjunct] = []
    for constraint in constraints:
        sub_constraints.extend(constraint.predicate.conjuncts)

    blocks = valid_partition(attributes, domains, sub_constraints)

    grouped: Dict[FrozenSet[int], List[Box]] = defaultdict(list)
    for block in blocks:
        label = frozenset(
            idx for constraint, idx in zip(constraints, indices)
            if block.satisfies_predicate(constraint.predicate)
        )
        grouped[label].append(block)
    return [Region(label=label, boxes=boxes) for label, boxes in sorted(
        grouped.items(), key=lambda kv: sorted(kv[0])
    )]


def region_count(regions: Sequence[Region]) -> int:
    """Number of LP variables implied by a region partition (one per region,
    before consistency refinement)."""
    return len(regions)
