"""Signature-based region partitioning.

:func:`repro.partition.region.optimal_partition` manipulates explicit box
geometry, which is ideal for auditing the algorithm against the paper but
becomes expensive when a sub-view has many attributes and many overlapping
constraints.  This module computes the very same set of LP variables — one
per distinct (constraint-satisfaction label, shared-attribute cell) pair with
non-empty extent — using a per-dimension dynamic programme over *elementary
segments*:

1. every attribute's domain is cut at the constants of the in-scope
   constraints (and at the shared-attribute boundaries used for consistency),
2. each segment gets a bitmask recording which sub-constraints (conjuncts) it
   satisfies along that attribute,
3. a sweep over the attributes intersects the bitmasks, merging states that
   have become indistinguishable, so the running state count never exceeds
   the number of distinct final variables.

The result carries a representative elementary cell per variable, which is
all the summary generator needs (value instantiation uses the cell corner and
alignment uses the shared-cell position).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import PartitionBudgetError, PartitionError
from repro.partition.box import Box
from repro.partition.consistency import RefinedVariable
from repro.predicates.interval import Interval, IntervalSet, elementary_segments
from repro.views.preprocess import ViewConstraint


def partition_variables(attributes: Sequence[str], domains: Mapping[str, Interval],
                        constraints: Sequence[ViewConstraint],
                        constraint_indices: Sequence[int],
                        shared_segments: Mapping[str, List[Interval]],
                        max_states: Optional[int] = None,
                        ) -> List[RefinedVariable]:
    """Build the LP variables of one sub-view.

    Parameters
    ----------
    attributes:
        The sub-view's attributes.
    domains:
        Domain interval per attribute.
    constraints / constraint_indices:
        The view constraints within the sub-view's scope and their view-level
        indices (used as labels).
    shared_segments:
        Elementary segments per shared attribute (attributes shared with
        other sub-views); variables are refined so that each projects into a
        single segment of every shared attribute, which is what the
        consistency constraints and the alignment step require.
    max_states:
        Optional abort threshold: when the sweep's running state count
        exceeds it, :class:`~repro.errors.PartitionBudgetError` is raised so
        the caller can retry with a coarser shared-attribute refinement
        instead of paying for an oversized partition.

    Returns
    -------
    list[RefinedVariable]
        One variable per distinct (label, shared-cell) combination, each with
        a single representative elementary box.
    """
    if not attributes:
        raise PartitionError("sub-view must have at least one attribute")
    if len(constraints) != len(constraint_indices):
        raise PartitionError("constraint_indices must match constraints")

    # ------------------------------------------------------------------ #
    # collect conjuncts; always-true constraints hold everywhere
    # ------------------------------------------------------------------ #
    conjuncts: List[Tuple[int, "object"]] = []   # (position, Conjunct)
    conjunct_owner: List[int] = []               # constraint position per conjunct
    always_true: Set[int] = set()
    for position, constraint in enumerate(constraints):
        if constraint.predicate.is_true:
            always_true.add(position)
            continue
        for conjunct in constraint.predicate.conjuncts:
            conjuncts.append((len(conjuncts), conjunct))
            conjunct_owner.append(position)
    num_conjuncts = len(conjuncts)
    full_mask = (1 << num_conjuncts) - 1 if num_conjuncts else 0

    # ------------------------------------------------------------------ #
    # per-attribute segments and their conjunct-satisfaction masks
    # ------------------------------------------------------------------ #
    per_attribute: List[Tuple[str, List[Tuple[Interval, int, Optional[int]]]]] = []
    for attribute in attributes:
        domain = domains[attribute]
        cuts: Set[int] = set()
        for _, conjunct in conjuncts:
            restriction = conjunct.restriction(attribute)
            if restriction is not None:
                cuts.update(restriction.boundaries())
        shared = shared_segments.get(attribute)
        if shared is not None:
            for segment in shared:
                cuts.add(segment.lo)
                cuts.add(segment.hi)
        segments = elementary_segments(domain, sorted(cuts))

        annotated: List[Tuple[Interval, int, Optional[int]]] = []
        for segment in segments:
            mask = 0
            for bit, (_, conjunct) in enumerate(conjuncts):
                restriction = conjunct.restriction(attribute)
                if restriction is None or restriction.covers(segment):
                    mask |= 1 << bit
            cell = _locate_cell(segment, shared) if shared is not None else None
            annotated.append((segment, mask, cell))
        per_attribute.append((attribute, annotated))

    # ------------------------------------------------------------------ #
    # dimension-by-dimension sweep with state merging
    # ------------------------------------------------------------------ #
    # state key: (conjunct mask, shared-cell assignments so far)
    # state value: representative segment per processed attribute
    states: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], Dict[str, Interval]] = {
        (full_mask, ()): {}
    }
    for attribute, annotated in per_attribute:
        next_states: Dict[Tuple[int, Tuple[Tuple[str, int], ...]], Dict[str, Interval]] = {}
        for (mask, cells), representative in states.items():
            for segment, segment_mask, cell in annotated:
                new_mask = mask & segment_mask
                new_cells = cells + (((attribute, cell),) if cell is not None else ())
                key = (new_mask, new_cells)
                if key in next_states:
                    continue
                extended = dict(representative)
                extended[attribute] = segment
                next_states[key] = extended
                if max_states is not None and len(next_states) > max_states:
                    raise PartitionBudgetError(
                        f"partitioning exceeded {max_states} states while processing"
                        f" attribute {attribute!r}"
                    )
        states = next_states

    # ------------------------------------------------------------------ #
    # convert states to variables, merging states with equal labels
    # ------------------------------------------------------------------ #
    variables: Dict[Tuple[FrozenSet[int], Tuple[Tuple[str, int], ...]], Dict[str, Interval]] = {}
    for (mask, cells), representative in states.items():
        satisfied: Set[int] = set(always_true)
        for bit, owner in enumerate(conjunct_owner):
            if mask & (1 << bit):
                satisfied.add(owner)
        label = frozenset(constraint_indices[p] for p in satisfied)
        key = (label, cells)
        if key not in variables:
            variables[key] = representative

    out = [
        RefinedVariable(label=label, boxes=[Box(representative)], shared_cell=cells)
        for (label, cells), representative in variables.items()
    ]
    out.sort(key=lambda v: (sorted(v.label), v.shared_cell))
    return out


def count_partition_variables(attributes: Sequence[str], domains: Mapping[str, Interval],
                              constraints: Sequence[ViewConstraint],
                              constraint_indices: Sequence[int],
                              shared_segments: Mapping[str, List[Interval]]) -> int:
    """Number of variables :func:`partition_variables` would produce."""
    return len(partition_variables(attributes, domains, constraints,
                                   constraint_indices, shared_segments))


def shared_segments_from_constraints(attribute: str, domain: Interval,
                                     constraints: Sequence[ViewConstraint],
                                     ) -> List[Interval]:
    """Elementary segments of ``attribute`` induced by the constants of the
    given constraints (the granularity needed for consistency/alignment)."""
    cuts: Set[int] = set()
    for constraint in constraints:
        for conjunct in constraint.predicate.conjuncts:
            restriction = conjunct.restriction(attribute)
            if restriction is not None:
                cuts.update(restriction.boundaries())
    return elementary_segments(domain, sorted(cuts))


def _locate_cell(segment: Interval, shared: Sequence[Interval]) -> int:
    for index, cell in enumerate(shared):
        if cell.lo <= segment.lo and segment.hi <= cell.hi:
            return index
    raise PartitionError(
        f"segment {segment!r} does not fit inside any shared elementary segment"
    )
