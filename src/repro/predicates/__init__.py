"""Predicate algebra: intervals, conjuncts and DNF predicates."""

from repro.predicates.conjunct import Conjunct, box_overlaps, box_satisfies
from repro.predicates.dnf import DNFPredicate, and_, col, or_
from repro.predicates.interval import Interval, IntervalSet, elementary_segments

__all__ = [
    "Interval",
    "IntervalSet",
    "elementary_segments",
    "Conjunct",
    "box_satisfies",
    "box_overlaps",
    "DNFPredicate",
    "col",
    "and_",
    "or_",
]
