"""Conjunctive predicates over integer attributes.

A :class:`Conjunct` is the "sub-constraint" of Section 4.2 of the paper: a
conjunction of per-attribute constraints, each of which restricts the values
one attribute may take.  Attributes that are not mentioned are unconstrained
("true" in the paper's terminology).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import PredicateError
from repro.predicates.interval import Interval, IntervalSet


class Conjunct:
    """A conjunction of per-attribute interval constraints.

    Parameters
    ----------
    constraints:
        Mapping from attribute name to the :class:`IntervalSet` of allowed
        values.  An attribute mapped to an empty set makes the whole conjunct
        unsatisfiable; such conjuncts are permitted but evaluate to ``False``
        everywhere.
    """

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Mapping[str, IntervalSet] | None = None) -> None:
        items = dict(constraints or {})
        for attr, values in items.items():
            if not isinstance(values, IntervalSet):
                raise PredicateError(
                    f"constraint on {attr!r} must be an IntervalSet, got {type(values)!r}"
                )
        self._constraints: Dict[str, IntervalSet] = items

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def true(cls) -> "Conjunct":
        """Return the always-true conjunct (no attribute constrained)."""
        return cls({})

    @classmethod
    def from_range(cls, attribute: str, lo: int, hi: int) -> "Conjunct":
        """Return the conjunct ``lo <= attribute < hi``."""
        return cls({attribute: IntervalSet.single(lo, hi)})

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def constraints(self) -> Dict[str, IntervalSet]:
        """Copy of the per-attribute constraints."""
        return dict(self._constraints)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """The attributes mentioned by the conjunct, sorted by name."""
        return tuple(sorted(self._constraints))

    @property
    def is_true(self) -> bool:
        """``True`` when no attribute is constrained."""
        return not self._constraints

    @property
    def is_unsatisfiable(self) -> bool:
        """``True`` when some attribute is constrained to the empty set."""
        return any(values.is_empty for values in self._constraints.values())

    def restriction(self, attribute: str) -> Optional[IntervalSet]:
        """Return this conjunct's restriction to ``attribute`` (``C^i`` in
        Definition 4.5), or ``None`` when the attribute is unconstrained."""
        return self._constraints.get(attribute)

    def evaluate(self, row: Mapping[str, int]) -> bool:
        """Return ``True`` if ``row`` (attribute -> value) satisfies the
        conjunct.  Attributes missing from the row are treated as failing."""
        for attr, values in self._constraints.items():
            value = row.get(attr)
            if value is None or not values.contains(value):
                return False
        return True

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def conjoin(self, other: "Conjunct") -> "Conjunct":
        """Return the conjunction of the two conjuncts."""
        merged = dict(self._constraints)
        for attr, values in other._constraints.items():
            if attr in merged:
                merged[attr] = merged[attr].intersect(values)
            else:
                merged[attr] = values
        return Conjunct(merged)

    def with_constraint(self, attribute: str, values: IntervalSet) -> "Conjunct":
        """Return a copy with an added/intersected per-attribute constraint."""
        return self.conjoin(Conjunct({attribute: values}))

    def rename(self, mapping: Mapping[str, str]) -> "Conjunct":
        """Return a copy with attributes renamed via ``mapping``.

        Attributes absent from the mapping keep their original names.
        """
        return Conjunct(
            {mapping.get(attr, attr): values for attr, values in self._constraints.items()}
        )

    def project(self, attributes: Iterable[str]) -> "Conjunct":
        """Return the restriction of the conjunct to the given attributes."""
        keep = set(attributes)
        return Conjunct(
            {attr: values for attr, values in self._constraints.items() if attr in keep}
        )

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunct):
            return NotImplemented
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._constraints.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_true:
            return "Conjunct(TRUE)"
        parts = [f"{attr} in {values!r}" for attr, values in sorted(self._constraints.items())]
        return "Conjunct(" + " AND ".join(parts) + ")"


def box_satisfies(conjunct: Conjunct, box: Mapping[str, Interval]) -> bool:
    """Return ``True`` if *every* point of the axis-aligned ``box`` satisfies
    ``conjunct``.  Attributes of the conjunct missing from the box are treated
    as unconstrained in the box (the box spans their whole domain), in which
    case the box can only satisfy the conjunct if the constraint is absent.
    """
    for attr, values in conjunct.constraints.items():
        interval = box.get(attr)
        if interval is None:
            return False
        if not values.covers(interval):
            return False
    return True


def box_overlaps(conjunct: Conjunct, box: Mapping[str, Interval]) -> bool:
    """Return ``True`` if *some* point of ``box`` satisfies ``conjunct``."""
    for attr, values in conjunct.constraints.items():
        interval = box.get(attr)
        if interval is None:
            continue
        if not values.overlaps(interval):
            return False
    return True
