"""Disjunctive-normal-form predicates.

The paper assumes every filter predicate appearing in a cardinality
constraint is in DNF (Section 4.1): a disjunction of conjuncts, where each
conjunct is a conjunction of per-attribute interval constraints.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.errors import PredicateError
from repro.predicates.conjunct import Conjunct
from repro.predicates.interval import IntervalSet


class DNFPredicate:
    """A predicate in disjunctive normal form (an OR of :class:`Conjunct`).

    The always-true predicate is represented by a single true conjunct; the
    always-false predicate by an empty list of conjuncts.
    """

    __slots__ = ("_conjuncts",)

    def __init__(self, conjuncts: Iterable[Conjunct] = ()) -> None:
        items = tuple(conjuncts)
        for c in items:
            if not isinstance(c, Conjunct):
                raise PredicateError(f"expected Conjunct, got {type(c)!r}")
        self._conjuncts: Tuple[Conjunct, ...] = items

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def true(cls) -> "DNFPredicate":
        """Return the always-true predicate."""
        return cls((Conjunct.true(),))

    @classmethod
    def false(cls) -> "DNFPredicate":
        """Return the always-false predicate."""
        return cls(())

    @classmethod
    def of(cls, *conjuncts: Conjunct) -> "DNFPredicate":
        """Return the disjunction of the given conjuncts."""
        return cls(conjuncts)

    @classmethod
    def from_range(cls, attribute: str, lo: int, hi: int) -> "DNFPredicate":
        """Return the single-range predicate ``lo <= attribute < hi``."""
        return cls((Conjunct.from_range(attribute, lo, hi),))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def conjuncts(self) -> Tuple[Conjunct, ...]:
        """The conjuncts (sub-constraints) of the predicate."""
        return self._conjuncts

    @property
    def is_true(self) -> bool:
        """``True`` if some conjunct is unconditionally true."""
        return any(c.is_true for c in self._conjuncts)

    @property
    def is_false(self) -> bool:
        """``True`` when the predicate has no satisfiable conjunct."""
        return all(c.is_unsatisfiable for c in self._conjuncts) or not self._conjuncts

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes mentioned anywhere in the predicate, sorted."""
        names = set()
        for c in self._conjuncts:
            names.update(c.attributes)
        return tuple(sorted(names))

    def evaluate(self, row: Mapping[str, int]) -> bool:
        """Return ``True`` if ``row`` satisfies at least one conjunct."""
        return any(c.evaluate(row) for c in self._conjuncts)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def disjoin(self, other: "DNFPredicate") -> "DNFPredicate":
        """Return the OR of the two predicates."""
        return DNFPredicate(self._conjuncts + other._conjuncts)

    def conjoin(self, other: "DNFPredicate") -> "DNFPredicate":
        """Return the AND of the two predicates (distributed back to DNF)."""
        if self.is_true:
            return other
        if other.is_true:
            return self
        out: List[Conjunct] = []
        for a in self._conjuncts:
            for b in other._conjuncts:
                combined = a.conjoin(b)
                if not combined.is_unsatisfiable:
                    out.append(combined)
        return DNFPredicate(out)

    def rename(self, mapping: Mapping[str, str]) -> "DNFPredicate":
        """Return a copy with attribute names rewritten via ``mapping``."""
        return DNFPredicate(tuple(c.rename(mapping) for c in self._conjuncts))

    def project(self, attributes: Iterable[str]) -> "DNFPredicate":
        """Return the predicate restricted to the given attributes."""
        keep = tuple(attributes)
        return DNFPredicate(tuple(c.project(keep) for c in self._conjuncts))

    # ------------------------------------------------------------------ #
    # dunder plumbing
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNFPredicate):
            return NotImplemented
        return self._conjuncts == other._conjuncts

    def __hash__(self) -> int:
        return hash(self._conjuncts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._conjuncts:
            return "DNFPredicate(FALSE)"
        return "DNFPredicate(" + " OR ".join(repr(c) for c in self._conjuncts) + ")"


# ---------------------------------------------------------------------- #
# small builder DSL
# ---------------------------------------------------------------------- #
class col:
    """Tiny builder for per-attribute constraints used by tests and examples.

    Examples
    --------
    >>> (col("age") < 40).attributes
    ('age',)
    >>> pred = (col("age").between(20, 60)) & (col("salary") < 60000)
    """

    # A very large sentinel standing in for "unbounded"; attribute domains in
    # this library are always finite so predicates get clipped to the domain
    # during partitioning anyway.
    UNBOUNDED = 2**62

    def __init__(self, name: str) -> None:
        self.name = name

    def __lt__(self, value: int) -> DNFPredicate:
        return DNFPredicate.of(
            Conjunct({self.name: IntervalSet.single(-self.UNBOUNDED, value)})
        )

    def __le__(self, value: int) -> DNFPredicate:
        return DNFPredicate.of(
            Conjunct({self.name: IntervalSet.single(-self.UNBOUNDED, value + 1)})
        )

    def __ge__(self, value: int) -> DNFPredicate:
        return DNFPredicate.of(
            Conjunct({self.name: IntervalSet.single(value, self.UNBOUNDED)})
        )

    def __gt__(self, value: int) -> DNFPredicate:
        return DNFPredicate.of(
            Conjunct({self.name: IntervalSet.single(value + 1, self.UNBOUNDED)})
        )

    def __eq__(self, value: object) -> DNFPredicate:  # type: ignore[override]
        if not isinstance(value, int):
            raise PredicateError("equality predicates require an integer constant")
        return DNFPredicate.of(Conjunct({self.name: IntervalSet.point(value)}))

    def __hash__(self) -> int:  # keep hashable despite overriding __eq__
        return hash(self.name)

    def between(self, lo: int, hi: int) -> DNFPredicate:
        """Return the half-open range predicate ``lo <= attr < hi``."""
        return DNFPredicate.from_range(self.name, lo, hi)

    def isin(self, values: Sequence[int]) -> DNFPredicate:
        """Return the membership predicate ``attr IN values``."""
        sets = IntervalSet(tuple(IntervalSet.point(v).intervals[0] for v in values))
        return DNFPredicate.of(Conjunct({self.name: sets}))


def and_(*predicates: DNFPredicate) -> DNFPredicate:
    """Return the conjunction of several DNF predicates."""
    out = DNFPredicate.true()
    for p in predicates:
        out = out.conjoin(p)
    return out


def or_(*predicates: DNFPredicate) -> DNFPredicate:
    """Return the disjunction of several DNF predicates."""
    out = DNFPredicate.false()
    for p in predicates:
        out = out.disjoin(p)
    return out
