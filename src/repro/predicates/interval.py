"""Half-open integer intervals and unions of intervals.

The anonymizer described in the paper (Section 3.1) maps all client values to
integers, so every attribute domain in this library is an integer interval
``[lo, hi)`` and every per-attribute predicate is a union of such intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PredicateError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open integer interval ``[lo, hi)``.

    The interval contains all integers ``v`` with ``lo <= v < hi``.  Empty
    intervals (``hi <= lo``) are rejected at construction time; use
    :data:`None` or an empty :class:`IntervalSet` to represent emptiness.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise PredicateError(f"empty interval [{self.lo}, {self.hi})")

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.hi - self.lo

    @property
    def width(self) -> int:
        """Number of integer points contained in the interval."""
        return self.hi - self.lo

    def contains(self, value: int) -> bool:
        """Return ``True`` if ``value`` lies inside the interval."""
        return self.lo <= value < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` is fully contained in this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` if the two intervals share at least one point."""
        return self.lo < other.hi and other.lo < self.hi

    # ------------------------------------------------------------------ #
    # set operations
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Return the intersection interval, or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if hi <= lo:
            return None
        return Interval(lo, hi)

    def subtract(self, other: "Interval") -> List["Interval"]:
        """Return the parts of this interval not covered by ``other``."""
        pieces: List[Interval] = []
        if other.lo > self.lo:
            hi = min(self.hi, other.lo)
            if hi > self.lo:
                pieces.append(Interval(self.lo, hi))
        if other.hi < self.hi:
            lo = max(self.lo, other.hi)
            if lo < self.hi:
                pieces.append(Interval(lo, self.hi))
        if not other.overlaps(self):
            return [self]
        return pieces

    def split_at(self, points: Iterable[int]) -> List["Interval"]:
        """Split the interval at every point in ``points`` that falls strictly
        inside it, returning contiguous pieces in ascending order."""
        cuts = sorted({p for p in points if self.lo < p < self.hi})
        pieces: List[Interval] = []
        lo = self.lo
        for p in cuts:
            pieces.append(Interval(lo, p))
            lo = p
        pieces.append(Interval(lo, self.hi))
        return pieces

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi})"


class IntervalSet:
    """An immutable union of disjoint, sorted half-open intervals.

    This is the canonical representation of a per-attribute predicate such as
    ``20 <= A < 60`` (one interval) or ``A < 10 OR A >= 90`` (two intervals).
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: Tuple[Interval, ...] = tuple(_normalize(intervals))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "IntervalSet":
        """Return the empty set of values."""
        return cls(())

    @classmethod
    def single(cls, lo: int, hi: int) -> "IntervalSet":
        """Return the set containing the single interval ``[lo, hi)``."""
        return cls((Interval(lo, hi),))

    @classmethod
    def point(cls, value: int) -> "IntervalSet":
        """Return the set containing exactly ``value``."""
        return cls((Interval(value, value + 1),))

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The disjoint intervals making up the set, in ascending order."""
        return self._intervals

    @property
    def is_empty(self) -> bool:
        """Return ``True`` when the set contains no value."""
        return not self._intervals

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    @property
    def width(self) -> int:
        """Total number of integer points contained in the set."""
        return sum(iv.width for iv in self._intervals)

    def contains(self, value: int) -> bool:
        """Return ``True`` if ``value`` is a member of the set."""
        return any(iv.contains(value) for iv in self._intervals)

    def covers(self, interval: Interval) -> bool:
        """Return ``True`` if ``interval`` is fully contained in the set."""
        return any(iv.contains_interval(interval) for iv in self._intervals)

    def overlaps(self, interval: Interval) -> bool:
        """Return ``True`` if the set shares at least one point with
        ``interval``."""
        return any(iv.overlaps(interval) for iv in self._intervals)

    def boundaries(self) -> List[int]:
        """Return all interval endpoints, useful as grid split points."""
        points: List[int] = []
        for iv in self._intervals:
            points.append(iv.lo)
            points.append(iv.hi)
        return points

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Return the union of the two sets."""
        return IntervalSet(self._intervals + other._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        """Return the intersection of the two sets."""
        out: List[Interval] = []
        for a in self._intervals:
            for b in other._intervals:
                cap = a.intersect(b)
                if cap is not None:
                    out.append(cap)
        return IntervalSet(out)

    def intersect_interval(self, interval: Interval) -> "IntervalSet":
        """Return the intersection of the set with a single interval."""
        out = []
        for a in self._intervals:
            cap = a.intersect(interval)
            if cap is not None:
                out.append(cap)
        return IntervalSet(out)

    def complement(self, domain: Interval) -> "IntervalSet":
        """Return ``domain`` minus this set."""
        remaining = [domain]
        for iv in self._intervals:
            next_remaining: List[Interval] = []
            for piece in remaining:
                next_remaining.extend(piece.subtract(iv))
            remaining = next_remaining
        return IntervalSet(remaining)

    def minimum(self) -> int:
        """Return the smallest value contained in the set."""
        if self.is_empty:
            raise PredicateError("empty interval set has no minimum")
        return self._intervals[0].lo

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = " U ".join(repr(iv) for iv in self._intervals)
        return f"IntervalSet({body or 'empty'})"


def _normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort and merge overlapping/adjacent intervals."""
    ordered = sorted(intervals, key=lambda iv: (iv.lo, iv.hi))
    merged: List[Interval] = []
    for iv in ordered:
        if merged and iv.lo <= merged[-1].hi:
            last = merged[-1]
            if iv.hi > last.hi:
                merged[-1] = Interval(last.lo, iv.hi)
        else:
            merged.append(iv)
    return merged


def elementary_segments(domain: Interval, points: Sequence[int]) -> List[Interval]:
    """Partition ``domain`` into contiguous segments at the given cut points.

    Only points strictly inside the domain introduce a cut; the result always
    covers the whole domain.  This is the "intervalisation" primitive used by
    both grid partitioning and consistency refinement.
    """
    return domain.split_at(points)
