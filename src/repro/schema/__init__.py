"""Relational schema model (relations, attributes, keys, dependency graph)."""

from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema

__all__ = ["Attribute", "ForeignKey", "Relation", "Schema"]
