"""Relational schema model: attributes, keys and relations.

The data-regeneration problem (Section 2) assumes a warehouse-style schema:
every relation has a single integer (surrogate) primary key, joins are always
between a primary key and a foreign key, and filter predicates only mention
non-key attributes.  The classes here encode exactly that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.predicates.interval import Interval


@dataclass(frozen=True)
class Attribute:
    """A non-key attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name.  Names must be unique *across the whole schema*
        (TPC-DS / IMDB style ``ss_``, ``i_``, ... prefixes) so that borrowed
        view columns keep their identity; :class:`Schema` validates this.
    domain:
        Integer domain ``[lo, hi)`` of the attribute (all values are integers,
        as produced by the paper's anonymizer).
    """

    name: str
    domain: Interval

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key reference from one relation to another's primary key.

    Parameters
    ----------
    column:
        Name of the FK column in the referencing relation.
    target:
        Name of the referenced relation (whose primary key is the target).
    """

    column: str
    target: str

    def __post_init__(self) -> None:
        if not self.column or not self.target:
            raise SchemaError("foreign key column and target must be non-empty")


@dataclass
class Relation:
    """A relation (table) with a surrogate primary key, non-key attributes and
    foreign keys.

    Parameters
    ----------
    name:
        Relation name, unique within the schema.
    primary_key:
        Name of the integer surrogate primary-key column.
    attributes:
        The non-key attributes (filterable columns).
    foreign_keys:
        PK-FK references to other relations.
    row_count:
        Nominal number of rows in the client relation (used as the implicit
        ``|R| = k`` cardinality constraint and by the benchmark data
        generators).  May be overridden by scale factors.
    """

    name: str
    primary_key: str
    attributes: List[Attribute] = field(default_factory=list)
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    row_count: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.primary_key:
            raise SchemaError(f"relation {self.name!r} must declare a primary key")
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"relation {self.name!r} has duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)
        if self.primary_key in seen:
            raise SchemaError(
                f"relation {self.name!r} lists its primary key among non-key attributes"
            )
        fk_columns = set()
        for fk in self.foreign_keys:
            if fk.column in fk_columns:
                raise SchemaError(
                    f"relation {self.name!r} has duplicate foreign-key column {fk.column!r}"
                )
            fk_columns.add(fk.column)
        if self.row_count < 0:
            raise SchemaError(f"relation {self.name!r} has negative row_count")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the non-key attributes, in declaration order."""
        return tuple(a.name for a in self.attributes)

    @property
    def foreign_key_columns(self) -> Tuple[str, ...]:
        """Names of the FK columns, in declaration order."""
        return tuple(fk.column for fk in self.foreign_keys)

    @property
    def all_columns(self) -> Tuple[str, ...]:
        """All column names: primary key, foreign keys, then attributes."""
        return (self.primary_key,) + self.foreign_key_columns + self.attribute_names

    def attribute(self, name: str) -> Attribute:
        """Look up a non-key attribute by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        """Return ``True`` if the relation declares the non-key attribute."""
        return any(attr.name == name for attr in self.attributes)

    def foreign_key_to(self, target: str) -> Optional[ForeignKey]:
        """Return the FK referencing ``target``, or ``None`` if absent."""
        for fk in self.foreign_keys:
            if fk.target == target:
                return fk
        return None

    def scaled(self, factor: float) -> "Relation":
        """Return a copy of the relation with its row count scaled."""
        return Relation(
            name=self.name,
            primary_key=self.primary_key,
            attributes=list(self.attributes),
            foreign_keys=list(self.foreign_keys),
            row_count=max(1, int(round(self.row_count * factor))) if self.row_count else 0,
        )
