"""The :class:`Schema`: a validated collection of relations plus the
referential dependency graph used throughout the pipeline."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import SchemaError
from repro.schema.relation import Attribute, ForeignKey, Relation


class Schema:
    """A relational schema with PK-FK referential constraints.

    The schema validates the structural assumptions the paper makes
    (Section 2.2 and Section 5.3):

    * every relation has a surrogate integer primary key,
    * joins are only PK-FK, so dependencies form a directed graph with an edge
      ``u -> v`` when relation ``u`` has a foreign key into ``v``,
    * the dependency graph must be a DAG (Hydra supports DAGs; DataSynth in
      the paper only supports trees, which we model as a flag),
    * attribute names are globally unique so that borrowed view columns keep
      their identity, and
    * each relation references any other relation through at most one foreign
      key (single role per dimension), which keeps the view-column naming of
      Section 3.2 unambiguous.
    """

    def __init__(self, relations: Iterable[Relation], name: str = "schema") -> None:
        self.name = name
        self._relations: Dict[str, Relation] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation {rel.name!r}")
            self._relations[rel.name] = rel
        self._validate()
        self._graph = self._build_dependency_graph()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        seen_attrs: Dict[str, str] = {}
        for rel in self._relations.values():
            for attr in rel.attributes:
                owner = seen_attrs.get(attr.name)
                if owner is not None:
                    raise SchemaError(
                        f"attribute {attr.name!r} appears in both {owner!r} and"
                        f" {rel.name!r}; attribute names must be globally unique"
                    )
                seen_attrs[attr.name] = rel.name
            targets = set()
            for fk in rel.foreign_keys:
                if fk.target not in self._relations:
                    raise SchemaError(
                        f"relation {rel.name!r} references unknown relation {fk.target!r}"
                    )
                if fk.target == rel.name:
                    raise SchemaError(f"relation {rel.name!r} references itself")
                if fk.target in targets:
                    raise SchemaError(
                        f"relation {rel.name!r} references {fk.target!r} through more than"
                        " one foreign key; only a single role per dimension is supported"
                    )
                targets.add(fk.target)

    def _build_dependency_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self._relations)
        for rel in self._relations.values():
            for fk in rel.foreign_keys:
                graph.add_edge(rel.name, fk.target)
        if not nx.is_directed_acyclic_graph(graph):
            raise SchemaError("referential dependency graph must be a DAG")
        return graph

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def relations(self) -> Tuple[Relation, ...]:
        """All relations, in insertion order."""
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Names of all relations, in insertion order."""
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def attribute_owner(self, attribute: str) -> Relation:
        """Return the relation that declares the given non-key attribute."""
        for rel in self._relations.values():
            if rel.has_attribute(attribute):
                return rel
        raise SchemaError(f"no relation declares attribute {attribute!r}")

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute anywhere in the schema."""
        return self.attribute_owner(name).attribute(name)

    # ------------------------------------------------------------------ #
    # dependency graph helpers
    # ------------------------------------------------------------------ #
    @property
    def dependency_graph(self) -> "nx.DiGraph":
        """Directed graph with an edge ``u -> v`` when ``u`` has an FK to
        ``v`` ("u depends on v", footnote 2 of the paper)."""
        return self._graph.copy()

    def is_tree_structured(self) -> bool:
        """Return ``True`` when the dependency graph (viewed as undirected)
        is a forest.  DataSynth only supports this case."""
        undirected = self._graph.to_undirected()
        return nx.is_forest(undirected) if undirected.number_of_edges() else True

    def topological_order(self) -> List[str]:
        """Relations ordered so that every relation appears *after* all the
        relations it depends on (referenced relations first)."""
        order = list(nx.topological_sort(self._graph))
        order.reverse()
        return order

    def referenced_closure(self, relation: str) -> List[str]:
        """All relations reachable from ``relation`` through FKs (directly or
        transitively), excluding ``relation`` itself, in topological order
        (closest dependencies last)."""
        rel = self.relation(relation)
        reachable = nx.descendants(self._graph, rel.name)
        order = [r for r in self.topological_order() if r in reachable]
        return order

    def dependents_of(self, relation: str) -> List[str]:
        """Relations that reference ``relation`` directly through an FK."""
        return sorted(self._graph.predecessors(relation))

    def join_path(self, source: str, target: str) -> Optional[List[str]]:
        """Return the FK path from ``source`` to ``target`` (list of relation
        names, inclusive), or ``None`` when ``target`` is not reachable."""
        if source == target:
            return [source]
        try:
            return nx.shortest_path(self._graph, source, target)
        except nx.NetworkXNoPath:
            return None

    # ------------------------------------------------------------------ #
    # scaling
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "Schema":
        """Return a copy of the schema with all row counts scaled by
        ``factor`` (dimension-style relations are scaled too; callers who want
        fixed dimensions should scale per-relation instead)."""
        return Schema([rel.scaled(factor) for rel in self._relations.values()], name=self.name)

    def total_rows(self) -> int:
        """Total nominal number of rows across all relations."""
        return sum(rel.row_count for rel in self._relations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.name!r}, {len(self._relations)} relations)"
