"""HTTP serving front-end: :class:`RegenerationServer` over a real socket.

The package splits into the server proper (:mod:`repro.server.http`) and
the wire formats it speaks (:mod:`repro.server.wire`): the JSON workload
encoding whose round trip is fingerprint-exact, and the per-row NDJSON
tuple encoding whose sharded concatenation is byte-identical to the whole
relation.  ``python -m repro serve --listen HOST:PORT`` is the CLI door.
"""

from repro.server.http import (
    NDJSON_CONTENT_TYPE,
    PARENT_SPAN_HEADER,
    TRACE_HEADER,
    RegenerationServer,
)
from repro.server.wire import (
    WIRE_VERSION,
    RequestTooLargeError,
    WireFormatError,
    constraint_set_from_wire,
    constraint_set_to_wire,
    ndjson_batch,
    parse_shard,
    shard_bounds,
)

__all__ = [
    "NDJSON_CONTENT_TYPE",
    "PARENT_SPAN_HEADER",
    "TRACE_HEADER",
    "RegenerationServer",
    "WIRE_VERSION",
    "RequestTooLargeError",
    "WireFormatError",
    "constraint_set_from_wire",
    "constraint_set_to_wire",
    "ndjson_batch",
    "parse_shard",
    "shard_bounds",
]
