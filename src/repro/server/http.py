"""The HTTP serving front-end: a network face for :class:`RegenerationService`.

``RegenerationServer`` wraps a running service in a threaded stdlib HTTP
server (one thread per connection, no third-party dependencies) so the
paper's regenerate-on-demand loop works across a socket:

* ``POST /v1/summarize`` — submit a workload (the wire form of
  :mod:`repro.server.wire`); warm fingerprints resolve without touching the
  LP solver, cold ones go through the service's weighted-fair admission
  queue under the request's ``tenant`` tag.  Admission rejection maps to
  **429**, a draining/closed service to **503**, and a cold request against
  a ``require_warm`` server to **409** — the HTTP spelling of the CLI's
  ``--require-warm`` exit 3;
* ``POST /v1/resummarize`` — incremental re-summarization of a drifted
  workload against a warm base epoch (``base_fingerprint`` + the wire
  workload): unchanged constraint-graph components reuse their cached
  solutions verbatim and only the delta is solved before stitching.  An
  unknown base fingerprint answers **404** (resummarize never cold-builds
  the base) and a ``require_warm`` server answers **409** for a cold
  *drifted* epoch — the same contracts as ``/v1/stream`` and
  ``/v1/summarize``;
* ``GET /v1/stream/<fingerprint>/<relation>`` — the regenerated relation as
  chunked NDJSON, one JSON object per tuple, produced batch-at-a-time by
  :meth:`TupleGenerator.stream_range` so the tuple stream is never
  materialised on either side of the socket.  ``?shard=i/n`` hands parallel
  clients disjoint contiguous row ranges whose concatenation is
  byte-identical to the whole relation;
* ``GET /v1/stats`` — the service's :class:`ServiceStats` as JSON;
* ``GET /metrics`` — the service registry in Prometheus text exposition
  format;
* ``GET /healthz`` — liveness (503 while draining).

Requests may carry an ``X-Repro-Trace-Id`` header: the server then records
its ``server.request`` span — and every service/store/solver span nested
under it — in that trace, so one trace id follows a request across the
socket.  The response echoes the header either way.

Shutdown is graceful: :meth:`RegenerationServer.shutdown` stops accepting
connections, refuses new work with 503, waits for in-flight requests —
streams included — to drain, and only then closes the listener; stream
cursors release their store pins on the way out (abrupt client disconnects
release them immediately, and the service's idle-cursor reaper backstops
readers that die without closing the socket).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    SummaryError,
)
from repro.obs.logging import get_logger
from repro.obs.trace import Span, get_tracer
from repro.server.wire import (
    RequestTooLargeError,
    WireFormatError,
    constraint_set_from_wire,
    ndjson_batch,
    parse_shard,
    shard_bounds,
)
from repro.service.service import DEFAULT_TENANT, RegenerationService
from repro.tuplegen.generator import DEFAULT_BATCH_SIZE

logger = get_logger("server")

#: Request/response header carrying the trace id across the socket.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Optional request header naming the client's span the server span nests under.
PARENT_SPAN_HEADER = "X-Repro-Parent-Span"

#: NDJSON content type of the streaming endpoint.
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: Default cap on request bodies (64 MiB — a wire workload is a few KB;
#: anything near this bound is a client bug).  Override per server with the
#: ``max_request_bytes`` knob; oversized bodies answer **413**.
MAX_BODY_BYTES = 64 * 1024 * 1024


def read_json_body(handler: BaseHTTPRequestHandler,
                   max_bytes: int = MAX_BODY_BYTES) -> Dict[str, object]:
    """Read one JSON object request body, bounded by ``max_bytes``.

    Shared by the serving front-end and the cluster's ``StoreServer`` so
    every repro HTTP endpoint enforces the same body cap.  Raises
    :class:`RequestTooLargeError` (→ 413) when the declared length exceeds
    the cap and :class:`WireFormatError` (→ 400) on everything else.  The
    read itself is bounded by the *declared* length, so a client that lies
    short simply fails JSON parsing — it can never make the server buffer
    more than ``max_bytes``.
    """
    length_header = handler.headers.get("Content-Length")
    if length_header is None:
        raise WireFormatError("a Content-Length request body is required")
    try:
        length = int(length_header)
    except ValueError:
        raise WireFormatError("bad Content-Length") from None
    if length < 0:
        raise WireFormatError("bad Content-Length")
    if length > max_bytes:
        raise RequestTooLargeError(
            f"request body of {length} bytes exceeds the"
            f" {max_bytes}-byte limit")
    raw = handler.rfile.read(length)
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"request body is not JSON: {error}") from None
    if not isinstance(body, dict):
        raise WireFormatError("request body must be a JSON object")
    return body


class _HTTPServer(ThreadingHTTPServer):
    """One thread per connection; never blocks process exit on stragglers."""

    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True
    app: "RegenerationServer"


class RegenerationServer:
    """Threaded HTTP front-end over one :class:`RegenerationService`.

    Parameters
    ----------
    service:
        The (already constructed) serving back-end.  Its metrics registry
        gains the ``repro_server_*`` series, so one ``/metrics`` scrape
        covers server, service, store and solver.
    host / port:
        Listen address; ``port=0`` binds an ephemeral port (the bound
        address is available as :attr:`host` / :attr:`port` after
        construction — the socket is bound in ``__init__``).
    max_connections:
        Cap on concurrently *in-flight* requests (streams count for their
        whole duration); excess requests are refused with 503 +
        ``Retry-After`` rather than queued behind a stuck stream.
    request_timeout:
        Socket timeout per connection and the default wait bound of
        blocking ``summarize`` requests (a slower build answers 504; the
        build itself keeps running and a retry picks it up via
        single-flight dedup).
    require_warm:
        Refuse cold workloads with 409 instead of running the pipeline —
        the HTTP spelling of ``serve --require-warm``.
    default_batch_size:
        Tuples per streamed NDJSON chunk when the client does not pass
        ``?batch_size=``.
    max_request_bytes:
        Cap on request body size; an oversized submit answers **413**
        (counted in ``repro_server_requests_total{code="413"}``) instead of
        ballooning server memory.
    """

    def __init__(self, service: RegenerationService,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_connections: int = 64,
                 request_timeout: float = 30.0,
                 require_warm: bool = False,
                 default_batch_size: int = DEFAULT_BATCH_SIZE,
                 max_request_bytes: int = MAX_BODY_BYTES) -> None:
        if max_connections < 1:
            raise ServiceError("max_connections must be at least 1")
        if request_timeout <= 0:
            raise ServiceError("request_timeout must be positive")
        if default_batch_size < 1:
            raise ServiceError("default_batch_size must be at least 1")
        if max_request_bytes < 1:
            raise ServiceError("max_request_bytes must be at least 1")
        self.service = service
        self.require_warm = require_warm
        self.request_timeout = float(request_timeout)
        self.max_connections = max_connections
        self.default_batch_size = default_batch_size
        self.max_request_bytes = max_request_bytes
        self._state = threading.Condition()
        self._active = 0
        self._draining = False
        self._closed = False
        self._serve_thread: Optional[threading.Thread] = None
        registry = service.registry
        self._requests_total = registry.counter(
            "repro_server_requests_total",
            "HTTP requests served, by endpoint and status code",
            labelnames=("endpoint", "code"))
        self._g_active = registry.gauge(
            "repro_server_active_requests",
            "HTTP requests currently in flight (streams for their whole"
            " duration)")
        self._h_request = registry.histogram(
            "repro_server_request_seconds",
            "HTTP request latency, first byte in to last byte out",
            labelnames=("endpoint",))
        self._rows_streamed = registry.counter(
            "repro_server_rows_streamed_total",
            "Tuples written to NDJSON stream responses")
        self._bytes_sent = registry.counter(
            "repro_server_bytes_sent_total",
            "Response body bytes written (JSON and NDJSON)")
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.app = self
        self.host, self.port = self._httpd.server_address[:2]
        logger.info("http server bound on %s:%d (require_warm=%s)",
                    self.host, self.port, require_warm)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        """``True`` once shutdown started (new work is refused with 503)."""
        with self._state:
            return self._draining

    def active_requests(self) -> int:
        """Requests currently in flight."""
        with self._state:
            return self._active

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` is called (blocking)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "RegenerationServer":
        """Serve on a background thread; returns ``self``."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-http", daemon=True)
            self._serve_thread.start()
        return self

    def shutdown(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful stop: refuse new work, drain in-flight requests, close.

        In-flight streams run to completion (bounded by ``drain_timeout``,
        defaulting to ``request_timeout``); their cursors release the store
        pins on the way out.  Idempotent and callable from any thread except
        one inside :meth:`serve_forever`.
        """
        with self._state:
            if self._closed:
                return
            self._draining = True
        self._httpd.shutdown()  # stop accepting; returns when the loop exits
        limit = self.request_timeout if drain_timeout is None else drain_timeout
        with self._state:
            drained = self._state.wait_for(lambda: self._active == 0, limit)
            self._closed = True
        if not drained:  # pragma: no cover - only on pathological streams
            logger.warning("shutdown proceeded with %d requests still in"
                           " flight after %.1fs drain", self.active_requests(),
                           limit)
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        logger.info("http server on %s:%d closed", self.host, self.port)

    def __enter__(self) -> "RegenerationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    # request accounting (called from handler threads)
    # ------------------------------------------------------------------ #
    def _begin_request(self) -> str:
        """Admit one request: ``"ok"``, ``"draining"`` or ``"busy"``."""
        with self._state:
            if self._draining:
                return "draining"
            if self._active >= self.max_connections:
                return "busy"
            self._active += 1
        self._g_active.inc()
        return "ok"

    def _end_request(self) -> None:
        with self._state:
            self._active -= 1
            self._state.notify_all()
        self._g_active.dec()

    def _observe(self, endpoint: str, code: int, seconds: float) -> None:
        self._requests_total.labels(endpoint=endpoint, code=str(code)).inc()
        self._h_request.labels(endpoint=endpoint).observe(seconds)


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the owning server's service."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # Set per-connection from the server knob before the socket is used.
    def setup(self) -> None:
        self.timeout = self.server.app.request_timeout
        super().setup()
        self._trace_id: Optional[str] = None

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #
    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def _route(self, method: str) -> None:
        app: RegenerationServer = self.server.app
        parsed = urlsplit(self.path)
        segments = [unquote(s) for s in parsed.path.split("/") if s]
        query = parse_qs(parsed.query)
        endpoint, handler = self._dispatch(method, segments)
        started = time.perf_counter()

        # `/healthz` stays ungated so load balancers see "draining" rather
        # than a connection refusal mid-shutdown.
        if endpoint != "healthz":
            admission = app._begin_request()
            if admission != "ok":
                code = 503
                body = {"error": "server is draining" if admission == "draining"
                        else f"{app.max_connections} requests already in"
                        " flight", "status": admission}
                self._send_json(code, body, extra=(("Retry-After", "1"),))
                app._observe(endpoint, code, time.perf_counter() - started)
                return
        try:
            code = self._traced(endpoint, handler, segments, query)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            # The client went away mid-response; nothing left to send.
            code = 499
            self.close_connection = True
            logger.info("client disconnected during %s", endpoint)
        except Exception as error:  # last-resort 500, connection kept sane
            code = 500
            self.close_connection = True
            logger.error("unhandled error serving %s: %s", endpoint, error)
        finally:
            if endpoint != "healthz":
                app._end_request()
            app._observe(endpoint, code, time.perf_counter() - started)

    def _dispatch(self, method: str, segments: list) -> Tuple[str, object]:
        if segments == ["healthz"] and method == "GET":
            return "healthz", self._do_healthz
        if segments == ["metrics"] and method == "GET":
            return "metrics", self._do_metrics
        if segments == ["v1", "stats"] and method == "GET":
            return "stats", self._do_stats
        if segments == ["v1", "summarize"] and method == "POST":
            return "summarize", self._do_summarize
        if segments == ["v1", "resummarize"] and method == "POST":
            return "resummarize", self._do_resummarize
        if (len(segments) == 4 and segments[:2] == ["v1", "stream"]
                and method == "GET"):
            return "stream", self._do_stream
        return "unknown", self._do_unknown

    def _traced(self, endpoint: str, handler: object, segments: list,
                query: Dict[str, list]) -> int:
        """Run one routed request inside a ``server.request`` span.

        A client-supplied ``X-Repro-Trace-Id`` forces recording into that
        trace (the client already made the sampling decision); otherwise the
        process tracer's own sampling applies.  The span is *current* while
        the handler runs, so service/store/solver spans nest under it and
        the whole tree shares the client's trace id.
        """
        tracer = get_tracer()
        incoming = self.headers.get(TRACE_HEADER)
        if incoming:
            span = Span(tracer, "server.request", incoming,
                        self.headers.get(PARENT_SPAN_HEADER) or None,
                        {"endpoint": endpoint, "method": self.command})
            self._trace_id = incoming
        else:
            span = tracer.start_span("server.request", endpoint=endpoint,
                                     method=self.command)
            self._trace_id = getattr(span, "trace_id", None)
        with span:
            code = handler(segments, query)
            span.set_attribute("status", code)
        return code

    # -------------------------------------------------------------- #
    # response plumbing
    # -------------------------------------------------------------- #
    def _std_headers(self) -> None:
        if self._trace_id:
            self.send_header(TRACE_HEADER, self._trace_id)

    def _send_json(self, code: int, payload: Dict[str, object],
                   extra: Iterable[Tuple[str, str]] = ()) -> int:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra:
            self.send_header(name, value)
        self._std_headers()
        self.end_headers()
        self.wfile.write(body)
        self.server.app._bytes_sent.inc(len(body))
        return code

    def _send_text(self, code: int, text: str, content_type: str) -> int:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self._std_headers()
        self.end_headers()
        self.wfile.write(body)
        self.server.app._bytes_sent.inc(len(body))
        return code

    def _error(self, code: int, message: str, **extra_fields: object) -> int:
        payload: Dict[str, object] = {"error": message}
        payload.update(extra_fields)
        headers = (("Retry-After", "1"),) if code in (429, 503) else ()
        return self._send_json(code, payload, extra=headers)

    # -------------------------------------------------------------- #
    # endpoints
    # -------------------------------------------------------------- #
    def _do_unknown(self, segments: list, query: Dict[str, list]) -> int:
        return self._error(404, f"no route for {self.command}"
                                f" /{'/'.join(segments)}")

    def _do_healthz(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        draining = app.draining
        payload = {
            "status": "draining" if draining else "ok",
            "engine": app.service.engine,
            "active_requests": app.active_requests(),
            "require_warm": app.require_warm,
        }
        return self._send_json(503 if draining else 200, payload)

    def _do_metrics(self, segments: list, query: Dict[str, list]) -> int:
        text = self.server.app.service.registry.to_prometheus()
        return self._send_text(200, text, "text/plain; version=0.0.4")

    def _do_stats(self, segments: list, query: Dict[str, list]) -> int:
        stats = self.server.app.service.service_stats()
        payload = {
            "counters": stats.counters,
            "queue_depth": stats.queue_depth,
            "tenants": [asdict(row) for row in stats.tenants],
        }
        return self._send_json(200, payload)

    def _do_summarize(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        service = app.service
        try:
            body = self._read_json_body()
            workload = constraint_set_from_wire(body.get("workload"))
            relations = body.get("relations")
            if relations is not None and not isinstance(relations, list):
                raise WireFormatError("'relations' must be a list or null")
            tenant = str(body.get("tenant", DEFAULT_TENANT))
            wait = bool(body.get("wait", True))
            timeout = float(body.get("timeout", app.request_timeout))
        except RequestTooLargeError as error:
            return self._error(413, str(error))
        except WireFormatError as error:
            return self._error(400, str(error))
        fingerprint = service.fingerprint(workload, relations)
        if app.require_warm and not service.store.has_summary(fingerprint):
            return self._error(
                409, "fingerprint is not in the store and this server refuses"
                     " to run the pipeline (require_warm)",
                fingerprint=fingerprint)
        try:
            ticket = service.submit(workload, relations, tenant=tenant)
        except ServiceOverloadedError as error:
            return self._error(429, str(error), fingerprint=fingerprint)
        except ServiceClosedError as error:
            return self._error(503, str(error), fingerprint=fingerprint)
        payload: Dict[str, object] = {
            "fingerprint": ticket.fingerprint,
            "warm": ticket.warm,
            "tenant": ticket.tenant,
            "engine": service.engine,
        }
        if not wait:
            payload["status"] = "done" if ticket.done() else "building"
            return self._send_json(202, payload)
        try:
            summary = ticket.result(timeout)
        except ServiceError as error:
            return self._error(504, f"build did not finish within {timeout}s:"
                                    f" {error}", fingerprint=fingerprint)
        except ReproError as error:
            return self._error(500, f"{type(error).__name__}: {error}",
                               fingerprint=fingerprint)
        payload.update({
            "status": "done",
            "total_rows": int(summary.total_rows()),
            "summary_bytes": int(summary.nbytes()),
            "relations": {name: int(rel.total_rows())
                          for name, rel in sorted(summary.relations.items())},
        })
        return self._send_json(200, payload)

    def _do_resummarize(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        service = app.service
        try:
            body = self._read_json_body()
            base_fingerprint = body.get("base_fingerprint")
            if not isinstance(base_fingerprint, str) or not base_fingerprint:
                raise WireFormatError(
                    "'base_fingerprint' must be a non-empty string")
            workload = constraint_set_from_wire(body.get("workload"))
            relations = body.get("relations")
            if relations is not None and not isinstance(relations, list):
                raise WireFormatError("'relations' must be a list or null")
            tenant = str(body.get("tenant", DEFAULT_TENANT))
            timeout = float(body.get("timeout", app.request_timeout))
        except RequestTooLargeError as error:
            return self._error(413, str(error))
        except WireFormatError as error:
            return self._error(400, str(error))
        if not service.store.has_summary(base_fingerprint):
            # Resummarize never cold-builds the base epoch: an unknown base
            # is the same 404 an unknown stream fingerprint answers.
            return self._error(404, "base fingerprint is not in the store;"
                                    " summarize the base workload first",
                               base_fingerprint=base_fingerprint)
        fingerprint = service.fingerprint(workload, relations)
        if app.require_warm and not service.store.has_summary(fingerprint):
            return self._error(
                409, "drifted fingerprint is not in the store and this server"
                     " refuses to run the pipeline (require_warm)",
                fingerprint=fingerprint, base_fingerprint=base_fingerprint)
        try:
            report = service.resummarize(base_fingerprint, workload,
                                         relations, tenant=tenant,
                                         timeout=timeout)
        except ServiceOverloadedError as error:
            return self._error(429, str(error), fingerprint=fingerprint)
        except ServiceClosedError as error:
            return self._error(503, str(error), fingerprint=fingerprint)
        except ServiceError as error:
            return self._error(504, f"build did not finish within {timeout}s:"
                                    f" {error}", fingerprint=fingerprint)
        except ReproError as error:
            return self._error(500, f"{type(error).__name__}: {error}",
                               fingerprint=fingerprint)
        summary = report.summary
        payload: Dict[str, object] = {
            "status": "done",
            "fingerprint": report.fingerprint,
            "parent_fingerprint": report.parent_fingerprint,
            "warm": report.warm,
            "tenant": tenant,
            "engine": service.engine,
            "components_total": report.total_components,
            "components_reused": len(report.reused_components),
            "components_solved": len(report.solved_components),
            "components_retired": len(report.retired_components),
            "content_digest": summary.content_digest(),
            "total_rows": int(summary.total_rows()),
            "summary_bytes": int(summary.nbytes()),
            "relations": {name: int(rel.total_rows())
                          for name, rel in sorted(summary.relations.items())},
        }
        return self._send_json(200, payload)

    def _do_stream(self, segments: list, query: Dict[str, list]) -> int:
        app = self.server.app
        service = app.service
        fingerprint, relation = segments[2], segments[3]
        try:
            shard_index, shard_count = parse_shard(
                query.get("shard", ["1/1"])[0])
            batch_size = int(query.get("batch_size",
                                       [app.default_batch_size])[0])
            if batch_size < 1:
                raise WireFormatError("batch_size must be at least 1")
            tenant = query.get("tenant", [DEFAULT_TENANT])[0]
        except (WireFormatError, ValueError) as error:
            return self._error(400, str(error))
        try:
            total_rows = service.total_rows(fingerprint, relation)
            start_row, stop_row = shard_bounds(total_rows, shard_index,
                                               shard_count)
            cursor = service.stream(fingerprint, relation,
                                    batch_size=batch_size,
                                    start_row=start_row, stop_row=stop_row,
                                    tenant=tenant)
        except (SummaryError, ServiceError) as error:
            # Unknown fingerprint (store-only resolution) or unknown relation.
            return self._error(404, str(error), fingerprint=fingerprint,
                               relation=relation)
        shard_rows = max(0, (stop_row or 0) - start_row + 1)
        try:
            self.send_response(200)
            self.send_header("Content-Type", NDJSON_CONTENT_TYPE)
            self.send_header("Transfer-Encoding", "chunked")
            self.send_header("X-Repro-Total-Rows", str(total_rows))
            self.send_header("X-Repro-Shard-Rows", str(shard_rows))
            self.send_header("X-Repro-Shard",
                             f"{shard_index}/{shard_count}")
            self._std_headers()
            self.end_headers()
            sent = 0
            for batch in cursor:
                payload = ndjson_batch(batch)
                if payload:
                    self._write_chunk(payload)
                    sent += len(payload)
                    app._rows_streamed.inc(batch.num_rows)
            self.wfile.write(b"0\r\n\r\n")
            app._bytes_sent.inc(sent)
            return 200
        finally:
            # Exhausted cursors already released their pin; this covers the
            # disconnect/error paths (and is a no-op otherwise).
            cursor.close()

    # -------------------------------------------------------------- #
    # helpers
    # -------------------------------------------------------------- #
    def _write_chunk(self, payload: bytes) -> None:
        self.wfile.write(f"{len(payload):x}\r\n".encode("ascii"))
        self.wfile.write(payload)
        self.wfile.write(b"\r\n")

    def _read_json_body(self) -> Dict[str, object]:
        return read_json_body(self, self.server.app.max_request_bytes)
