"""Wire formats of the HTTP serving front-end.

Two encodings live here, both deliberately boring JSON so any HTTP client
(curl included) can speak them:

* **workload wire form** — a :class:`~repro.constraints.workload.ConstraintSet`
  as one JSON object (``constraint_set_to_wire`` /
  ``constraint_set_from_wire``).  The round trip is *fingerprint-exact*: a
  workload posted over the wire resolves to the same store fingerprint as the
  in-process original, so a cold HTTP client and a warm CLI process dedup
  onto the same summary.
* **NDJSON tuple batches** — :func:`ndjson_batch` renders one streamed
  :class:`~repro.engine.table.Table` batch as newline-delimited JSON rows,
  one object per tuple, keys in column order, compact separators.  The
  encoding is strictly *per-row*, so the concatenation of any sharding of a
  relation is byte-identical to the encoding of the materialised whole —
  the contract the protocol test suite locks down.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.engine.table import Table
from repro.errors import ServiceError
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import Interval, IntervalSet

#: Version tag of the workload wire form; bump on incompatible changes.
WIRE_VERSION = 1


class WireFormatError(ServiceError):
    """A request payload does not parse as the documented wire form."""


class RequestTooLargeError(WireFormatError):
    """A request body exceeds the server's ``max_request_bytes`` cap.

    Mapped to HTTP **413** (the other wire-format failures map to 400), so
    one oversized client can never balloon server memory."""


# ---------------------------------------------------------------------- #
# workload wire form
# ---------------------------------------------------------------------- #
def _predicate_to_wire(predicate: DNFPredicate) -> List[Dict[str, List[List[int]]]]:
    """A DNF predicate as a list of conjunct objects.

    Each conjunct maps attribute name to a list of ``[lo, hi)`` interval
    pairs; the always-true predicate is one empty conjunct object, the
    always-false predicate an empty list.
    """
    wire = []
    for conjunct in predicate.conjuncts:
        wire.append({
            attribute: [[interval.lo, interval.hi]
                        for interval in values.intervals]
            for attribute, values in conjunct.constraints.items()
        })
    return wire


def _predicate_from_wire(wire: object) -> DNFPredicate:
    if not isinstance(wire, list):
        raise WireFormatError("predicate must be a list of conjunct objects")
    conjuncts = []
    for entry in wire:
        if not isinstance(entry, Mapping):
            raise WireFormatError("each conjunct must be an object mapping"
                                  " attribute to [lo, hi) pairs")
        constraints: Dict[str, IntervalSet] = {}
        for attribute, pairs in entry.items():
            if not isinstance(pairs, list):
                raise WireFormatError(
                    f"attribute {attribute!r} must map to a list of"
                    " [lo, hi) pairs")
            try:
                intervals = [Interval(int(lo), int(hi)) for lo, hi in pairs]
            except (TypeError, ValueError) as error:
                raise WireFormatError(
                    f"bad interval list for attribute {attribute!r}: {error}"
                ) from None
            constraints[str(attribute)] = IntervalSet(intervals)
        conjuncts.append(Conjunct(constraints))
    return DNFPredicate(conjuncts)


def constraint_set_to_wire(ccs: ConstraintSet) -> Dict[str, object]:
    """Encode a constraint set as the JSON-serialisable wire object."""
    constraints = []
    for cc in ccs:
        entry: Dict[str, object] = {
            "relation": cc.relation,
            "predicate": _predicate_to_wire(cc.predicate),
            "cardinality": int(cc.cardinality),
        }
        if cc.joined_relations != (cc.relation,):
            entry["joined_relations"] = list(cc.joined_relations)
        if cc.query_id is not None:
            entry["query_id"] = cc.query_id
        constraints.append(entry)
    return {"version": WIRE_VERSION, "name": ccs.name,
            "constraints": constraints}


def constraint_set_from_wire(payload: object) -> ConstraintSet:
    """Decode the wire object back into a :class:`ConstraintSet`.

    Raises :class:`WireFormatError` (a :class:`~repro.errors.ServiceError`)
    on any shape violation, which the HTTP front-end maps to a 400.
    """
    if not isinstance(payload, Mapping):
        raise WireFormatError("workload must be a JSON object")
    version = payload.get("version", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported workload wire version {version!r};"
            f" this server speaks version {WIRE_VERSION}")
    entries = payload.get("constraints")
    if not isinstance(entries, list):
        raise WireFormatError("workload needs a 'constraints' list")
    ccs = ConstraintSet(name=str(payload.get("name", "wire-ccs")))
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise WireFormatError("each constraint must be a JSON object")
        try:
            relation = str(entry["relation"])
            cardinality = int(entry["cardinality"])
        except (KeyError, TypeError, ValueError) as error:
            raise WireFormatError(f"bad constraint entry: {error}") from None
        joined = entry.get("joined_relations")
        query_id = entry.get("query_id")
        ccs.add(CardinalityConstraint(
            relation=relation,
            predicate=_predicate_from_wire(entry.get("predicate", [])),
            cardinality=cardinality,
            joined_relations=tuple(str(r) for r in joined) if joined else (),
            query_id=str(query_id) if query_id is not None else None,
        ))
    return ccs


# ---------------------------------------------------------------------- #
# NDJSON tuple batches
# ---------------------------------------------------------------------- #
def ndjson_batch(table: Table) -> bytes:
    """One streamed batch as newline-delimited JSON rows (UTF-8 bytes).

    One object per tuple, keys in the table's column order, compact
    separators, ``\\n`` after every row.  Because the encoding never looks
    across row boundaries, concatenating the encodings of any contiguous
    sharding of a relation reproduces the encoding of the whole relation
    byte for byte.
    """
    names = table.column_names
    if table.num_rows == 0:
        return b""
    rows = zip(*(table.column(name).tolist() for name in names))
    lines = [json.dumps(dict(zip(names, row)), separators=(",", ":"))
             for row in rows]
    return ("\n".join(lines) + "\n").encode("utf-8")


def shard_bounds(total_rows: int, index: int, count: int) -> Tuple[int, Optional[int]]:
    """The 1-based inclusive row range of shard ``index`` of ``count``.

    Shards are contiguous, near-equal and cover ``1..total_rows`` exactly:
    concatenating shards ``1..count`` in order reproduces the full relation.
    ``index`` is 1-based (matching the ``?shard=i/n`` query form).
    """
    if count < 1 or not 1 <= index <= count:
        raise WireFormatError(
            f"bad shard {index}/{count}: want 1 <= index <= count")
    start = (index - 1) * total_rows // count + 1
    stop = index * total_rows // count
    return start, stop


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse the ``i/n`` shard query parameter into ``(index, count)``."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise WireFormatError(
            f"bad shard spec {spec!r}: want the form 'i/n'") from None
    if count < 1 or not 1 <= index <= count:
        raise WireFormatError(
            f"bad shard {spec!r}: want 1 <= i <= n")
    return index, count
