"""The regeneration service layer (serving-fleet scenario).

Hydra's database summaries are kilobyte-scale and *scale-free*: once built,
they can regenerate arbitrary data volumes on demand.  This package turns the
one-shot pipeline into a reusable serving system:

* :mod:`repro.service.fingerprint` — canonical content fingerprints of
  ``(schema, constraint set)`` pairs, stable under column / constraint
  reordering, used as the identity of a regeneration request;
* :mod:`repro.service.store` — :class:`SummaryStore`, content-addressed
  on-disk persistence for database summaries and LP component solutions with
  atomic writes and an LRU-bounded in-memory layer, shareable across worker
  processes;
* :mod:`repro.service.service` — :class:`RegenerationService`, a concurrent
  front-end (``submit``/``summarize``/``stream``/``stats``) that deduplicates
  identical in-flight requests, serves warm requests straight from the store
  without touching the LP solver, admits cold builds through a weighted-fair
  per-tenant queue (global ``max_pending`` plus ``max_pending_per_tenant``
  caps), optionally GCs the store from a background thread and routes cold
  builds through the :mod:`repro.api.backends` registry;
* :mod:`repro.service.cli` — deprecated alias of the unified
  ``python -m repro`` CLI (see :mod:`repro.cli`).
"""

from repro.service.fingerprint import (
    ManifestDiff,
    component_manifest,
    constraint_set_fingerprint,
    manifest_diff,
    manifest_fingerprint,
    schema_fingerprint,
    workload_fingerprint,
)
from repro.service.service import (
    RegenerationService,
    ResummarizeReport,
    ServiceStats,
    TenantStats,
    Ticket,
)
from repro.service.store import StoreSolutionCache, SummaryStore

__all__ = [
    "RegenerationService",
    "ResummarizeReport",
    "ServiceStats",
    "TenantStats",
    "Ticket",
    "SummaryStore",
    "StoreSolutionCache",
    "workload_fingerprint",
    "schema_fingerprint",
    "constraint_set_fingerprint",
    "component_manifest",
    "manifest_fingerprint",
    "manifest_diff",
    "ManifestDiff",
]
