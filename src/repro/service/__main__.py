"""Entry point: ``python -m repro.service <command> --store DIR ...``."""

import sys

from repro.service.cli import main

sys.exit(main())
