"""Command-line front-end for summary stores: ``python -m repro.service``.

Four commands over one ``--store`` directory:

* ``warm``    — build the TPC-DS-like benchmark workload's summary into the
  store (one process pays the LP solves);
* ``inspect`` — list stored summaries and store health;
* ``serve``   — regenerate a relation from the store in streamed batches
  (``--require-warm`` exits non-zero if the request was not already stored,
  which is how the CI smoke job asserts cross-process serving needs zero LP
  solves);
* ``stats``   — print the serving counters.

The benchmark environment is fully determined by ``--scale``, ``--queries``,
``--workload`` and the seeds, so a second process passing the same flags
recomputes the same workload fingerprint and hits the entries the first
process wrote.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.constraints.workload import ConstraintSet
from repro.hydra.pipeline import HydraConfig
from repro.schema.schema import Schema
from repro.service.service import RegenerationService
from repro.service.store import SummaryStore

#: ``serve --require-warm`` exit code when the store could not serve the
#: request without running the pipeline.
EXIT_NOT_WARM = 3


def _benchmark_request(args: argparse.Namespace) -> "tuple[Schema, ConstraintSet]":
    """Rebuild the deterministic benchmark environment named by the flags."""
    from repro.benchdata.datagen import generate_database
    from repro.benchdata.tpcds import complex_workload, simple_workload, tpcds_schema
    from repro.hydra.client import extract_constraints

    schema = tpcds_schema(scale_factor=args.scale)
    database = generate_database(schema, seed=args.datagen_seed)
    factory = complex_workload if args.workload == "complex" else simple_workload
    workload = factory(schema, num_queries=args.queries, seed=args.workload_seed)
    package = extract_constraints(database, workload)
    return schema, package.constraints


def _print_stats(service: RegenerationService) -> None:
    stats = service.stats()
    keys = ("requests", "hits", "misses", "inflight_dedup", "pipeline_runs",
            "batches_streamed", "solver_components_solved", "solver_cache_hits",
            "solver_cache_misses", "summaries", "components", "store_bytes",
            "corrupt_entries")
    print(" ".join(f"{key}={stats.get(key, 0)}" for key in keys))


def _cmd_warm(args: argparse.Namespace) -> int:
    schema, constraints = _benchmark_request(args)
    with RegenerationService(schema, store=args.store,
                             config=HydraConfig(workers=args.workers)) as service:
        ticket = service.submit(constraints)
        summary = ticket.result()
        print(f"fingerprint={ticket.fingerprint}")
        print(f"warm={ticket.warm} relations={len(summary.relations)}"
              f" total_rows={summary.total_rows()} summary_bytes={summary.nbytes()}")
        _print_stats(service)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = SummaryStore(args.store)
    entries = store.entries()
    print(f"store={args.store} format=1 summaries={len(entries)}"
          f" store_bytes={store.store_bytes()}")
    for entry in entries:
        fingerprint = entry.pop("fingerprint")
        detail = " ".join(f"{k}={v}" for k, v in sorted(entry.items()))
        print(f"  {fingerprint} {detail}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.fingerprint is not None:
        # Serving a stored fingerprint needs no client database or workload
        # re-derivation — only the schema shape.
        from repro.benchdata.tpcds import tpcds_schema

        schema, constraints = tpcds_schema(scale_factor=args.scale), None
    else:
        schema, constraints = _benchmark_request(args)
    with RegenerationService(schema, store=args.store,
                             config=HydraConfig(workers=args.workers)) as service:
        fingerprint = args.fingerprint or service.fingerprint(constraints)
        warm = service.store.has_summary(fingerprint)
        if not warm and (args.require_warm or constraints is None):
            print(f"fingerprint={fingerprint} is not in the store; refusing to"
                  " run the pipeline", file=sys.stderr)
            return EXIT_NOT_WARM
        request: "ConstraintSet | str" = fingerprint if warm else constraints
        rows = 0
        batches = 0
        for batch in service.stream(request, args.relation,
                                    batch_size=args.batch_size):
            rows += batch.num_rows
            batches += 1
            if args.max_batches is not None and batches >= args.max_batches:
                break
        print(f"fingerprint={fingerprint}")
        print(f"served relation={args.relation} batches={batches} rows={rows}"
              f" warm={warm}")
        _print_stats(service)
        if args.require_warm and service.stats()["pipeline_runs"] > 0:
            print("pipeline ran despite --require-warm", file=sys.stderr)
            return EXIT_NOT_WARM
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = SummaryStore(args.store)
    print(" ".join(f"{key}={value}" for key, value in sorted(store.counters().items())))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Warm, inspect and serve a Hydra summary store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, env: bool) -> None:
        p.add_argument("--store", required=True, help="store directory")
        if env:
            p.add_argument("--scale", type=float, default=0.0002,
                           help="TPC-DS scale factor of the client instance")
            p.add_argument("--queries", type=int, default=10,
                           help="number of workload queries")
            p.add_argument("--workload", choices=("simple", "complex"),
                           default="simple")
            p.add_argument("--workload-seed", type=int, default=3)
            p.add_argument("--datagen-seed", type=int, default=7)
            p.add_argument("--workers", type=int, default=2,
                           help="LP solver workers for cold builds")

    warm = sub.add_parser("warm", help="build the benchmark workload's summary")
    add_common(warm, env=True)
    warm.set_defaults(func=_cmd_warm)

    inspect = sub.add_parser("inspect", help="list stored summaries")
    add_common(inspect, env=False)
    inspect.set_defaults(func=_cmd_inspect)

    serve = sub.add_parser("serve", help="stream a relation from the store")
    add_common(serve, env=True)
    serve.add_argument("--relation", required=True)
    serve.add_argument("--fingerprint", default=None,
                       help="serve this stored fingerprint instead of"
                            " recomputing it from the benchmark flags")
    serve.add_argument("--batch-size", type=int, default=65_536)
    serve.add_argument("--max-batches", type=int, default=None)
    serve.add_argument("--require-warm", action="store_true",
                       help="exit non-zero instead of running the pipeline")
    serve.set_defaults(func=_cmd_serve)

    stats = sub.add_parser("stats", help="print store counters")
    add_common(stats, env=False)
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
