"""Deprecated alias: ``python -m repro.service`` → ``python -m repro``.

The store CLI moved to the unified :mod:`repro.cli` front-end built on the
:class:`repro.api.Session` facade.  This shim keeps the old entry point
working — it emits one :class:`DeprecationWarning`, maps the old command
names onto the new ones and delegates:

========== ======================
old        new
========== ======================
``warm``    ``summarize``
``serve``   ``serve``
``inspect`` ``stats --entries``
``stats``   ``stats``
========== ======================

All flags are unchanged (both parsers accept the same names), so existing
invocations keep their behaviour and exit codes — including ``serve
--require-warm`` exiting :data:`EXIT_NOT_WARM`.
"""

from __future__ import annotations

import sys
import warnings
from typing import List, Optional

from repro.cli import EXIT_NOT_WARM, main as _unified_main

__all__ = ["EXIT_NOT_WARM", "main"]

#: Old command → new command token(s).
_COMMAND_MAP = {
    "warm": ["summarize"],
    "inspect": ["stats", "--entries"],
    "serve": ["serve"],
    "stats": ["stats"],
}


def main(argv: Optional[List[str]] = None) -> int:
    """Delegate an old-style invocation to :func:`repro.cli.main`."""
    warnings.warn(
        "python -m repro.service is deprecated; use python -m repro"
        " (warm -> summarize, inspect -> stats --entries)",
        DeprecationWarning, stacklevel=2,
    )
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _COMMAND_MAP:
        argv = _COMMAND_MAP[argv[0]] + argv[1:]
    return _unified_main(argv)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
