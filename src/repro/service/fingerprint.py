"""Canonical fingerprints of regeneration requests.

A regeneration request is fully determined by the (anonymised) schema and the
client's cardinality constraints: two requests with the same fingerprint
produce the same database summary, so the fingerprint is the natural
content-address of the summary store and the dedup key of the serving
front-end.

The fingerprint must be *canonical*: semantically irrelevant presentation
details — attribute declaration order, constraint insertion order, the order
of a DNF predicate's conjuncts, constraint ``query_id`` provenance — must not
change it.  Everything here therefore serialises to a sorted, minimal JSON
form before hashing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.lp.decompose import decompose_model
from repro.lp.model import LPModel
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.schema.schema import Schema

#: Bump when the canonical form changes; part of every fingerprint so stores
#: written under an older canonicalisation never alias new requests.
FINGERPRINT_VERSION = 1


# ---------------------------------------------------------------------- #
# canonical forms
# ---------------------------------------------------------------------- #
def _conjunct_form(conjunct: Conjunct) -> List[object]:
    """Sorted ``[attribute, [[lo, hi], ...]]`` pairs of one conjunct."""
    return [
        [attr, [[interval.lo, interval.hi] for interval in values.intervals]]
        for attr, values in sorted(conjunct.constraints.items())
    ]


def _predicate_form(predicate: DNFPredicate) -> List[object]:
    """Canonical form of a DNF predicate.

    Disjunction is commutative, so the conjuncts are sorted by their own
    canonical serialisation.
    """
    forms = [_conjunct_form(c) for c in predicate.conjuncts]
    return sorted(forms, key=lambda form: json.dumps(form, separators=(",", ":")))


def _constraint_form(cc: CardinalityConstraint) -> List[object]:
    """Canonical form of one CC.

    ``query_id`` and ``joined_relations`` are provenance: after the
    preprocessor rewrites the CC onto its root relation's view, only the
    relation, the predicate and the cardinality shape the LP.
    """
    return [cc.relation, _predicate_form(cc.predicate), int(cc.cardinality)]


def _schema_form(schema: Schema) -> List[object]:
    """Canonical form of a schema: relations and attributes sorted by name."""
    relations = []
    for rel in sorted(schema.relations, key=lambda r: r.name):
        relations.append([
            rel.name,
            rel.primary_key,
            int(rel.row_count),
            [[a.name, a.domain.lo, a.domain.hi]
             for a in sorted(rel.attributes, key=lambda a: a.name)],
            sorted([fk.column, fk.target] for fk in rel.foreign_keys),
        ])
    return relations


def _digest(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
def schema_fingerprint(schema: Schema) -> str:
    """Content hash of a schema, stable under declaration order."""
    return _digest(["schema", FINGERPRINT_VERSION, _schema_form(schema)])


def constraint_set_fingerprint(ccs: ConstraintSet) -> str:
    """Content hash of a constraint set, stable under insertion order."""
    forms = sorted(
        (_constraint_form(cc) for cc in ccs),
        key=lambda form: json.dumps(form, separators=(",", ":")),
    )
    return _digest(["ccs", FINGERPRINT_VERSION, forms])


def workload_fingerprint(schema: Schema, ccs: ConstraintSet,
                         relations: Optional[Sequence[str]] = None,
                         profile: Optional[Sequence[object]] = None) -> str:
    """Fingerprint of a full regeneration request.

    Combines the schema, the constraint set and the (optional) subset of
    relations to regenerate — the exact inputs of
    :meth:`~repro.hydra.pipeline.Hydra.build_summary`.

    ``profile`` names the result-affecting pipeline configuration (strategy,
    integrality, size/time limits — *not* performance knobs like worker
    counts): a store shared between differently-configured pipelines must
    never serve one's summary as the other's.  Pipelines pass their own
    profile via :meth:`~repro.hydra.pipeline.Hydra.request_fingerprint`.
    """
    return _digest([
        "request",
        FINGERPRINT_VERSION,
        _schema_form(schema),
        sorted(
            (_constraint_form(cc) for cc in ccs),
            key=lambda form: json.dumps(form, separators=(",", ":")),
        ),
        sorted(relations) if relations is not None else None,
        list(profile) if profile is not None else None,
    ])


# ---------------------------------------------------------------------- #
# component manifests
# ---------------------------------------------------------------------- #
def component_manifest(models: Iterable[LPModel]) -> List[str]:
    """The structural *component manifest* of a set of view LPs.

    Decomposes every model into its independent constraint-graph components
    (:func:`repro.lp.decompose.decompose_model`) and returns the sorted set
    of canonical component keys.  The manifest sits alongside the workload
    fingerprint: the fingerprint identifies the whole request, the manifest
    identifies the request's units of incremental work.  Two workloads that
    share a manifest entry share that component's LP byte-for-byte, so its
    cached solution can be reused verbatim.
    """
    keys = set()
    for model in models:
        keys.update(component.key for component in decompose_model(model).components)
    return sorted(keys)


def manifest_fingerprint(manifest: Iterable[str]) -> str:
    """Content hash of a component manifest (order-insensitive)."""
    return _digest(["manifest", FINGERPRINT_VERSION, sorted(manifest)])


@dataclass(frozen=True)
class ManifestDiff:
    """Component-level delta between two workload epochs.

    ``reused`` are components present in both manifests — an incremental
    build serves them from the component-solution cache with zero solves.
    ``added`` exist only in the new epoch (they must be solved); ``retired``
    exist only in the base epoch (their solutions are simply not used).
    """

    reused: List[str]
    added: List[str]
    retired: List[str]

    @property
    def total(self) -> int:
        """Component count of the *new* epoch."""
        return len(self.reused) + len(self.added)


def manifest_diff(base: Iterable[str], new: Iterable[str]) -> ManifestDiff:
    """Diff two component manifests into reused/added/retired keys."""
    base_set = set(base)
    new_set = set(new)
    return ManifestDiff(
        reused=sorted(base_set & new_set),
        added=sorted(new_set - base_set),
        retired=sorted(base_set - new_set),
    )
