"""The concurrent regeneration serving front-end.

:class:`RegenerationService` sits in front of a pipeline backend (selected
by name from the :mod:`repro.api.backends` registry — Hydra by default) and
a :class:`~repro.service.store.SummaryStore` and turns one-shot summary
builds into a request/serve loop:

* ``submit(workload)`` returns a :class:`Ticket` immediately; identical
  requests already in flight are *single-flighted* — they attach to the
  running build instead of triggering a second pipeline run;
* warm requests (fingerprint already in the store) never touch the LP
  solver: the summary is read from the store's memory/disk layers;
* ``stream(...)`` hands out vectorised tuple batches for any relation of a
  regenerated database; many consumers can stream concurrently, each with an
  independent cursor, optionally over disjoint row shards;
* ``stats()`` exposes the serving counters (hits, misses, inflight dedups,
  pipeline runs, store bytes) the fleet scenario monitors.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.backends import create_backend
from repro.api.config import RegenConfig
from repro.constraints.workload import ConstraintSet
from repro.datasynth.pipeline import DataSynthConfig
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plan import AnnotatedQueryPlan
from repro.engine.table import Table
from repro.errors import ServiceError, ServiceOverloadedError
from repro.hydra.pipeline import HydraConfig
from repro.metrics.similarity import SimilarityReport, evaluate_with_executor
from repro.schema.schema import Schema
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary
from repro.tuplegen.generator import DEFAULT_BATCH_SIZE, TupleGenerator
from repro.workload.query import Workload


class _Flight:
    """One in-progress (or finished) summary build."""

    __slots__ = ("event", "summary", "error", "warm")

    def __init__(self, summary: Optional[DatabaseSummary] = None,
                 warm: bool = False) -> None:
        self.event = threading.Event()
        self.summary = summary
        self.error: Optional[BaseException] = None
        self.warm = warm
        if summary is not None:
            self.event.set()


class Ticket:
    """Handle for a submitted regeneration request."""

    def __init__(self, fingerprint: str, flight: _Flight) -> None:
        self.fingerprint = fingerprint
        self._flight = flight

    @property
    def warm(self) -> bool:
        """``True`` when the request was served from the store."""
        return self._flight.warm

    def done(self) -> bool:
        """``True`` once the summary is available (or the build failed)."""
        return self._flight.event.is_set()

    def result(self, timeout: Optional[float] = None) -> DatabaseSummary:
        """Block until the summary is ready and return it."""
        if not self._flight.event.wait(timeout):
            raise ServiceError(
                f"request {self.fingerprint[:12]} did not finish within {timeout}s"
            )
        if self._flight.error is not None:
            raise self._flight.error
        assert self._flight.summary is not None
        return self._flight.summary


class RegenerationService:
    """Concurrent serving front-end over a summary store.

    Parameters
    ----------
    schema:
        The (anonymised) client schema requests are validated against.
    store:
        A :class:`SummaryStore`, a directory path to open one at, or ``None``
        for an ephemeral memory-only store.
    config:
        A :class:`~repro.api.RegenConfig` (the canonical spelling), or a
        legacy :class:`HydraConfig` / :class:`DataSynthConfig`, which is
        lifted into the equivalent ``RegenConfig`` (same fingerprints).
    max_workers:
        Concurrent cold pipeline builds (warm requests and streaming never
        occupy a worker).
    engine:
        Name of the pipeline backend cold builds route through (anything in
        :func:`repro.api.available_backends`); defaults to the config's
        engine selection.
    max_pending:
        Backpressure: maximum number of cold builds queued or running at
        once.  Further cold submissions raise
        :class:`~repro.errors.ServiceOverloadedError` (warm requests and
        in-flight dedup are always admitted — they add no pipeline load).
        ``None`` disables the limit.
    """

    def __init__(self, schema: Schema,
                 store: Union[SummaryStore, str, Path, None] = None,
                 config: Union[RegenConfig, HydraConfig, DataSynthConfig, None] = None,
                 max_workers: int = 2,
                 engine: Optional[str] = None,
                 max_pending: Optional[int] = None) -> None:
        if max_workers < 1:
            raise ServiceError("RegenerationService needs at least one worker")
        if max_pending is not None and max_pending < 0:
            raise ServiceError("max_pending must be non-negative (or None)")
        self.schema = schema
        self.store = store if isinstance(store, SummaryStore) else SummaryStore(store)
        if config is None:
            self.config = RegenConfig()
        elif isinstance(config, RegenConfig):
            self.config = config
        elif isinstance(config, HydraConfig):
            self.config = RegenConfig.from_hydra_config(config)
        elif isinstance(config, DataSynthConfig):
            self.config = RegenConfig.from_datasynth_config(config)
        else:
            raise ServiceError(
                f"unsupported config type {type(config).__name__};"
                " pass a RegenConfig, HydraConfig or DataSynthConfig"
            )
        self.engine = engine or self.config.engine
        self.backend = create_backend(self.engine, schema, self.config, self.store)
        #: Back-compat alias: the wrapped engine object (a ``Hydra`` for the
        #: default backend — tests and tooling patch ``hydra.build_summary``).
        self.hydra = self.backend.pipeline
        self.max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="regen"
        )
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self._generators: Dict[Tuple[str, str], TupleGenerator] = {}
        self._counters = {
            "requests": 0,
            "hits": 0,            # served warm (store, no pipeline)
            "misses": 0,          # cold: triggered a pipeline run
            "inflight_dedup": 0,  # attached to an identical in-flight build
            "rejected_submissions": 0,  # max_pending backpressure rejections
            "pipeline_runs": 0,
            "batches_streamed": 0,
            # executor memory telemetry (regenerate-then-verify paths)
            "workloads_executed": 0,
            "verifications": 0,
            "executor_batches": 0,
            "executor_peak_batch_rows": 0,
        }

    # ------------------------------------------------------------------ #
    # request front-end
    # ------------------------------------------------------------------ #
    def fingerprint(self, workload: ConstraintSet,
                    relations: Optional[Sequence[str]] = None) -> str:
        """The content fingerprint this service assigns to a request.

        Delegates to the backend so the service's dedup/warm detection and
        the store entries the pipeline writes always agree (the fingerprint
        covers the engine and its result-affecting configuration, not just
        the workload).
        """
        return self.backend.fingerprint(workload, relations)

    def submit(self, workload: ConstraintSet,
               relations: Optional[Sequence[str]] = None) -> Ticket:
        """Submit a regeneration request; returns a ticket immediately.

        Warm requests resolve synchronously from the store.  Cold requests
        start one pipeline build on the worker pool; identical requests
        submitted while it runs share that single build (single-flight).
        When ``max_pending`` cold builds are already queued or running, a
        further cold submission raises
        :class:`~repro.errors.ServiceOverloadedError` instead of growing the
        backlog without bound.
        """
        fingerprint = self.fingerprint(workload, relations)
        with self._lock:
            self._counters["requests"] += 1
            flight = self._flights.get(fingerprint)
            if flight is not None:
                self._counters["inflight_dedup"] += 1
                return Ticket(fingerprint, flight)
        # The store lookup may hit disk (gzip + JSON decode); keep it outside
        # the lock so concurrent streamers are never stalled behind it, then
        # re-check for a flight that appeared meanwhile.
        summary = self.store.get_summary(fingerprint)
        with self._lock:
            flight = self._flights.get(fingerprint)
            if flight is not None:
                self._counters["inflight_dedup"] += 1
                return Ticket(fingerprint, flight)
            if summary is not None:
                self._counters["hits"] += 1
                return Ticket(fingerprint, _Flight(summary, warm=True))
            if (self.max_pending is not None
                    and len(self._flights) >= self.max_pending):
                self._counters["rejected_submissions"] += 1
                raise ServiceOverloadedError(
                    f"{len(self._flights)} cold builds already pending"
                    f" (max_pending={self.max_pending}); retry later"
                )
            self._counters["misses"] += 1
            flight = _Flight()
            self._flights[fingerprint] = flight
        self._executor.submit(self._build, fingerprint, workload, relations, flight)
        return Ticket(fingerprint, flight)

    def summarize(self, workload: ConstraintSet,
                  relations: Optional[Sequence[str]] = None,
                  timeout: Optional[float] = None) -> DatabaseSummary:
        """Blocking convenience wrapper: submit and wait for the summary."""
        return self.submit(workload, relations).result(timeout)

    def _build(self, fingerprint: str, workload: ConstraintSet,
               relations: Optional[Sequence[str]], flight: _Flight) -> None:
        try:
            with self._lock:
                self._counters["pipeline_runs"] += 1
            build = self.backend.build(workload, relations)
            flight.summary = build.summary
        except BaseException as error:  # surfaced to every waiter
            flight.error = error
        finally:
            flight.event.set()
            with self._lock:
                self._flights.pop(fingerprint, None)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def stream(self, request: Union[ConstraintSet, str], relation: str,
               batch_size: int = DEFAULT_BATCH_SIZE,
               start_row: int = 1, stop_row: Optional[int] = None,
               timeout: Optional[float] = None) -> Iterator[Table]:
        """Stream a relation of a regenerated database in columnar batches.

        ``request`` is either a constraint set (resolved — warm or cold — via
        :meth:`submit`) or a fingerprint string of a previously-seen workload
        (store-only: raises :class:`ServiceError` when unknown, never runs
        the pipeline).  Resolution happens eagerly — an unknown fingerprint
        or a failed build raises at the call site, not at first iteration.
        Each call returns an independent cursor; concurrent consumers can
        shard a relation with ``start_row``/``stop_row``.
        """
        fingerprint, summary = self._resolve_summary(request, timeout)
        generator = self._generator(fingerprint, relation, summary)
        batches = generator.stream_range(start_row, stop_row, batch_size=batch_size)

        def cursor() -> Iterator[Table]:
            for batch in batches:
                with self._lock:
                    self._counters["batches_streamed"] += 1
                yield batch

        return cursor()

    def total_rows(self, request: Union[ConstraintSet, str], relation: str) -> int:
        """Rows the given relation regenerates to (without generating)."""
        return self._resolve_summary(request)[1].relation(relation).total_rows()

    def _resolve_summary(self, request: Union[ConstraintSet, str],
                         timeout: Optional[float] = None,
                         ) -> Tuple[str, DatabaseSummary]:
        """Resolve a request to ``(fingerprint, summary)``.

        A constraint set resolves — warm or cold — via :meth:`submit`; a
        fingerprint string is store-only and raises :class:`ServiceError`
        when unknown, never running the pipeline.
        """
        if isinstance(request, str):
            summary = self.store.get_summary(request)
            if summary is None:
                raise ServiceError(
                    f"no stored summary for fingerprint {request[:12]}…;"
                    " submit the workload first"
                )
            return request, summary
        ticket = self.submit(request)
        return ticket.fingerprint, ticket.result(timeout)

    # ------------------------------------------------------------------ #
    # regenerate-then-verify (pipelined execution over regenerated data)
    # ------------------------------------------------------------------ #
    def database(self, request: Union[ConstraintSet, str],
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 timeout: Optional[float] = None) -> Database:
        """A lazily regenerated :class:`Database` for the request's summary.

        Every relation is attached as a batch stream: nothing is generated
        until first scan, and pipelined consumers (the default
        :class:`~repro.engine.executor.Executor` mode) never materialise a
        relation however large the regenerated scale is.  The streams are
        backed by the service's shared per-``(fingerprint, relation)``
        generators — the same ones :meth:`stream` serves shards from — so
        repeated regenerate-then-verify calls pay the summary expansion
        setup once and their batches show up in the shared diagnostics.
        """
        fingerprint, summary = self._resolve_summary(request, timeout)
        database = Database(self.schema, name=f"regen-{fingerprint[:12]}")
        for relation in summary.relations:
            generator = self._generator(fingerprint, relation, summary)

            def stream_factory(generator: TupleGenerator = generator,
                               ) -> Iterator[Table]:
                return generator.stream(batch_size=batch_size)

            database.attach_stream(relation, stream_factory,
                                   row_count=generator.total_rows)
        return database

    def execute_workload(self, request: Union[ConstraintSet, str],
                         workload: Workload,
                         batch_size: int = DEFAULT_BATCH_SIZE,
                         mode: str = "pipelined",
                         timeout: Optional[float] = None,
                         ) -> List[AnnotatedQueryPlan]:
        """Execute an AQP workload over the request's regenerated database.

        This is the serving half of the paper's client/vendor loop: the
        vendor regenerates the database from the summary and replays the
        workload to produce AQPs, batch-at-a-time by default so the fact
        relations are never materialised.  Executor memory telemetry
        (``executor_peak_batch_rows`` and friends) lands in :meth:`stats`.
        """
        executor = Executor(self.database(request, batch_size, timeout), mode=mode)
        plans = executor.execute_workload(workload)
        self._observe_executor(executor, "workloads_executed")
        return plans

    def verify(self, request: Union[ConstraintSet, str],
               constraints: Optional[ConstraintSet] = None,
               batch_size: int = DEFAULT_BATCH_SIZE,
               mode: str = "pipelined",
               timeout: Optional[float] = None) -> SimilarityReport:
        """Volumetric-similarity check of the regenerated database.

        Evaluates ``constraints`` (defaulting to the request itself when it
        is a constraint set) against the regenerated data through the
        engine, streaming each denormalised view batch-at-a-time by default.
        """
        if constraints is None:
            if not isinstance(request, ConstraintSet):
                raise ServiceError(
                    "verify needs an explicit constraint set when the request"
                    " is a fingerprint"
                )
            constraints = request
        executor = Executor(self.database(request, batch_size, timeout), mode=mode)
        report = evaluate_with_executor(constraints, executor)
        self._observe_executor(executor, "verifications")
        return report

    def _observe_executor(self, executor: Executor, counter: str) -> None:
        stats = executor.stats
        with self._lock:
            self._counters[counter] += 1
            self._counters["executor_batches"] += stats.batches
            if stats.peak_batch_rows > self._counters["executor_peak_batch_rows"]:
                self._counters["executor_peak_batch_rows"] = stats.peak_batch_rows

    def _generator(self, fingerprint: str, relation: str,
                   summary: DatabaseSummary) -> TupleGenerator:
        key = (fingerprint, relation)
        with self._lock:
            generator = self._generators.get(key)
            if generator is None:
                generator = TupleGenerator(summary.relation(relation))
                self._generators[key] = generator
            return generator

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Serving counters plus the store's and LP solver's own counters."""
        with self._lock:
            counters = dict(self._counters)
        # Custom backends need not wrap a solver-carrying pipeline; report
        # zeros rather than crashing the observability path.
        solver = getattr(getattr(self.backend, "pipeline", None), "solver", None)
        stats = getattr(solver, "stats", None)
        counters.update({
            "solver_components_solved": getattr(stats, "components_solved", 0),
            "solver_cache_hits": getattr(stats, "cache_hits", 0),
            "solver_cache_misses": getattr(stats, "cache_misses", 0),
        })
        counters.update(self.store.counters())
        return counters

    def close(self) -> None:
        """Finish in-flight builds and release the worker pool."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "RegenerationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
