"""The concurrent regeneration serving front-end.

:class:`RegenerationService` sits in front of a pipeline backend (selected
by name from the :mod:`repro.api.backends` registry — Hydra by default) and
a :class:`~repro.service.store.SummaryStore` and turns one-shot summary
builds into a request/serve loop:

* ``submit(workload, tenant=...)`` returns a :class:`Ticket` immediately;
  identical requests already in flight are *single-flighted* — they attach
  to the running build instead of triggering a second pipeline run;
* warm requests (fingerprint already in the store) never touch the LP
  solver: the summary is read from the store's memory/disk layers;
* cold builds go through a **weighted-fair admission queue**: FIFO within a
  tenant, weighted round-robin across tenants for dispatch, per-tenant
  ``max_pending_per_tenant`` caps so one tenant's cold burst can never
  starve the others (warm requests and in-flight dedup are always
  admitted);
* ``stream(...)`` hands out vectorised tuple batches for any relation of a
  regenerated database; many consumers can stream concurrently, each with
  an independent cursor, optionally over disjoint row shards.  The backing
  store entry is pinned from the moment the cursor is handed out, so GC
  never evicts it under a live stream;
* an optional background GC thread (``gc_interval``) periodically
  :meth:`~repro.service.store.SummaryStore.compact`-s the store;
* ``stats()`` / ``service_stats()`` expose the serving counters (hits,
  misses, inflight dedups, pipeline runs and failures, queue depth,
  per-tenant admits/rejects, store evictions/expirations) the fleet
  scenario monitors.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.backends import create_backend
from repro.api.config import RegenConfig
from repro.constraints.workload import ConstraintSet
from repro.datasynth.pipeline import DataSynthConfig
from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plan import AnnotatedQueryPlan
from repro.engine.table import Table
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.hydra.pipeline import HydraConfig
from repro.lp.solver import SolverStats
from repro.metrics.similarity import SimilarityReport, evaluate_with_executor
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer, span as trace_span
from repro.schema.schema import Schema
from repro.service.fingerprint import ManifestDiff, manifest_diff
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary
from repro.tuplegen.generator import DEFAULT_BATCH_SIZE, TupleGenerator
from repro.workload.query import Workload

#: Tenant tag assigned to submissions that do not name one.
DEFAULT_TENANT = "default"

logger = get_logger("service")

#: The per-tenant build outcomes tracked by the fair-admission queue (the
#: label values of ``repro_service_tenant_builds_total``).
_TENANT_OUTCOMES = ("admitted", "rejected", "completed", "failed")


class _Flight:
    """One in-progress (or finished) summary build."""

    __slots__ = ("event", "summary", "error", "warm", "tenant")

    def __init__(self, summary: Optional[DatabaseSummary] = None,
                 warm: bool = False, tenant: str = DEFAULT_TENANT) -> None:
        self.event = threading.Event()
        self.summary = summary
        self.error: Optional[BaseException] = None
        self.warm = warm
        self.tenant = tenant
        if summary is not None:
            self.event.set()


class _QueuedBuild:
    """One admitted cold build waiting for (or holding) a worker slot.

    ``submitted_at`` anchors the tenant's end-to-end latency histogram;
    ``parent_span`` is the submit-time trace context, captured explicitly
    because the build runs on a pool thread whose own context is empty.
    """

    __slots__ = ("fingerprint", "workload", "relations", "flight",
                 "submitted_at", "parent_span")

    def __init__(self, fingerprint: str, workload: ConstraintSet,
                 relations: Optional[Sequence[str]], flight: _Flight,
                 submitted_at: Optional[float] = None,
                 parent_span: object = None) -> None:
        self.fingerprint = fingerprint
        self.workload = workload
        self.relations = relations
        self.flight = flight
        self.submitted_at = time.perf_counter() if submitted_at is None \
            else submitted_at
        self.parent_span = parent_span


class _PinnedCursor:
    """A batch cursor holding a store pin for its whole lifetime.

    The pin is taken *eagerly* at construction — before the caller ever
    iterates — so there is no window in which GC could evict the entry
    backing a handed-out stream.  It is released exactly once: on
    exhaustion, on error, on :meth:`close`, when the service's idle-cursor
    reaper claims an abandoned cursor (:meth:`reap_if_idle`), or when the
    cursor is garbage collected (an abandoned, never-iterated cursor cannot
    leak its pin even with no reaper configured).  Release is thread-safe:
    the reaper runs on its own thread while a consumer may be mid-iteration.
    """

    def __init__(self, store: SummaryStore, fingerprint: str,
                 batches: Iterator[Table],
                 on_batch: Optional[callable] = None,
                 on_first_batch: Optional[callable] = None,
                 on_release: Optional[callable] = None) -> None:
        self._store = store
        self._fingerprint = fingerprint
        self._batches = batches
        self._on_batch = on_batch
        self._on_first_batch = on_first_batch
        self._on_release = on_release
        self._lock = threading.Lock()
        self._reaped = False
        self.last_used = time.monotonic()
        self._pinned = True
        store.pin(fingerprint)

    def _release(self) -> None:
        with self._lock:
            if not self._pinned:
                return
            self._pinned = False
        self._store.unpin(self._fingerprint)
        if self._on_release is not None:
            self._on_release()

    def reap_if_idle(self, now: float, idle_seconds: float) -> bool:
        """Release the pin if the cursor sat unused for ``idle_seconds``.

        Called by the service's reaper thread.  A reaped cursor keeps any
        batch the consumer already holds valid (batches are plain tables),
        but its next ``__next__`` raises :class:`ServiceError` — a consumer
        that merely stalled gets a clear error instead of streaming from an
        entry GC may since have evicted.
        """
        with self._lock:
            if not self._pinned or now - self.last_used < idle_seconds:
                return False
            self._reaped = True
            self._pinned = False
        self._store.unpin(self._fingerprint)
        if self._on_release is not None:
            self._on_release()
        return True

    def __iter__(self) -> "_PinnedCursor":
        return self

    def __next__(self) -> Table:
        if self._reaped:
            raise ServiceError(
                "stream cursor was reaped after sitting idle; re-open the"
                " stream"
            )
        self.last_used = time.monotonic()
        try:
            batch = next(self._batches)
        except BaseException:  # StopIteration included: cursor is done
            self._release()
            raise
        self.last_used = time.monotonic()
        if self._on_first_batch is not None:
            self._on_first_batch()
            self._on_first_batch = None
        if self._on_batch is not None:
            self._on_batch()
        return batch

    def close(self) -> None:
        self._release()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        self._release()


class Ticket:
    """Handle for a submitted regeneration request."""

    def __init__(self, fingerprint: str, flight: _Flight) -> None:
        self.fingerprint = fingerprint
        self._flight = flight

    @property
    def warm(self) -> bool:
        """``True`` when the request was served from the store."""
        return self._flight.warm

    @property
    def tenant(self) -> str:
        """The tenant tag the request was admitted under."""
        return self._flight.tenant

    def done(self) -> bool:
        """``True`` once the summary is available (or the build failed)."""
        return self._flight.event.is_set()

    def result(self, timeout: Optional[float] = None) -> DatabaseSummary:
        """Block until the summary is ready and return it."""
        if not self._flight.event.wait(timeout):
            raise ServiceError(
                f"request {self.fingerprint[:12]} did not finish within {timeout}s"
            )
        if self._flight.error is not None:
            raise self._flight.error
        assert self._flight.summary is not None
        return self._flight.summary


@dataclass(frozen=True)
class ResummarizeReport:
    """Outcome of one incremental re-summarization (a new workload epoch).

    The component lists come from diffing the drifted workload's manifest
    against the base epoch's provenance: ``reused`` components are served
    from the component-solution cache with zero solves, ``solved`` is the
    delta plan (components only the new epoch has — an upper bound on actual
    solves, since an "added" component may still hit a cache entry written
    by an unrelated build), ``retired`` existed only in the base.
    """

    fingerprint: str
    parent_fingerprint: str
    summary: DatabaseSummary
    #: ``True`` when the drifted epoch was already stored (nothing ran).
    warm: bool
    reused_components: Tuple[str, ...]
    solved_components: Tuple[str, ...]
    retired_components: Tuple[str, ...]

    @property
    def total_components(self) -> int:
        """Component count of the new epoch."""
        return len(self.reused_components) + len(self.solved_components)


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant admission/progress counters (one row of the fair queue).

    The latency fields are estimated from the tenant's end-to-end
    (``repro_service_request_seconds``) and time-to-first-batch
    (``repro_service_ttfb_seconds``) histograms; they are ``0.0`` until the
    tenant has completed at least one request / streamed one batch.
    """

    tenant: str
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    queued: int = 0
    running: int = 0
    e2e_p50: float = 0.0
    e2e_p99: float = 0.0
    ttfb_p50: float = 0.0
    ttfb_p99: float = 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Structured serving telemetry: flat counters + per-tenant rows."""

    #: The flat counter dict (everything :meth:`RegenerationService.stats`
    #: returns, including the store's lifecycle counters).
    counters: Dict[str, int]
    #: One :class:`TenantStats` per tenant ever seen, sorted by name.
    tenants: Tuple[TenantStats, ...]
    #: Cold builds admitted but not yet holding a worker slot.
    queue_depth: int

    def tenant(self, name: str) -> TenantStats:
        """The row for one tenant (zeros if it was never seen)."""
        for row in self.tenants:
            if row.tenant == name:
                return row
        return TenantStats(tenant=name)


class RegenerationService:
    """Concurrent serving front-end over a summary store.

    Parameters
    ----------
    schema:
        The (anonymised) client schema requests are validated against.
    store:
        Any :class:`~repro.cluster.backend.StoreBackend` (a
        :class:`SummaryStore`, :class:`~repro.cluster.ReplicatedStore`,
        :class:`~repro.cluster.ShardedStore`, …), a directory path, or
        ``None``.  Paths and ``None`` go through
        :func:`repro.cluster.open_store`, so the config's cluster knobs
        (``store_url`` / ``store_peers``) pick the topology and a
        path-opened store inherits the config's lifecycle caps
        (``max_store_bytes`` / ``max_entries`` / ``ttl_seconds``).
    config:
        A :class:`~repro.api.RegenConfig` (the canonical spelling), or a
        legacy :class:`HydraConfig` / :class:`DataSynthConfig`, which is
        lifted into the equivalent ``RegenConfig`` (same fingerprints).
    max_workers:
        Concurrent cold pipeline builds (warm requests and streaming never
        occupy a worker).
    engine:
        Name of the pipeline backend cold builds route through (anything in
        :func:`repro.api.available_backends`); defaults to the config's
        engine selection.
    max_pending:
        Global backpressure: maximum number of cold builds queued or running
        at once.  Further cold submissions raise
        :class:`~repro.errors.ServiceOverloadedError` (warm requests and
        in-flight dedup are always admitted — they add no pipeline load).
        ``None`` falls back to the config, whose default disables the limit.
    max_pending_per_tenant:
        Fair admission: per-tenant cap on cold builds queued or running.  A
        tenant at its cap gets :class:`ServiceOverloadedError` while other
        tenants keep being admitted.  ``None`` falls back to the config.
    tenant_weights:
        Optional relative dispatch weights (default 1 per tenant): a tenant
        with weight 2 gets twice the cold-build slots of a weight-1 tenant
        under contention.  Dispatch is FIFO within a tenant.
    gc_interval:
        Period (seconds) of the background store-GC thread, which runs
        :meth:`SummaryStore.compact` with the store's configured caps.
        ``None`` falls back to the config, whose default disables the
        thread; :meth:`gc` always works on demand.
    cursor_idle_timeout:
        Idle bound (seconds) after which an abandoned stream cursor's store
        pin is reclaimed by a background reaper thread — the backstop for
        network consumers that die without closing their cursor (a dead
        HTTP client's socket thread may otherwise park a pin until GC
        happens to collect the cursor).  ``None`` falls back to the config,
        whose default disables the reaper; :meth:`reap_idle_cursors` always
        works on demand.
    """

    def __init__(self, schema: Schema,
                 store: Union[SummaryStore, str, Path, None] = None,
                 config: Union[RegenConfig, HydraConfig, DataSynthConfig, None] = None,
                 max_workers: int = 2,
                 engine: Optional[str] = None,
                 max_pending: Optional[int] = None,
                 max_pending_per_tenant: Optional[int] = None,
                 tenant_weights: Optional[Mapping[str, int]] = None,
                 gc_interval: Optional[float] = None,
                 cursor_idle_timeout: Optional[float] = None) -> None:
        if max_workers < 1:
            raise ServiceError("RegenerationService needs at least one worker")
        if max_pending is not None and max_pending < 0:
            raise ServiceError("max_pending must be non-negative (or None)")
        if max_pending_per_tenant is not None and max_pending_per_tenant < 0:
            raise ServiceError(
                "max_pending_per_tenant must be non-negative (or None)"
            )
        self.schema = schema
        if config is None:
            self.config = RegenConfig()
        elif isinstance(config, RegenConfig):
            self.config = config
        elif isinstance(config, HydraConfig):
            self.config = RegenConfig.from_hydra_config(config)
        elif isinstance(config, DataSynthConfig):
            self.config = RegenConfig.from_datasynth_config(config)
        else:
            raise ServiceError(
                f"unsupported config type {type(config).__name__};"
                " pass a RegenConfig, HydraConfig or DataSynthConfig"
            )
        #: The service's metrics registry: every ``repro_service_*`` series,
        #: plus the store's and the LP solver's metrics when those components
        #: are owned by this service.  ``config.obs_enabled=False`` turns
        #: every update into a no-op (``stats()`` then reports zeros).
        self.registry = MetricsRegistry(enabled=self.config.obs_enabled)
        if self.config.trace_sample > 0.0:
            get_tracer().configure(sample=self.config.trace_sample)
        if self.config.log_format == "json":
            configure_logging(log_format="json")
        if store is not None and hasattr(store, "get_summary"):
            # Any ready-made StoreBackend (disk, replicated, sharded, or a
            # plain SummaryStore) is used as-is.
            self.store = store
        else:
            # Lazy import: repro.cluster imports repro.server.http, which
            # imports this module — deferring keeps the import DAG acyclic.
            from repro.cluster.factory import open_store

            self.store = open_store(store, config=self.config,
                                    registry=self.registry)
        self.engine = engine or self.config.engine
        self.backend = create_backend(self.engine, schema, self.config, self.store)
        #: Back-compat alias: the wrapped engine object (a ``Hydra`` for the
        #: default backend — tests and tooling patch ``hydra.build_summary``).
        self.hydra = self.backend.pipeline
        # Re-home the solver's stats onto the service registry, so one
        # export (`stats --prometheus`) covers service, store and solver.
        solver = getattr(self.backend.pipeline, "solver", None)
        if solver is not None and isinstance(getattr(solver, "stats", None),
                                             SolverStats):
            solver.stats = SolverStats(registry=self.registry)
        self.max_pending = max_pending if max_pending is not None \
            else self.config.max_pending
        self.max_pending_per_tenant = max_pending_per_tenant \
            if max_pending_per_tenant is not None \
            else self.config.max_pending_per_tenant
        self.tenant_weights: Dict[str, int] = dict(tenant_weights or {})
        self.gc_interval = gc_interval if gc_interval is not None \
            else self.config.gc_interval
        self.cursor_idle_timeout = cursor_idle_timeout \
            if cursor_idle_timeout is not None \
            else self.config.cursor_idle_timeout
        self._max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="regen"
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._closed = False
        self._flights: Dict[str, _Flight] = {}
        self._generators: Dict[Tuple[str, str], TupleGenerator] = {}
        # Every handed-out stream cursor, weakly held: the reaper can reach
        # abandoned cursors without keeping them alive (a strong reference
        # would defeat the `__del__` GC backstop when no reaper runs).
        self._cursors: "weakref.WeakSet[_PinnedCursor]" = weakref.WeakSet()
        # Fair admission queue state: FIFO per tenant, dispatched weighted
        # round-robin whenever a worker slot frees up.
        self._queues: Dict[str, Deque[_QueuedBuild]] = {}
        self._running_total = 0
        self._running_by_tenant: Dict[str, int] = {}
        self._pending_by_tenant: Dict[str, int] = {}
        # Weight-normalised service clocks of the current busy period: a
        # tenant is charged 1/weight per dispatched build, an (re)activating
        # tenant starts at the least-served active tenant's clock (no
        # catch-up credit for past idleness), and the clocks reset whenever
        # the queue fully drains.
        self._tenant_clock: Dict[str, float] = {}
        # Every legacy ``stats()`` counter is a registry-backed series; the
        # dict maps the legacy flat key to its metric family, so the registry
        # is the single source of truth and the legacy dict shape is derived.
        self._counters = {
            "requests": self.registry.counter(
                "repro_service_requests_total", "Submissions received"),
            "hits": self.registry.counter(
                "repro_service_warm_hits_total",
                "Requests served warm from the store (no pipeline)"),
            "misses": self.registry.counter(
                "repro_service_cold_misses_total",
                "Cold requests admitted into the build queue"),
            "inflight_dedup": self.registry.counter(
                "repro_service_inflight_dedup_total",
                "Requests attached to an identical in-flight build"),
            "rejected_submissions": self.registry.counter(
                "repro_service_rejected_submissions_total",
                "Cold submissions refused by an admission cap"),
            "pipeline_runs": self.registry.counter(
                "repro_service_pipeline_runs_total",
                "Cold builds handed to the pipeline backend"),
            "pipeline_failures": self.registry.counter(
                "repro_service_pipeline_failures_total",
                "Builds that raised (including dispatch failures)"),
            "gc_runs": self.registry.counter(
                "repro_service_gc_runs_total", "Store GC passes"),
            "batches_streamed": self.registry.counter(
                "repro_service_batches_streamed_total",
                "Tuple batches handed to streaming consumers"),
            "cursors_reaped": self.registry.counter(
                "repro_service_cursors_reaped_total",
                "Idle stream cursors whose store pin the reaper reclaimed"),
            "components_reused": self.registry.counter(
                "repro_service_components_reused_total",
                "Cached component solutions resummarize reused verbatim"),
            "components_resolved": self.registry.counter(
                "repro_service_components_resolved_total",
                "Changed/new components resummarize had to solve"),
            # executor memory telemetry (regenerate-then-verify paths)
            "workloads_executed": self.registry.counter(
                "repro_service_workloads_executed_total",
                "AQP workloads replayed over regenerated databases"),
            "verifications": self.registry.counter(
                "repro_service_verifications_total",
                "Volumetric-similarity verification runs"),
            "executor_batches": self.registry.counter(
                "repro_service_executor_batches_total",
                "Batches pushed through executor pipelines"),
            "executor_peak_batch_rows": self.registry.gauge(
                "repro_service_executor_peak_batch_rows",
                "Largest batch any executor pushed through a plan"),
        }
        self._g_queue_depth = self.registry.gauge(
            "repro_service_queue_depth",
            "Cold builds admitted but not yet holding a worker slot")
        self._h_request = self.registry.histogram(
            "repro_service_request_seconds",
            "End-to-end submit-to-summary latency", labelnames=("tenant",))
        self._h_ttfb = self.registry.histogram(
            "repro_service_ttfb_seconds",
            "Stream handout to first batch latency", labelnames=("tenant",))
        self._tenant_builds = self.registry.counter(
            "repro_service_tenant_builds_total",
            "Per-tenant build outcomes of the fair-admission queue",
            labelnames=("tenant", "outcome"))
        self._gc_stop = threading.Event()
        self._gc_thread: Optional[threading.Thread] = None
        if self.gc_interval is not None and self.gc_interval > 0:
            self._gc_thread = threading.Thread(
                target=self._gc_loop, name="regen-gc", daemon=True
            )
            self._gc_thread.start()
        self._reaper_stop = threading.Event()
        self._reaper_thread: Optional[threading.Thread] = None
        if self.cursor_idle_timeout is not None and self.cursor_idle_timeout > 0:
            self._reaper_thread = threading.Thread(
                target=self._reaper_loop, name="regen-reaper", daemon=True
            )
            self._reaper_thread.start()

    # ------------------------------------------------------------------ #
    # request front-end
    # ------------------------------------------------------------------ #
    def fingerprint(self, workload: ConstraintSet,
                    relations: Optional[Sequence[str]] = None) -> str:
        """The content fingerprint this service assigns to a request.

        Delegates to the backend so the service's dedup/warm detection and
        the store entries the pipeline writes always agree (the fingerprint
        covers the engine and its result-affecting configuration, not just
        the workload).
        """
        return self.backend.fingerprint(workload, relations)

    def submit(self, workload: ConstraintSet,
               relations: Optional[Sequence[str]] = None,
               tenant: str = DEFAULT_TENANT) -> Ticket:
        """Submit a regeneration request; returns a ticket immediately.

        Warm requests resolve synchronously from the store.  Cold requests
        are admitted into the fair cold-build queue under ``tenant`` and run
        on the worker pool — FIFO within the tenant, weighted round-robin
        across tenants; identical requests submitted while one is in flight
        share that single build (single-flight), whatever their tenant.
        Admission is refused with
        :class:`~repro.errors.ServiceOverloadedError` when the global
        ``max_pending`` cap or the tenant's ``max_pending_per_tenant`` cap
        is full; warm requests and in-flight dedup are always admitted.
        """
        started = time.perf_counter()
        with trace_span("service.submit", tenant=tenant) as span:
            ticket = self._submit(workload, relations, tenant, span, started)
            span.set_attribute("fingerprint", ticket.fingerprint[:12])
            span.set_attribute("warm", ticket.warm)
        return ticket

    def _submit(self, workload: ConstraintSet,
                relations: Optional[Sequence[str]], tenant: str,
                span: object, started: float) -> Ticket:
        fingerprint = self.fingerprint(workload, relations)
        with self._lock:
            self._counters["requests"].inc()
            flight = self._flights.get(fingerprint)
            if flight is not None:
                self._counters["inflight_dedup"].inc()
                logger.debug("request %s deduplicated onto in-flight build",
                             fingerprint[:12])
                return Ticket(fingerprint, flight)
        # The store lookup may hit disk (gzip + JSON decode); keep it outside
        # the lock so concurrent streamers are never stalled behind it, then
        # re-check for a flight that appeared meanwhile.
        summary = self.store.get_summary(fingerprint)
        with self._lock:
            flight = self._flights.get(fingerprint)
            if flight is not None:
                self._counters["inflight_dedup"].inc()
                logger.debug("request %s deduplicated onto in-flight build",
                             fingerprint[:12])
                return Ticket(fingerprint, flight)
            if summary is not None:
                self._counters["hits"].inc()
                self._h_request.labels(tenant=tenant).observe(
                    time.perf_counter() - started)
                return Ticket(fingerprint, _Flight(summary, warm=True,
                                                   tenant=tenant))
            if self._closed:
                raise ServiceClosedError(
                    "service is closed; no new cold builds are accepted"
                )
            if (self.max_pending is not None
                    and len(self._flights) >= self.max_pending):
                self._counters["rejected_submissions"].inc()
                self._tenant_builds.labels(tenant=tenant,
                                           outcome="rejected").inc()
                logger.warning(
                    "rejected cold submission %s from tenant %s:"
                    " max_pending=%s reached",
                    fingerprint[:12], tenant, self.max_pending)
                raise ServiceOverloadedError(
                    f"{len(self._flights)} cold builds already pending"
                    f" (max_pending={self.max_pending}); retry later"
                )
            pending = self._pending_by_tenant.get(tenant, 0)
            if (self.max_pending_per_tenant is not None
                    and pending >= self.max_pending_per_tenant):
                self._counters["rejected_submissions"].inc()
                self._tenant_builds.labels(tenant=tenant,
                                           outcome="rejected").inc()
                logger.warning(
                    "rejected cold submission %s from tenant %s:"
                    " max_pending_per_tenant=%s reached",
                    fingerprint[:12], tenant, self.max_pending_per_tenant)
                raise ServiceOverloadedError(
                    f"tenant {tenant!r} has {pending} cold builds pending"
                    f" (max_pending_per_tenant={self.max_pending_per_tenant});"
                    " retry later"
                )
            self._counters["misses"].inc()
            self._tenant_builds.labels(tenant=tenant, outcome="admitted").inc()
            logger.debug("admitted cold build %s for tenant %s",
                         fingerprint[:12], tenant)
            flight = _Flight(tenant=tenant)
            self._flights[fingerprint] = flight
            if pending == 0:
                self._activate_tenant_locked(tenant)
            self._pending_by_tenant[tenant] = pending + 1
            self._queues.setdefault(tenant, deque()).append(
                _QueuedBuild(fingerprint, workload, relations, flight,
                             submitted_at=started, parent_span=span)
            )
            self._dispatch_locked()
        return Ticket(fingerprint, flight)

    def summarize(self, workload: ConstraintSet,
                  relations: Optional[Sequence[str]] = None,
                  timeout: Optional[float] = None,
                  tenant: str = DEFAULT_TENANT) -> DatabaseSummary:
        """Blocking convenience wrapper: submit and wait for the summary."""
        return self.submit(workload, relations, tenant=tenant).result(timeout)

    # ------------------------------------------------------------------ #
    # incremental re-summarization (workload epochs)
    # ------------------------------------------------------------------ #
    def component_manifest(self, workload: ConstraintSet,
                           relations: Optional[Sequence[str]] = None,
                           ) -> List[str]:
        """The structural component manifest of a request, without solving.

        Delegates to the backend pipeline's formulation; backends without a
        decomposable LP formulation (e.g. DataSynth) report an empty
        manifest, which makes every incremental build a full rebuild.
        """
        manifest_fn = getattr(self.backend.pipeline, "component_manifest", None)
        if manifest_fn is None:
            return []
        per_relation = manifest_fn(workload, relations)
        return sorted({key for keys in per_relation.values() for key in keys})

    def resummarize(self, base_fingerprint: str, new_constraints: ConstraintSet,
                    relations: Optional[Sequence[str]] = None,
                    tenant: str = DEFAULT_TENANT,
                    timeout: Optional[float] = None) -> ResummarizeReport:
        """Incrementally re-summarize a drifted workload against a warm epoch.

        Diffs the drifted workload's component manifest against the base
        epoch's recorded provenance: components present in both manifests
        reuse their cached solutions verbatim (zero solves — the store-backed
        component cache serves them), so the build only solves the
        changed/new constraint-graph components before stitching.  The new
        epoch is linked to its parent in the store (``parent_fingerprint``
        metadata, walkable via
        :meth:`~repro.service.store.SummaryStore.list_lineage`).  Because
        merging and stitching are deterministic given the component
        solutions, the produced summary is byte-identical to a cold
        ``summarize`` of the drifted workload.

        Raises :class:`~repro.errors.ServiceError` when ``base_fingerprint``
        is not in the store — resummarize never cold-builds the base.
        """
        with trace_span("service.resummarize", tenant=tenant) as span:
            span.set_attribute("base", base_fingerprint[:12])
            base_summary = self.store.get_summary(base_fingerprint)
            if base_summary is None:
                raise ServiceError(
                    f"no stored summary for base fingerprint"
                    f" {base_fingerprint[:12]}…; summarize the base workload"
                    " first"
                )
            diff = manifest_diff(
                base_summary.component_manifest(),
                self.component_manifest(new_constraints, relations),
            )
            ticket = self.submit(new_constraints, relations, tenant=tenant)
            summary = ticket.result(timeout)
            fingerprint = ticket.fingerprint
            # A warm drifted epoch ran nothing: the whole summary — all its
            # components — was reused; otherwise the intersection was served
            # from cache and the added components were (at most) solved.
            reused = diff.total if ticket.warm else len(diff.reused)
            solved = 0 if ticket.warm else len(diff.added)
            self._counters["components_reused"].inc(reused)
            self._counters["components_resolved"].inc(solved)
            if fingerprint != base_fingerprint:
                self._link_epoch(fingerprint, base_fingerprint, summary)
            span.set_attribute("fingerprint", fingerprint[:12])
            span.set_attribute("warm", ticket.warm)
            span.set_attribute("components_reused", reused)
            span.set_attribute("components_resolved", solved)
            logger.info(
                "resummarized %s -> %s: reused=%d solved=%d retired=%d warm=%s",
                base_fingerprint[:12], fingerprint[:12], reused, solved,
                len(diff.retired), ticket.warm)
        return ResummarizeReport(
            fingerprint=fingerprint,
            parent_fingerprint=base_fingerprint,
            summary=summary,
            warm=ticket.warm,
            reused_components=tuple(diff.reused),
            solved_components=tuple(diff.added),
            retired_components=tuple(diff.retired),
        )

    def diff(self, fingerprint_a: str, fingerprint_b: str) -> ManifestDiff:
        """Per-component reuse report between two stored workload epochs.

        ``reused`` components are shared by both epochs, ``added`` exist
        only in epoch ``b``, ``retired`` only in epoch ``a``.  Raises
        :class:`~repro.errors.ServiceError` when either epoch is missing
        from the store.
        """
        summaries = []
        for fingerprint in (fingerprint_a, fingerprint_b):
            summary = self.store.get_summary(fingerprint)
            if summary is None:
                raise ServiceError(
                    f"no stored summary for fingerprint {fingerprint[:12]}…;"
                    " cannot diff epochs"
                )
            summaries.append(summary)
        return manifest_diff(summaries[0].component_manifest(),
                             summaries[1].component_manifest())

    def _link_epoch(self, fingerprint: str, parent: str,
                    summary: DatabaseSummary) -> None:
        """Record the new epoch's parent link in the store metadata."""
        link = getattr(self.store, "link_parent", None)
        if link is not None:
            link(fingerprint, parent)
            return
        # Store backends without native lineage support (e.g. remote
        # replicas) still get the link via a meta-carrying rewrite.
        self.store.put_summary(fingerprint, summary,
                               meta={"parent_fingerprint": parent})

    # ------------------------------------------------------------------ #
    # fair dispatch
    # ------------------------------------------------------------------ #
    def _activate_tenant_locked(self, tenant: str) -> None:
        """Start (or resume) a tenant's service clock for this busy period.

        A tenant going from idle to having queued work starts at the
        least-served *active* tenant's clock — never below it.  It gets no
        catch-up credit for time it spent idle, so a newcomer (or a tenant
        returning after a long absence) cannot monopolise the build slots
        against tenants that have been paying their way all along.
        """
        active = [self._tenant_clock.get(name, 0.0)
                  for name in (set(self._running_by_tenant)
                               | {n for n, q in self._queues.items() if q})
                  if name != tenant]
        floor = min(active) if active else 0.0
        self._tenant_clock[tenant] = max(
            self._tenant_clock.get(tenant, 0.0), floor
        )

    def _next_tenant_locked(self) -> Optional[str]:
        """The tenant whose queue head runs next: weighted-fair selection.

        Among tenants with queued work, pick the one with the lowest service
        clock — each dispatch charges 1/weight, so within a busy period each
        tenant's share of cold-build slots converges to its weight, and a
        burst from one tenant cannot push another tenant's queued build back
        more than its fair share.  Ties break by name for determinism.
        """
        eligible = [t for t, queue in self._queues.items() if queue]
        if not eligible:
            return None
        return min(eligible, key=lambda t: (self._tenant_clock.get(t, 0.0), t))

    def _dispatch_locked(self) -> None:
        """Hand queued builds to free worker slots (caller holds the lock)."""
        while self._running_total < self._max_workers:
            tenant = self._next_tenant_locked()
            if tenant is None:
                break
            queue = self._queues[tenant]
            build = queue.popleft()
            if not queue:
                del self._queues[tenant]
            self._running_total += 1
            self._running_by_tenant[tenant] = \
                self._running_by_tenant.get(tenant, 0) + 1
            self._tenant_clock[tenant] = self._tenant_clock.get(tenant, 0.0) \
                + 1.0 / max(1, self.tenant_weights.get(tenant, 1))
            try:
                self._executor.submit(self._run_build, build)
            except BaseException as error:
                # The pool refused the build (shut down racing this submit):
                # fail the flight and unregister it, so no waiter ever hangs
                # on an event that will never be set and no admission slot
                # leaks.  The while loop then drains any remaining queue the
                # same way.
                self._settle_build_locked(build, ServiceClosedError(
                    f"worker pool rejected build {build.fingerprint[:12]}:"
                    f" {error}"
                ))
        self._g_queue_depth.set(
            sum(len(queue) for queue in self._queues.values()))
        if self._running_total == 0 and not self._queues:
            # Busy period over: the service clocks only measure fairness
            # within one contended stretch, so drop them rather than letting
            # history accumulate without bound.
            self._tenant_clock.clear()
            self._idle.notify_all()

    def _run_build(self, build: _QueuedBuild) -> None:
        flight = build.flight
        error: Optional[BaseException] = None
        try:
            self._counters["pipeline_runs"].inc()
            with get_tracer().span("service.build", parent=build.parent_span,
                                   tenant=flight.tenant,
                                   fingerprint=build.fingerprint[:12]):
                result = self.backend.build(build.workload, build.relations)
            flight.summary = result.summary
        except BaseException as caught:  # surfaced to every waiter
            error = caught
        with self._lock:
            self._settle_build_locked(build, error)
            self._dispatch_locked()

    def _settle_build_locked(self, build: _QueuedBuild,
                             error: Optional[BaseException]) -> None:
        """Settle one dispatched build: wake waiters, release its slot and
        keep every counter exact (dispatching the next build is the
        caller's move)."""
        flight = build.flight
        tenant = flight.tenant
        if error is not None:
            flight.error = error
        flight.event.set()
        self._flights.pop(build.fingerprint, None)
        self._running_total -= 1
        running = self._running_by_tenant.get(tenant, 1) - 1
        if running > 0:
            self._running_by_tenant[tenant] = running
        else:
            self._running_by_tenant.pop(tenant, None)
        pending = self._pending_by_tenant.get(tenant, 1) - 1
        if pending > 0:
            self._pending_by_tenant[tenant] = pending
        else:
            self._pending_by_tenant.pop(tenant, None)
        self._h_request.labels(tenant=tenant).observe(
            time.perf_counter() - build.submitted_at)
        if error is None:
            self._tenant_builds.labels(tenant=tenant, outcome="completed").inc()
        else:
            self._tenant_builds.labels(tenant=tenant, outcome="failed").inc()
            self._counters["pipeline_failures"].inc()
            logger.error("pipeline build %s for tenant %s failed: %s",
                         build.fingerprint[:12], tenant, error)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def stream(self, request: Union[ConstraintSet, str], relation: str,
               batch_size: int = DEFAULT_BATCH_SIZE,
               start_row: int = 1, stop_row: Optional[int] = None,
               timeout: Optional[float] = None,
               tenant: str = DEFAULT_TENANT) -> Iterator[Table]:
        """Stream a relation of a regenerated database in columnar batches.

        ``request`` is either a constraint set (resolved — warm or cold — via
        :meth:`submit`) or a fingerprint string of a previously-seen workload
        (store-only: raises :class:`ServiceError` when unknown, never runs
        the pipeline).  Resolution happens eagerly — an unknown fingerprint
        or a failed build raises at the call site, not at first iteration.
        Each call returns an independent cursor; concurrent consumers can
        shard a relation with ``start_row``/``stop_row``.  The cursor holds
        a store pin from the moment it is handed out until it is exhausted
        (or closed/collected): store GC never evicts an entry backing an
        in-flight stream.
        """
        handed_out = time.perf_counter()
        fingerprint, summary = self._resolve_summary(request, timeout)
        generator = self._generator(fingerprint, relation, summary)
        batches = generator.stream_range(start_row, stop_row, batch_size=batch_size)
        # Non-current span covering the cursor's whole lifetime (handout to
        # release): generators cross yields, so it must never leak into the
        # consumer's contextvar.
        stream_span = get_tracer().start_span(
            "service.stream", relation=relation, tenant=tenant,
            fingerprint=fingerprint[:12])

        def count_batch() -> None:
            self._counters["batches_streamed"].inc()

        def first_batch() -> None:
            self._h_ttfb.labels(tenant=tenant).observe(
                time.perf_counter() - handed_out)

        cursor = _PinnedCursor(self.store, fingerprint, batches,
                               on_batch=count_batch,
                               on_first_batch=first_batch,
                               on_release=stream_span.finish)
        self._cursors.add(cursor)
        return cursor

    def total_rows(self, request: Union[ConstraintSet, str], relation: str) -> int:
        """Rows the given relation regenerates to (without generating)."""
        return self._resolve_summary(request)[1].relation(relation).total_rows()

    def _resolve_summary(self, request: Union[ConstraintSet, str],
                         timeout: Optional[float] = None,
                         ) -> Tuple[str, DatabaseSummary]:
        """Resolve a request to ``(fingerprint, summary)``.

        A constraint set resolves — warm or cold — via :meth:`submit`; a
        fingerprint string is store-only and raises :class:`ServiceError`
        when unknown, never running the pipeline.
        """
        if isinstance(request, str):
            summary = self.store.get_summary(request)
            if summary is None:
                raise ServiceError(
                    f"no stored summary for fingerprint {request[:12]}…;"
                    " submit the workload first"
                )
            return request, summary
        ticket = self.submit(request)
        return ticket.fingerprint, ticket.result(timeout)

    # ------------------------------------------------------------------ #
    # regenerate-then-verify (pipelined execution over regenerated data)
    # ------------------------------------------------------------------ #
    def database(self, request: Union[ConstraintSet, str],
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 timeout: Optional[float] = None) -> Database:
        """A lazily regenerated :class:`Database` for the request's summary.

        Every relation is attached as a batch stream: nothing is generated
        until first scan, and pipelined consumers (the default
        :class:`~repro.engine.executor.Executor` mode) never materialise a
        relation however large the regenerated scale is.  The streams are
        backed by the service's shared per-``(fingerprint, relation)``
        generators — the same ones :meth:`stream` serves shards from — so
        repeated regenerate-then-verify calls pay the summary expansion
        setup once and their batches show up in the shared diagnostics.
        Scanning streams pin the store entry exactly like :meth:`stream`
        cursors do.
        """
        fingerprint, summary = self._resolve_summary(request, timeout)
        database = Database(self.schema, name=f"regen-{fingerprint[:12]}")
        for relation in summary.relations:
            generator = self._generator(fingerprint, relation, summary)

            def stream_factory(generator: TupleGenerator = generator,
                               ) -> Iterator[Table]:
                cursor = _PinnedCursor(
                    self.store, fingerprint,
                    generator.stream(batch_size=batch_size),
                )
                self._cursors.add(cursor)
                return cursor

            database.attach_stream(relation, stream_factory,
                                   row_count=generator.total_rows)
        return database

    def execute_workload(self, request: Union[ConstraintSet, str],
                         workload: Workload,
                         batch_size: int = DEFAULT_BATCH_SIZE,
                         mode: str = "pipelined",
                         timeout: Optional[float] = None,
                         ) -> List[AnnotatedQueryPlan]:
        """Execute an AQP workload over the request's regenerated database.

        This is the serving half of the paper's client/vendor loop: the
        vendor regenerates the database from the summary and replays the
        workload to produce AQPs, batch-at-a-time by default so the fact
        relations are never materialised.  Executor memory telemetry
        (``executor_peak_batch_rows`` and friends) lands in :meth:`stats`.
        """
        executor = Executor(self.database(request, batch_size, timeout), mode=mode)
        plans = executor.execute_workload(workload)
        self._observe_executor(executor, "workloads_executed")
        return plans

    def verify(self, request: Union[ConstraintSet, str],
               constraints: Optional[ConstraintSet] = None,
               batch_size: int = DEFAULT_BATCH_SIZE,
               mode: str = "pipelined",
               timeout: Optional[float] = None) -> SimilarityReport:
        """Volumetric-similarity check of the regenerated database.

        Evaluates ``constraints`` (defaulting to the request itself when it
        is a constraint set) against the regenerated data through the
        engine, streaming each denormalised view batch-at-a-time by default.
        """
        if constraints is None:
            if not isinstance(request, ConstraintSet):
                raise ServiceError(
                    "verify needs an explicit constraint set when the request"
                    " is a fingerprint"
                )
            constraints = request
        executor = Executor(self.database(request, batch_size, timeout), mode=mode)
        report = evaluate_with_executor(constraints, executor)
        self._observe_executor(executor, "verifications")
        return report

    def _observe_executor(self, executor: Executor, counter: str) -> None:
        stats = executor.stats
        self._counters[counter].inc()
        self._counters["executor_batches"].inc(stats.batches)
        self._counters["executor_peak_batch_rows"].set_max(stats.peak_batch_rows)

    def _generator(self, fingerprint: str, relation: str,
                   summary: DatabaseSummary) -> TupleGenerator:
        key = (fingerprint, relation)
        with self._lock:
            generator = self._generators.get(key)
            if generator is None:
                generator = TupleGenerator(summary.relation(relation))
                self._generators[key] = generator
            return generator

    # ------------------------------------------------------------------ #
    # store lifecycle
    # ------------------------------------------------------------------ #
    def gc(self) -> Dict[str, int]:
        """One store GC pass (TTL expiration + LRU eviction to caps).

        Safe to call any time: entries backing in-flight streams are pinned
        and survive.  Returns the store's compaction report.
        """
        report = self.store.compact()
        self._counters["gc_runs"].inc()
        if report["expired"] or report["evicted"]:
            logger.info("gc pass: expired=%d evicted=%d reclaimed=%dB",
                        report["expired"], report["evicted"],
                        report["reclaimed_bytes"])
        return report

    def _gc_loop(self) -> None:
        while not self._gc_stop.wait(self.gc_interval):
            try:
                self.gc()
            except Exception:  # pragma: no cover - GC must never kill serving
                pass

    # ------------------------------------------------------------------ #
    # idle-cursor reaping
    # ------------------------------------------------------------------ #
    def reap_idle_cursors(self, idle_seconds: Optional[float] = None) -> int:
        """Release the store pins of stream cursors idle past the bound.

        ``idle_seconds`` defaults to the service's ``cursor_idle_timeout``
        (when that is ``None`` and no override is given, this is a no-op).
        Returns the number of cursors reaped.  Safe against concurrent
        consumers: a cursor that resumes iterating after being reaped gets
        a :class:`ServiceError`, never a stale pin.
        """
        limit = self.cursor_idle_timeout if idle_seconds is None \
            else idle_seconds
        if limit is None or limit <= 0:
            return 0
        now = time.monotonic()
        reaped = sum(1 for cursor in list(self._cursors)
                     if cursor.reap_if_idle(now, limit))
        if reaped:
            self._counters["cursors_reaped"].inc(reaped)
            logger.info("reaped %d stream cursor(s) idle > %.1fs",
                        reaped, limit)
        return reaped

    def _reaper_loop(self) -> None:
        # Wake a few times per timeout so reclamation lag stays a fraction
        # of the knob, without busy-polling for long timeouts.
        interval = max(0.05, min(1.0, self.cursor_idle_timeout / 4.0))
        while not self._reaper_stop.wait(interval):
            try:
                self.reap_idle_cursors()
            except Exception:  # pragma: no cover - must never kill serving
                pass

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Serving counters plus the store's and LP solver's own counters.

        Flat ints only (monitoring-friendly), every value read from the
        metrics registry; :meth:`service_stats` adds the per-tenant
        breakdown and :attr:`registry` exposes the full labeled series
        (Prometheus/JSON export).
        """
        counters = {key: int(family.value())
                    for key, family in self._counters.items()}
        with self._lock:
            counters["queue_depth"] = sum(
                len(queue) for queue in self._queues.values()
            )
        self._g_queue_depth.set(counters["queue_depth"])
        # Custom backends need not wrap a solver-carrying pipeline; report
        # zeros rather than crashing the observability path.
        solver = getattr(getattr(self.backend, "pipeline", None), "solver", None)
        stats = getattr(solver, "stats", None)
        counters.update({
            "solver_components_solved": getattr(stats, "components_solved", 0),
            "solver_cache_hits": getattr(stats, "cache_hits", 0),
            "solver_cache_misses": getattr(stats, "cache_misses", 0),
        })
        counters.update(self.store.counters())
        return counters

    def _tenant_outcomes(self) -> Dict[str, Dict[str, int]]:
        """``{tenant: {outcome: count}}`` from the labeled tenant counter."""
        rows: Dict[str, Dict[str, int]] = {}
        for child in self._tenant_builds.children():
            tenant, outcome = child.labelvalues
            rows.setdefault(tenant, {})[outcome] = int(child.value())
        return rows

    def service_stats(self) -> ServiceStats:
        """Structured telemetry: flat counters plus per-tenant admission rows."""
        counters = self.stats()
        outcomes = self._tenant_outcomes()

        def quantiles(histogram, name: str) -> Tuple[float, float]:
            summary = histogram.labels(tenant=name).summary()
            return summary.get("p50", 0.0), summary.get("p99", 0.0)

        with self._lock:
            names = set(outcomes) | set(self._queues) \
                | set(self._running_by_tenant)
            rows = []
            for name in sorted(names):
                seen = outcomes.get(name, {})
                e2e_p50, e2e_p99 = quantiles(self._h_request, name)
                ttfb_p50, ttfb_p99 = quantiles(self._h_ttfb, name)
                rows.append(TenantStats(
                    tenant=name,
                    queued=len(self._queues.get(name, ())),
                    running=self._running_by_tenant.get(name, 0),
                    admitted=seen.get("admitted", 0),
                    rejected=seen.get("rejected", 0),
                    completed=seen.get("completed", 0),
                    failed=seen.get("failed", 0),
                    e2e_p50=e2e_p50, e2e_p99=e2e_p99,
                    ttfb_p50=ttfb_p50, ttfb_p99=ttfb_p99,
                ))
            queue_depth = sum(len(queue) for queue in self._queues.values())
        return ServiceStats(counters=counters, tenants=tuple(rows),
                            queue_depth=queue_depth)

    def close(self, timeout: Optional[float] = None) -> None:
        """Drain the cold-build queue, finish in-flight builds and release
        the worker pool (new cold submissions now fail fast with
        :class:`~repro.errors.ServiceClosedError`; warm serving and
        streaming keep working)."""
        with self._idle:
            self._closed = True
            self._idle.wait_for(
                lambda: self._running_total == 0 and not self._queues,
                timeout,
            )
        self._gc_stop.set()
        if self._gc_thread is not None:
            self._gc_thread.join(timeout=5.0)
        self._reaper_stop.set()
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=5.0)
        self._executor.shutdown(wait=True)
        logger.info("service closed (engine=%s)", self.engine)

    def __enter__(self) -> "RegenerationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
