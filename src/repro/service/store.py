"""Content-addressed persistence for database summaries and LP solutions.

A :class:`SummaryStore` is the durable half of the serving scenario: one
process builds a summary (paying the LP solves), every other process — and
every later restart — serves it straight from disk.  Layout, rooted at the
store directory::

    <root>/
      store.json                      format marker {"format": 1}
      summaries/<fp[:2]>/<fp>.json.gz one entry per workload fingerprint
      components/<k[:2]>/<k>.json.gz  one entry per LP component solution

Entries are gzipped JSON written atomically (temp file + ``os.replace``), so
a crashed writer can never leave a half-visible entry, and concurrent writers
of the same content-addressed entry are idempotent.  Corrupted or partially
written files are detected on read (gzip CRC, JSON parse, payload shape and
fingerprint echo) and rejected with :class:`~repro.errors.SummaryStoreError`
on the strict path or treated as misses on the serving path.

Reads go through an LRU-bounded in-memory layer, so a serving process pays
the disk round-trip once per hot entry.  A store with ``root=None`` keeps the
same interface but lives purely in memory (useful for tests and ephemeral
services).
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import SummaryStoreError
from repro.lp.model import LPSolution
from repro.lp.solver import LRUSolutionCache, SolutionCache
from repro.summary.relation_summary import DatabaseSummary

#: On-disk format version; bump on incompatible layout/payload changes.
STORE_FORMAT = 1

#: Default capacity of the in-memory summary layer of a disk-backed store.
DEFAULT_MEMORY_ENTRIES = 64

#: Default capacity of the in-memory layer of :class:`StoreSolutionCache`.
DEFAULT_COMPONENT_MEMORY = 256


class SummaryStore:
    """Persistent, content-addressed store of regeneration artefacts.

    Parameters
    ----------
    root:
        Store directory (created if missing), or ``None`` for a memory-only
        store with the same interface.
    memory_entries:
        Capacity of the in-memory summary layer.  Ignored (unbounded) when
        ``root`` is ``None`` — memory is then the only copy.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.root = Path(root) if root is not None else None
        # The in-memory layer is unbounded for memory-only stores (it is the
        # only copy) and LRU-bounded over a disk backing.
        self._summaries = LRUSolutionCache(
            None if self.root is None else memory_entries
        )
        self._metas: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "summary_hits": 0,
            "summary_misses": 0,
            "corrupt_entries": 0,
        }
        # Running disk accounting, maintained by our own writes so the hot
        # paths never re-walk the directory tree.  Initialised with one scan
        # at open; writes by *other* processes after that are not reflected
        # until the store is reopened (monitoring data, not a ledger).
        self._disk_bytes = 0
        self._disk_entries = {"summaries": 0, "components": 0}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._check_format()
            for kind in ("summaries", "components"):
                base = self.root / kind
                if base.is_dir():
                    for path in base.glob("*/*.json.gz"):
                        self._disk_bytes += path.stat().st_size
                        self._disk_entries[kind] += 1

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #
    def _check_format(self) -> None:
        marker = self.root / "store.json"
        if marker.exists():
            try:
                meta = json.loads(marker.read_text())
                found = int(meta["format"])
            except (ValueError, TypeError, KeyError) as error:
                raise SummaryStoreError(
                    f"store marker {marker} is unreadable: {error}"
                ) from error
            if found != STORE_FORMAT:
                raise SummaryStoreError(
                    f"store {self.root} has format {found}, expected {STORE_FORMAT}"
                )
            return
        self._atomic_write(marker, json.dumps({"format": STORE_FORMAT}).encode())

    def _entry_path(self, kind: str, key: str) -> Path:
        if self.root is None:
            raise SummaryStoreError("memory-only store has no entry files")
        return self.root / kind / key[:2] / f"{key}.json.gz"

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        """Write ``payload`` so the file is either absent or complete."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _write_entry(self, kind: str, key: str, payload: Mapping[str, object]) -> None:
        if self.root is None:
            return
        blob = gzip.compress(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
        )
        path = self._entry_path(kind, key)
        with self._lock:
            try:
                previous = path.stat().st_size
            except OSError:
                previous = None
            self._atomic_write(path, blob)
            self._disk_bytes += len(blob) - (previous or 0)
            if previous is None:
                self._disk_entries[kind] += 1

    def _read_entry(self, kind: str, key: str) -> Dict[str, object]:
        """Strict read: raise :class:`SummaryStoreError` on anything that is
        not a complete, well-formed entry of the current format."""
        path = self._entry_path(kind, key)
        if not path.exists():
            raise SummaryStoreError(f"store has no {kind} entry {key}")
        try:
            payload = json.loads(gzip.decompress(path.read_bytes()).decode("utf-8"))
        except (OSError, EOFError, ValueError) as error:
            raise SummaryStoreError(
                f"{kind} entry {key} is corrupted or partially written: {error}"
            ) from error
        if not isinstance(payload, dict) or payload.get("format") != STORE_FORMAT \
                or payload.get("key") != key:
            raise SummaryStoreError(
                f"{kind} entry {key} has an unexpected payload shape or format"
            )
        return payload

    def _iter_keys(self, kind: str) -> Iterator[str]:
        if self.root is None:
            return
        base = self.root / kind
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.json.gz")):
            yield path.name[: -len(".json.gz")]

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def put_summary(self, fingerprint: str, summary: DatabaseSummary,
                    meta: Optional[Mapping[str, object]] = None) -> None:
        """Persist a summary under its workload fingerprint."""
        entry_meta = dict(meta or {})
        entry_meta.setdefault("total_rows", int(summary.total_rows()))
        entry_meta.setdefault("nbytes", int(summary.nbytes()))
        self._summaries.put(fingerprint, summary)
        with self._lock:
            self._metas[fingerprint] = entry_meta
        self._write_entry("summaries", fingerprint, {
            "format": STORE_FORMAT,
            "key": fingerprint,
            "meta": entry_meta,
            "summary": summary.to_dict(),
        })

    def get_summary(self, fingerprint: str) -> Optional[DatabaseSummary]:
        """Serving-path read: ``None`` on miss *and* on corrupted entries
        (counted in ``stats['corrupt_entries']``), so callers fall back to a
        rebuild that overwrites the bad file."""
        cached = self._summaries.get(fingerprint)
        if cached is not None:
            self.stats["summary_hits"] += 1
            return cached  # type: ignore[return-value]
        if self.root is None or not self._entry_path("summaries", fingerprint).exists():
            self.stats["summary_misses"] += 1
            return None
        try:
            summary = self.read_summary(fingerprint)
        except SummaryStoreError:
            self.stats["corrupt_entries"] += 1
            self.stats["summary_misses"] += 1
            return None
        self.stats["summary_hits"] += 1
        return summary

    def read_summary(self, fingerprint: str) -> DatabaseSummary:
        """Strict read of one summary entry; raises on missing/corrupt."""
        payload = self._read_entry("summaries", fingerprint)
        try:
            summary = DatabaseSummary.from_dict(payload["summary"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise SummaryStoreError(
                f"summary entry {fingerprint} does not decode: {error}"
            ) from error
        self._summaries.put(fingerprint, summary)
        with self._lock:
            meta = payload.get("meta")
            if isinstance(meta, dict):
                self._metas[fingerprint] = meta
        return summary

    def has_summary(self, fingerprint: str) -> bool:
        """``True`` when a summary entry exists (memory or disk)."""
        if self._summaries.get(fingerprint) is not None:
            return True
        return self.root is not None and \
            self._entry_path("summaries", fingerprint).exists()

    def summary_fingerprints(self) -> List[str]:
        """All stored workload fingerprints."""
        keys = set(self._summaries.keys())
        keys.update(self._iter_keys("summaries"))
        return sorted(keys)

    def entries(self) -> List[Dict[str, object]]:
        """Per-summary metadata for inspection tooling."""
        out: List[Dict[str, object]] = []
        for fingerprint in self.summary_fingerprints():
            with self._lock:
                meta = self._metas.get(fingerprint)
            if meta is None and self.root is not None:
                try:
                    meta = self._read_entry("summaries", fingerprint).get("meta", {})
                except SummaryStoreError:
                    meta = {"corrupt": True}
            out.append({"fingerprint": fingerprint, **(meta or {})})
        return out

    # ------------------------------------------------------------------ #
    # LP component solutions
    # ------------------------------------------------------------------ #
    def put_component(self, key: str, solution: LPSolution) -> None:
        """Persist one LP component solution under its canonical key."""
        self._write_entry("components", key, {
            "format": STORE_FORMAT,
            "key": key,
            "values": [int(v) for v in solution.values],
            "feasible": bool(solution.feasible),
            "method": solution.method,
            "max_violation": float(solution.max_violation),
        })

    def get_component(self, key: str) -> Optional[LPSolution]:
        """Read one component solution; ``None`` on miss or corruption."""
        if self.root is None or not self._entry_path("components", key).exists():
            return None
        try:
            payload = self._read_entry("components", key)
            values = np.asarray(payload["values"], dtype=np.int64)
            return LPSolution(
                values=values,
                feasible=bool(payload["feasible"]),
                method=str(payload["method"]),
                max_violation=float(payload["max_violation"]),
                solve_seconds=0.0,
            )
        except (SummaryStoreError, KeyError, TypeError, ValueError):
            self.stats["corrupt_entries"] += 1
            return None

    def solution_cache(self, memory_size: int = DEFAULT_COMPONENT_MEMORY) -> "StoreSolutionCache":
        """A solver cache backend persisting through this store.

        The memory layer is never disabled (a caller tuning its plain LRU to
        ``cache_size=0`` still gets the persistent backend, with a minimal
        hot layer in front of it).
        """
        return StoreSolutionCache(self, memory_size=max(1, memory_size))

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def store_bytes(self) -> int:
        """Total bytes of all entry files on disk (0 for memory-only).

        Served from the running counter — no directory walk; bytes written
        by other processes appear after reopening the store.
        """
        with self._lock:
            return self._disk_bytes

    def counters(self) -> Dict[str, int]:
        """Hit/miss/corruption counters plus current occupancy."""
        with self._lock:
            summaries = self._disk_entries["summaries"]
            components = self._disk_entries["components"]
            bytes_on_disk = self._disk_bytes
        if self.root is None:
            summaries = len(self._summaries)
        return {
            **self.stats,
            "summaries": summaries,
            "components": components,
            "store_bytes": bytes_on_disk,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return f"SummaryStore({where!r}, {len(self.summary_fingerprints())} summaries)"


class StoreSolutionCache(SolutionCache):
    """Two-level LP solution cache: in-memory LRU over a summary store.

    Plugs into :class:`~repro.lp.solver.ParallelLPSolver` as ``cache_backend``
    so component solutions survive restarts and are shared across every
    process that mounts the same store directory.
    """

    def __init__(self, store: SummaryStore,
                 memory_size: int = DEFAULT_COMPONENT_MEMORY) -> None:
        self.store = store
        self.capacity = memory_size
        self._memory = LRUSolutionCache(memory_size)
        self.disk_hits = 0

    def get(self, key: str) -> Optional[LPSolution]:
        cached = self._memory.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        solution = self.store.get_component(key)
        if solution is not None:
            self.disk_hits += 1
            self._memory.put(key, solution)
        return solution

    def put(self, key: str, solution: LPSolution) -> None:
        self._memory.put(key, solution)
        self.store.put_component(key, solution)

    def clear(self) -> None:
        # Only the in-memory layer is dropped; the persistent entries are the
        # shared source of truth and stay available to other processes.
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
