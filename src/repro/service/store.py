"""Content-addressed persistence for database summaries and LP solutions.

A :class:`SummaryStore` is the durable half of the serving scenario: one
process builds a summary (paying the LP solves), every other process — and
every later restart — serves it straight from disk.  Layout, rooted at the
store directory::

    <root>/
      store.json                      format marker {"format": 1}
      summaries/<fp[:2]>/<fp>.json.gz one entry per workload fingerprint
      summaries/<fp[:2]>/<fp>.touch   zero-byte recency marker (mtime = last use)
      components/<k[:2]>/<k>.json.gz  one entry per LP component solution
      components/<k[:2]>/<k>.touch    zero-byte recency marker

Entries are gzipped JSON written atomically (temp file + ``os.replace``), so
a crashed writer can never leave a half-visible entry, and concurrent writers
of the same content-addressed entry are idempotent.  Corrupted or partially
written files are detected on read (gzip CRC, JSON parse, payload shape and
fingerprint echo) and rejected with :class:`~repro.errors.SummaryStoreError`
on the strict path or treated as misses on the serving path.

Reads go through an LRU-bounded in-memory layer, so a serving process pays
the disk round-trip once per hot entry.  A store with ``root=None`` keeps the
same interface but lives purely in memory (useful for tests and ephemeral
services).

Lifecycle: a store can be bounded with ``max_store_bytes`` / ``max_entries``
/ ``ttl_seconds``.  :meth:`compact` is the GC pass — it drops entries whose
last use is older than the TTL, then evicts strictly least-recently-used
entries until the store is back under its caps.  Recency is tracked in
zero-byte ``.touch`` sidecar files (their mtime is the last-used timestamp),
so every process mounting a shared store directory sees the same LRU order.
Entries :meth:`pin`-ned by a reader (e.g. an in-flight tuple stream) are
never expired or evicted while the pin is held.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import SummaryStoreError
from repro.lp.model import LPSolution
from repro.lp.solver import LRUSolutionCache, SolutionCache
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as trace_span, tracing_active
from repro.summary.relation_summary import DatabaseSummary

logger = get_logger("service.store")

#: On-disk format version; bump on incompatible layout/payload changes.
STORE_FORMAT = 1

#: Default capacity of the in-memory summary layer of a disk-backed store.
DEFAULT_MEMORY_ENTRIES = 64

#: Default capacity of the in-memory layer of :class:`StoreSolutionCache`.
DEFAULT_COMPONENT_MEMORY = 256

#: Suffix of the per-entry recency sidecar files.
TOUCH_SUFFIX = ".touch"

#: Sentinel distinguishing "use the store's configured value" from an
#: explicit ``None`` (= unlimited) override in :meth:`SummaryStore.compact`.
_UNSET = object()


class SummaryStore:
    """Persistent, content-addressed store of regeneration artefacts.

    Parameters
    ----------
    root:
        Store directory (created if missing), or ``None`` for a memory-only
        store with the same interface.
    memory_entries:
        Capacity of the in-memory summary layer.  Ignored (unbounded) when
        ``root`` is ``None`` — memory is then the only copy.
    max_store_bytes:
        Total size cap (entry payload bytes, summaries + components).
        :meth:`compact` evicts LRU-first until the store fits; a fresh
        ``put_summary`` triggers an opportunistic compaction when the cap is
        exceeded.  ``None`` disables the cap.
    max_entries:
        Cap on the number of *summary* entries (components are bounded by
        ``max_store_bytes`` only).  ``None`` disables the cap.
    ttl_seconds:
        Entries whose last use is older than this are dropped by
        :meth:`compact`.  ``None`` disables expiration.
    registry:
        :class:`~repro.obs.metrics.MetricsRegistry` backing the store's
        ``repro_store_*`` metrics (hit/miss/corruption/GC counters, occupancy
        gauges, get/put/compact latency histograms).  A private registry is
        created when omitted; the legacy ``stats`` dict is a read-only view
        over these counters.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None,
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 max_store_bytes: Optional[int] = None,
                 max_entries: Optional[int] = None,
                 ttl_seconds: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        for name, value in (("max_store_bytes", max_store_bytes),
                            ("max_entries", max_entries),
                            ("ttl_seconds", ttl_seconds)):
            if value is not None and value < 0:
                raise SummaryStoreError(f"{name} must be non-negative (or None)")
        self.root = Path(root) if root is not None else None
        # Plain-string root for the per-read _touch fast path: building the
        # sidecar path with os.path.join is several times cheaper than three
        # chained pathlib joins, and _touch runs on every warm read.
        self._root_str = str(self.root) if self.root is not None else None
        self.max_store_bytes = max_store_bytes
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        # The in-memory layer is unbounded for memory-only stores (it is the
        # only copy) and LRU-bounded over a disk backing.
        self._summaries = LRUSolutionCache(
            None if self.root is None else memory_entries
        )
        self._metas: Dict[str, Dict[str, object]] = {}
        self._lock = threading.Lock()
        # Optional mutation journal (the cluster change log).  When attached
        # via attach_journal(), every completed entry write and delete is
        # appended as ``journal.append(op, kind, key, payload)`` so followers
        # can replay this store's history.  ``None`` (the default) keeps
        # single-node stores on the exact pre-cluster code path.
        self._journal = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_hits = self.registry.counter(
            "repro_store_summary_hits_total",
            "Summary reads served from memory or disk")
        self._c_misses = self.registry.counter(
            "repro_store_summary_misses_total",
            "Summary reads that found no usable entry")
        self._c_corrupt = self.registry.counter(
            "repro_store_corrupt_entries_total",
            "Entries rejected on read (gzip/JSON/shape validation)")
        self._c_evictions = self.registry.counter(
            "repro_store_evictions_total",
            "Entries removed by LRU eviction to the size/entry caps")
        self._c_expirations = self.registry.counter(
            "repro_store_expirations_total", "Entries removed by TTL expiry")
        self._g_bytes = self.registry.gauge(
            "repro_store_bytes", "Current payload bytes held by the store")
        self._g_entries = self.registry.gauge(
            "repro_store_entries", "Current entry counts by kind",
            labelnames=("kind",))
        self._h_get = self.registry.histogram(
            "repro_store_get_seconds", "Latency of get_summary calls")
        self._h_put = self.registry.histogram(
            "repro_store_put_seconds", "Latency of put_summary calls")
        self._h_compact = self.registry.histogram(
            "repro_store_compact_seconds", "Latency of compact (GC) passes")
        #: Refcounted pins: ``{fingerprint: count}``.  Pinned summaries are
        #: immune to TTL expiration and LRU eviction while the pin is held.
        self._pins: Dict[str, int] = {}
        # In-memory recency ledger ``(kind, key) -> last_used_at``.  For a
        # disk store the ``.touch`` files are the cross-process source of
        # truth; this dict is the memory-only store's only record.
        self._last_used: Dict[Tuple[str, str], float] = {}
        # Memory-only occupancy: component payloads and per-entry size
        # estimates (a disk store accounts real file sizes instead).
        self._mem_components: Dict[str, LPSolution] = {}
        self._entry_sizes: Dict[Tuple[str, str], int] = {}
        self._memory_bytes = 0
        # Running disk accounting, maintained by our own writes so the hot
        # paths never re-walk the directory tree.  Initialised with one scan
        # at open; writes by *other* processes after that are not reflected
        # until the store is reopened or compacted (monitoring data, not a
        # ledger).
        self._disk_bytes = 0
        self._disk_entries = {"summaries": 0, "components": 0}
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._check_format()
            for kind in ("summaries", "components"):
                base = self.root / kind
                if base.is_dir():
                    for path in base.glob("*/*.json.gz"):
                        self._disk_bytes += path.stat().st_size
                        self._disk_entries[kind] += 1

    # ------------------------------------------------------------------ #
    # layout helpers
    # ------------------------------------------------------------------ #
    def _check_format(self) -> None:
        marker = self.root / "store.json"
        if marker.exists():
            try:
                meta = json.loads(marker.read_text())
                found = int(meta["format"])
            except (ValueError, TypeError, KeyError) as error:
                raise SummaryStoreError(
                    f"store marker {marker} is unreadable: {error}"
                ) from error
            if found != STORE_FORMAT:
                raise SummaryStoreError(
                    f"store {self.root} has format {found}, expected {STORE_FORMAT}"
                )
            return
        self._atomic_write(marker, json.dumps({"format": STORE_FORMAT}).encode())

    def _entry_path(self, kind: str, key: str) -> Path:
        if self.root is None:
            raise SummaryStoreError("memory-only store has no entry files")
        return self.root / kind / key[:2] / f"{key}.json.gz"

    def _touch_path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}{TOUCH_SUFFIX}"

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        """Write ``payload`` so the file is either absent or complete."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _touch(self, kind: str, key: str, now: Optional[float] = None) -> None:
        """Record a use of ``(kind, key)`` — in memory, and for a disk store
        in the entry's ``.touch`` sidecar so other processes see it too."""
        stamp = time.time() if now is None else now
        # The whole update happens under the lock so a concurrent GC pass
        # (whose deletions re-check recency under the same lock) can never
        # interleave between the ledger update and the sidecar utime.
        with self._lock:
            self._last_used[(kind, key)] = stamp
            if self._root_str is None:
                return
            # Hot path: the sidecar exists for every entry this store wrote,
            # so build its path as a plain string (pathlib joins are ~4x the
            # cost of the utime itself) and fall back to the Path-based
            # creation branch only when utime fails.
            try:
                os.utime(os.path.join(self._root_str, kind, key[:2],
                                      key + TOUCH_SUFFIX), (stamp, stamp))
            except OSError:
                # No sidecar yet (legacy entry) — create one, but only for
                # an entry that actually exists: resurrecting a sidecar for
                # an entry another process evicted would leak orphan files.
                if not self._entry_path(kind, key).exists():
                    return
                touch = self._touch_path(kind, key)
                try:
                    touch.parent.mkdir(parents=True, exist_ok=True)
                    touch.touch()
                    os.utime(touch, (stamp, stamp))
                except OSError:  # pragma: no cover - recency is best-effort
                    pass

    def _last_used_at(self, kind: str, key: str) -> Optional[float]:
        """Best-effort last-use timestamp of an entry (``None`` if unknown)."""
        if self.root is not None:
            try:
                return self._touch_path(kind, key).stat().st_mtime
            except OSError:
                try:
                    return self._entry_path(kind, key).stat().st_mtime
                except OSError:
                    pass
        with self._lock:
            return self._last_used.get((kind, key))

    def _write_entry(self, kind: str, key: str, payload: Mapping[str, object]) -> None:
        if self.root is None:
            return
        blob = gzip.compress(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
        )
        path = self._entry_path(kind, key)
        with self._lock:
            try:
                previous = path.stat().st_size
            except OSError:
                previous = None
            self._atomic_write(path, blob)
            # Overwrites replace the old file: subtract its size so the
            # running byte counter never double-counts, and only a first
            # write counts as a new entry.
            self._disk_bytes += len(blob) - (previous or 0)
            if previous is None:
                self._disk_entries[kind] += 1
            # Journal the mutation under the same lock, so the change log
            # preserves this store's apply order (a delete scanning the same
            # key serialises behind us on self._lock).
            if self._journal is not None:
                self._journal.append("put", kind, key, payload)

    def _account_memory_entry(self, kind: str, key: str, size: int) -> None:
        """Memory-only occupancy ledger (mirrors the disk byte counter)."""
        with self._lock:
            previous = self._entry_sizes.get((kind, key), 0)
            self._entry_sizes[(kind, key)] = size
            self._memory_bytes += size - previous

    def _read_entry(self, kind: str, key: str) -> Dict[str, object]:
        """Strict read: raise :class:`SummaryStoreError` on anything that is
        not a complete, well-formed entry of the current format."""
        path = self._entry_path(kind, key)
        if not path.exists():
            raise SummaryStoreError(f"store has no {kind} entry {key}")
        try:
            payload = json.loads(gzip.decompress(path.read_bytes()).decode("utf-8"))
        except (OSError, EOFError, ValueError) as error:
            raise SummaryStoreError(
                f"{kind} entry {key} is corrupted or partially written: {error}"
            ) from error
        if not isinstance(payload, dict) or payload.get("format") != STORE_FORMAT \
                or payload.get("key") != key:
            raise SummaryStoreError(
                f"{kind} entry {key} has an unexpected payload shape or format"
            )
        return payload

    def _iter_keys(self, kind: str) -> Iterator[str]:
        if self.root is None:
            if kind == "components":
                yield from sorted(self._mem_components)
            return
        base = self.root / kind
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.json.gz")):
            yield path.name[: -len(".json.gz")]

    # ------------------------------------------------------------------ #
    # replication hooks (the repro.cluster layer builds on these)
    # ------------------------------------------------------------------ #
    def attach_journal(self, journal) -> None:
        """Attach a mutation journal (e.g. a cluster change log).

        ``journal.append(op, kind, key, payload)`` is called for every
        completed entry write (``op="put"``, with the full on-disk payload)
        and delete (``op="delete"``, payload ``None``) — including deletes
        performed by :meth:`compact`.  Pass ``None`` to detach.
        """
        self._journal = journal

    def entry_payload(self, kind: str, key: str) -> Dict[str, object]:
        """Strict raw payload of one entry, exactly as stored on disk.

        For a memory-only store the payload is re-encoded from the in-memory
        object.  Raises :class:`SummaryStoreError` on missing/corrupt."""
        if kind not in ("summaries", "components"):
            raise SummaryStoreError(f"unknown entry kind {kind!r}")
        if self.root is not None:
            return self._read_entry(kind, key)
        if kind == "summaries":
            summary = self._summaries.get(key)
            if summary is None:
                raise SummaryStoreError(f"store has no {kind} entry {key}")
            with self._lock:
                meta = dict(self._metas.get(key, {}))
            return {"format": STORE_FORMAT, "key": key, "meta": meta,
                    "summary": summary.to_dict()}
        with self._lock:
            solution = self._mem_components.get(key)
        if solution is None:
            raise SummaryStoreError(f"store has no {kind} entry {key}")
        return {"format": STORE_FORMAT, "key": key,
                "values": [int(v) for v in solution.values],
                "feasible": bool(solution.feasible),
                "method": solution.method,
                "max_violation": float(solution.max_violation)}

    def apply_entry(self, kind: str, key: str,
                    payload: Mapping[str, object]) -> None:
        """Apply one replicated ``put`` payload (a follower replaying the
        leader's change log).  The payload shape is validated the same way
        :meth:`_read_entry` validates a disk file, so a corrupt record can
        never be installed locally."""
        if kind not in ("summaries", "components"):
            raise SummaryStoreError(f"unknown entry kind {kind!r}")
        if not isinstance(payload, Mapping) \
                or payload.get("format") != STORE_FORMAT \
                or payload.get("key") != key:
            raise SummaryStoreError(
                f"replicated {kind} entry {key} has an unexpected payload"
                " shape or format")
        if kind == "summaries":
            try:
                summary = DatabaseSummary.from_dict(payload["summary"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError) as error:
                raise SummaryStoreError(
                    f"replicated summary entry {key} does not decode: {error}"
                ) from error
            self._summaries.put(key, summary)
            meta = payload.get("meta")
            with self._lock:
                self._metas[key] = dict(meta) if isinstance(meta, dict) else {}
            self._write_entry(kind, key, payload)
            if self.root is None:
                self._account_memory_entry(kind, key, int(summary.nbytes()))
        else:
            try:
                solution = LPSolution(
                    values=np.asarray(payload["values"], dtype=np.int64),
                    feasible=bool(payload["feasible"]),
                    method=str(payload["method"]),
                    max_violation=float(payload["max_violation"]),
                    solve_seconds=0.0,
                )
            except (KeyError, TypeError, ValueError) as error:
                raise SummaryStoreError(
                    f"replicated component entry {key} does not decode: {error}"
                ) from error
            if self.root is None:
                with self._lock:
                    self._mem_components[key] = solution
                self._account_memory_entry(
                    "components", key, int(solution.values.nbytes) + 64)
            else:
                self._write_entry(kind, key, payload)
        self._touch(kind, key)

    def delete_entry(self, kind: str, key: str) -> bool:
        """Remove one entry by key (the cluster protocol's ``delete``).

        Returns ``True`` when an entry was removed, ``False`` when it did
        not exist.  Unlike :meth:`compact` this ignores recency — it is an
        explicit deletion, not a GC decision — but still keeps the byte and
        entry counters exact."""
        if kind not in ("summaries", "components"):
            raise SummaryStoreError(f"unknown entry kind {kind!r}")
        if self.root is not None:
            try:
                size = self._entry_path(kind, key).stat().st_size
            except OSError:
                return False
        else:
            with self._lock:
                if kind == "summaries":
                    exists = any(k == key for k in self._summaries.keys())
                else:
                    exists = key in self._mem_components
                size = self._entry_sizes.get((kind, key), 0)
            if not exists:
                return False
        return self._delete_entry(kind, key, size)

    def component_keys(self) -> List[str]:
        """All stored LP component solution keys."""
        return sorted(self._iter_keys("components"))

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> Dict[str, int]:
        """Legacy counter view, now read from the metrics registry."""
        return {
            "summary_hits": int(self._c_hits.value()),
            "summary_misses": int(self._c_misses.value()),
            "corrupt_entries": int(self._c_corrupt.value()),
            "evictions": int(self._c_evictions.value()),
            "expirations": int(self._c_expirations.value()),
        }

    def put_summary(self, fingerprint: str, summary: DatabaseSummary,
                    meta: Optional[Mapping[str, object]] = None) -> None:
        """Persist a summary under its workload fingerprint."""
        started = time.perf_counter()
        if tracing_active():
            with trace_span("store.put", fingerprint=fingerprint[:12]):
                self._put_summary(fingerprint, summary, meta)
        else:
            self._put_summary(fingerprint, summary, meta)
        self._h_put.observe(time.perf_counter() - started)

    def _put_summary(self, fingerprint: str, summary: DatabaseSummary,
                     meta: Optional[Mapping[str, object]]) -> None:
        entry_meta = dict(meta or {})
        entry_meta.setdefault("total_rows", int(summary.total_rows()))
        entry_meta.setdefault("nbytes", int(summary.nbytes()))
        self._summaries.put(fingerprint, summary)
        with self._lock:
            self._metas[fingerprint] = entry_meta
        self._write_entry("summaries", fingerprint, {
            "format": STORE_FORMAT,
            "key": fingerprint,
            "meta": entry_meta,
            "summary": summary.to_dict(),
        })
        if self.root is None:
            self._account_memory_entry("summaries", fingerprint,
                                       int(summary.nbytes()))
        self._touch("summaries", fingerprint)
        # Opportunistic GC: a store over its size caps compacts right after
        # the write that pushed it over (TTL-only stores are compacted by
        # the service's GC thread or an explicit compact()/CLI gc instead).
        # The fresh entry is pinned so churn can never evict what was just
        # written — strictly-LRU order among the *other* entries still holds.
        if self._over_size_caps():
            with self.pinned(fingerprint):
                self.compact()

    def get_summary(self, fingerprint: str) -> Optional[DatabaseSummary]:
        """Serving-path read: ``None`` on miss *and* on corrupted entries
        (counted in ``stats['corrupt_entries']``), so callers fall back to a
        rebuild that overwrites the bad file."""
        started = time.perf_counter()
        if tracing_active():
            with trace_span("store.get", fingerprint=fingerprint[:12]) as span:
                summary = self._get_summary(fingerprint)
                span.set_attribute("hit", summary is not None)
        else:
            summary = self._get_summary(fingerprint)
        self._h_get.observe(time.perf_counter() - started)
        return summary

    def _get_summary(self, fingerprint: str) -> Optional[DatabaseSummary]:
        cached = self._summaries.get(fingerprint)
        if cached is not None:
            self._c_hits.inc()
            self._touch("summaries", fingerprint)
            return cached  # type: ignore[return-value]
        if self.root is None or not self._entry_path("summaries", fingerprint).exists():
            self._c_misses.inc()
            return None
        try:
            summary = self.read_summary(fingerprint)
        except SummaryStoreError as error:
            self._c_corrupt.inc()
            self._c_misses.inc()
            logger.warning("summary entry %s rejected on read: %s",
                           fingerprint[:12], error)
            return None
        self._c_hits.inc()
        return summary

    def read_summary(self, fingerprint: str) -> DatabaseSummary:
        """Strict read of one summary entry; raises on missing/corrupt."""
        payload = self._read_entry("summaries", fingerprint)
        try:
            summary = DatabaseSummary.from_dict(payload["summary"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as error:
            raise SummaryStoreError(
                f"summary entry {fingerprint} does not decode: {error}"
            ) from error
        self._summaries.put(fingerprint, summary)
        with self._lock:
            meta = payload.get("meta")
            if isinstance(meta, dict):
                self._metas[fingerprint] = meta
        self._touch("summaries", fingerprint)
        return summary

    def summary_meta(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """Metadata of one summary entry, or ``None`` when absent.

        A pure peek like :meth:`has_summary`: reads the entry file when the
        meta is not already cached, but never refreshes recency."""
        with self._lock:
            meta = self._metas.get(fingerprint)
            if meta is not None:
                return dict(meta)
        if self.root is None or not self._entry_path("summaries", fingerprint).exists():
            return None
        try:
            payload = self._read_entry("summaries", fingerprint)
        except SummaryStoreError:
            return None
        meta = payload.get("meta")
        meta = dict(meta) if isinstance(meta, dict) else {}
        with self._lock:
            self._metas[fingerprint] = dict(meta)
        return meta

    def link_parent(self, fingerprint: str, parent: str) -> None:
        """Record epoch lineage: mark ``parent`` as the stored epoch
        ``fingerprint`` was incrementally derived from.

        Rewrites the entry with the updated metadata (atomically, and
        journalled like any other put so followers replicate the link).
        A no-op when the link is already recorded; raises
        :class:`SummaryStoreError` when ``fingerprint`` is not stored.
        """
        summary = self.get_summary(fingerprint)
        if summary is None:
            raise SummaryStoreError(
                f"cannot link lineage: store has no summary {fingerprint}"
            )
        meta = self.summary_meta(fingerprint) or {}
        if meta.get("parent_fingerprint") == parent:
            return
        meta["parent_fingerprint"] = parent
        self._put_summary(fingerprint, summary, meta)

    def parent_fingerprint(self, fingerprint: str) -> Optional[str]:
        """The parent epoch of a summary (``None`` for root epochs)."""
        meta = self.summary_meta(fingerprint)
        if meta is None:
            return None
        parent = meta.get("parent_fingerprint")
        return str(parent) if parent else None

    def list_lineage(self, fingerprint: str) -> List[Dict[str, object]]:
        """The epoch chain ending at ``fingerprint``, newest first.

        Follows ``parent_fingerprint`` links recorded in entry metadata
        (written by incremental builds — see
        :meth:`~repro.service.service.RegenerationService.resummarize`).
        Each element carries the entry's metadata plus ``fingerprint`` and
        ``present`` (``False`` for an ancestor that has since been removed,
        which also terminates the walk).  Cycles are broken defensively.
        """
        chain: List[Dict[str, object]] = []
        seen = set()
        current: Optional[str] = fingerprint
        while current is not None and current not in seen:
            seen.add(current)
            meta = self.summary_meta(current)
            entry: Dict[str, object] = {**(meta or {}), "fingerprint": current,
                                        "present": meta is not None}
            chain.append(entry)
            if meta is None:
                break
            parent = meta.get("parent_fingerprint")
            current = str(parent) if parent else None
        return chain

    def has_summary(self, fingerprint: str) -> bool:
        """``True`` when a summary entry exists (memory or disk).

        A pure peek: unlike :meth:`get_summary` it does not refresh the
        entry's recency."""
        if self.root is None:
            return self._summaries.get(fingerprint) is not None
        # Disk is the source of truth for a backed store: an entry evicted
        # from disk (possibly by another process's GC) no longer exists even
        # if a stale copy lingers in this process's memory layer.
        return self._entry_path("summaries", fingerprint).exists()

    def summary_fingerprints(self) -> List[str]:
        """All stored workload fingerprints."""
        if self.root is None:
            return sorted(self._summaries.keys())
        keys = set(self._iter_keys("summaries"))
        # Memory-layer entries not (or no longer) on disk are not listed:
        # disk is the source of truth for a backed store.
        return sorted(keys)

    def entries(self) -> List[Dict[str, object]]:
        """Per-summary metadata for inspection tooling."""
        out: List[Dict[str, object]] = []
        for fingerprint in self.summary_fingerprints():
            with self._lock:
                meta = self._metas.get(fingerprint)
                pinned = fingerprint in self._pins
            if meta is None and self.root is not None:
                try:
                    meta = self._read_entry("summaries", fingerprint).get("meta", {})
                except SummaryStoreError:
                    meta = {"corrupt": True}
            entry: Dict[str, object] = {"fingerprint": fingerprint, **(meta or {})}
            last_used = self._last_used_at("summaries", fingerprint)
            if last_used is not None:
                entry["last_used_at"] = round(last_used, 3)
            entry["pinned"] = pinned
            out.append(entry)
        return out

    # ------------------------------------------------------------------ #
    # pinning
    # ------------------------------------------------------------------ #
    def pin(self, fingerprint: str) -> None:
        """Protect a summary from expiration/eviction (refcounted)."""
        with self._lock:
            self._pins[fingerprint] = self._pins.get(fingerprint, 0) + 1

    def unpin(self, fingerprint: str) -> None:
        """Release one :meth:`pin` reference."""
        with self._lock:
            count = self._pins.get(fingerprint, 0) - 1
            if count > 0:
                self._pins[fingerprint] = count
            else:
                self._pins.pop(fingerprint, None)

    @contextlib.contextmanager
    def pinned(self, fingerprint: str) -> Iterator[None]:
        """Context manager holding a :meth:`pin` for the ``with`` body."""
        self.pin(fingerprint)
        try:
            yield
        finally:
            self.unpin(fingerprint)

    def pin_count(self, fingerprint: str) -> int:
        """Current number of pins held on ``fingerprint``."""
        with self._lock:
            return self._pins.get(fingerprint, 0)

    # ------------------------------------------------------------------ #
    # lifecycle: TTL expiration + LRU eviction
    # ------------------------------------------------------------------ #
    def _over_size_caps(self) -> bool:
        counters = self.counters()
        if self.max_entries is not None and counters["summaries"] > self.max_entries:
            return True
        return self.max_store_bytes is not None \
            and counters["store_bytes"] > self.max_store_bytes

    def _scan_candidates(self) -> List[Tuple[float, str, str, int]]:
        """Every entry as ``(last_used_at, kind, key, size)``, oldest first."""
        candidates: List[Tuple[float, str, str, int]] = []
        if self.root is not None:
            for kind in ("summaries", "components"):
                base = self.root / kind
                if not base.is_dir():
                    continue
                for path in base.glob("*/*.json.gz"):
                    key = path.name[: -len(".json.gz")]
                    try:
                        size = path.stat().st_size
                    except OSError:
                        continue  # raced with a concurrent deleter
                    last_used = self._last_used_at(kind, key)
                    if last_used is None:
                        last_used = 0.0
                    candidates.append((last_used, kind, key, size))
        else:
            with self._lock:
                for key in self._summaries.keys():
                    candidates.append((
                        self._last_used.get(("summaries", key), 0.0),
                        "summaries", key,
                        self._entry_sizes.get(("summaries", key), 0),
                    ))
                for key in self._mem_components:
                    candidates.append((
                        self._last_used.get(("components", key), 0.0),
                        "components", key,
                        self._entry_sizes.get(("components", key), 0),
                    ))
        candidates.sort()
        return candidates

    def _delete_entry(self, kind: str, key: str, size: int,
                      seen_last_used: Optional[float] = None) -> bool:
        """Remove one entry everywhere and keep the counters exact.

        ``seen_last_used`` is the recency the GC pass based its decision on:
        if the entry was touched (warm hit) or rewritten (rebuild) after the
        scan, the deletion is skipped — an entry that was just used or just
        paid for is never removed on a stale snapshot.  Holding the lock
        here serialises against this process's writers (``_write_entry`` and
        ``_touch`` update under the same lock); cross-process races shrink
        to the unlink itself.  Returns ``True`` when the entry was removed.
        """
        with self._lock:
            if seen_last_used is not None:
                if self.root is not None:
                    try:
                        current = self._touch_path(kind, key).stat().st_mtime
                    except OSError:
                        current = None
                else:
                    current = self._last_used.get((kind, key))
                if current is not None and current > seen_last_used + 1e-6:
                    return False  # used/rebuilt since the scan: keep it
            if self.root is not None:
                removed = True
                try:
                    os.unlink(self._entry_path(kind, key))
                except FileNotFoundError:
                    removed = False  # another process already dropped it
                except OSError:
                    return False  # file may still exist: leave the ledger
                try:
                    os.unlink(self._touch_path(kind, key))
                except OSError:
                    pass
                if removed:
                    self._disk_bytes -= size
                    self._disk_entries[kind] -= 1
                    if self._journal is not None:
                        self._journal.append("delete", kind, key, None)
            self._last_used.pop((kind, key), None)
            dropped = self._entry_sizes.pop((kind, key), None)
            if dropped is not None:
                self._memory_bytes -= dropped
            if kind == "summaries":
                self._metas.pop(key, None)
            else:
                self._mem_components.pop(key, None)
        if kind == "summaries":
            self._summaries.pop(key)
        return True

    def _sweep_orphan_touches(self) -> None:
        """Drop recency sidecars whose entry file no longer exists (e.g.
        evicted by another process) so a shared store never accumulates
        orphan touch files."""
        if self.root is None:
            return
        for kind in ("summaries", "components"):
            base = self.root / kind
            if not base.is_dir():
                continue
            for touch in base.glob(f"*/*{TOUCH_SUFFIX}"):
                entry = touch.with_name(
                    touch.name[: -len(TOUCH_SUFFIX)] + ".json.gz"
                )
                if not entry.exists():
                    try:
                        os.unlink(touch)
                    except OSError:  # pragma: no cover - racing writer wins
                        pass

    def _resync_disk_counters(self) -> None:
        """Re-derive the running disk counters from the directory tree.

        Called at the end of every :meth:`compact` pass, so concurrent
        writes/deletes by *other* processes are folded back in and the
        counters stay exact — the GC pass is the one place already paying a
        directory scan."""
        if self.root is None:
            return
        total = 0
        entries = {"summaries": 0, "components": 0}
        for kind in ("summaries", "components"):
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in base.glob("*/*.json.gz"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
                entries[kind] += 1
        with self._lock:
            self._disk_bytes = total
            self._disk_entries = entries

    def compact(self, max_store_bytes: object = _UNSET,
                max_entries: object = _UNSET,
                ttl_seconds: object = _UNSET,
                now: Optional[float] = None) -> Dict[str, int]:
        """One GC pass: TTL expiration, then strictly-LRU eviction to caps.

        The arguments override the store's configured limits for this pass
        only (pass ``None`` explicitly for "unlimited").  Pinned summaries
        are never removed.  Deletions are crash-safe — each entry file is
        unlinked atomically and the running byte/entry counters are adjusted
        exactly once per removed file — and cheap relative to builds: one
        directory scan per pass, none on the serving hot path.

        Returns a report: entries ``expired`` (TTL), ``evicted`` (caps),
        ``reclaimed_bytes``, and the post-compaction occupancy.
        """
        started = time.perf_counter()
        with trace_span("store.compact") as span:
            report = self._compact(max_store_bytes, max_entries, ttl_seconds, now)
            span.set_attribute("expired", report["expired"])
            span.set_attribute("evicted", report["evicted"])
        self._h_compact.observe(time.perf_counter() - started)
        if report["expired"] or report["evicted"]:
            logger.info("compacted store: expired=%d evicted=%d reclaimed=%dB",
                        report["expired"], report["evicted"],
                        report["reclaimed_bytes"])
        return report

    def _compact(self, max_store_bytes: object, max_entries: object,
                 ttl_seconds: object, now: Optional[float]) -> Dict[str, int]:
        byte_cap = self.max_store_bytes if max_store_bytes is _UNSET else max_store_bytes
        entry_cap = self.max_entries if max_entries is _UNSET else max_entries
        ttl = self.ttl_seconds if ttl_seconds is _UNSET else ttl_seconds
        stamp = time.time() if now is None else now
        with self._lock:
            pinned = set(self._pins)
        # Lineage protection: the ancestors of every pinned (live) epoch are
        # kept too, so a session can always diff a live epoch against the
        # parents it was incrementally derived from.  Unpinned chains age out
        # normally.
        protected = set(pinned)
        for fingerprint in pinned:
            for link in self.list_lineage(fingerprint)[1:]:
                protected.add(str(link["fingerprint"]))
        candidates = self._scan_candidates()
        expired = evicted = reclaimed = 0
        survivors: List[Tuple[float, str, str, int]] = []
        for last_used, kind, key, size in candidates:
            if kind == "summaries" and key in protected:
                survivors.append((last_used, kind, key, size))
                continue
            if ttl is not None and stamp - last_used > ttl \
                    and self._delete_entry(kind, key, size,
                                           seen_last_used=last_used):
                expired += 1
                reclaimed += size
            else:
                survivors.append((last_used, kind, key, size))
        total_bytes = sum(size for _, _, _, size in survivors)
        summary_count = sum(1 for _, kind, _, _ in survivors if kind == "summaries")
        for last_used, kind, key, size in survivors:  # oldest first
            over_bytes = byte_cap is not None and total_bytes > byte_cap
            over_entries = entry_cap is not None and summary_count > entry_cap
            if not over_bytes and not over_entries:
                break
            if kind == "summaries" and key in protected:
                continue
            if kind == "components" and not over_bytes:
                continue  # components only count toward the byte cap
            if not self._delete_entry(kind, key, size, seen_last_used=last_used):
                continue  # touched since the scan: no longer LRU, keep it
            evicted += 1
            reclaimed += size
            total_bytes -= size
            if kind == "summaries":
                summary_count -= 1
        self._sweep_orphan_touches()
        self._resync_disk_counters()
        self._c_expirations.inc(expired)
        self._c_evictions.inc(evicted)
        report = {"expired": expired, "evicted": evicted,
                  "reclaimed_bytes": reclaimed}
        report.update(self.counters())
        return report

    # ------------------------------------------------------------------ #
    # LP component solutions
    # ------------------------------------------------------------------ #
    def put_component(self, key: str, solution: LPSolution) -> None:
        """Persist one LP component solution under its canonical key."""
        if self.root is None:
            with self._lock:
                self._mem_components[key] = solution
            self._account_memory_entry(
                "components", key, int(solution.values.nbytes) + 64
            )
            self._touch("components", key)
            return
        self._write_entry("components", key, {
            "format": STORE_FORMAT,
            "key": key,
            "values": [int(v) for v in solution.values],
            "feasible": bool(solution.feasible),
            "method": solution.method,
            "max_violation": float(solution.max_violation),
        })
        self._touch("components", key)

    def get_component(self, key: str) -> Optional[LPSolution]:
        """Read one component solution; ``None`` on miss or corruption."""
        if self.root is None:
            with self._lock:
                solution = self._mem_components.get(key)
            if solution is not None:
                self._touch("components", key)
            return solution
        if not self._entry_path("components", key).exists():
            return None
        try:
            payload = self._read_entry("components", key)
            values = np.asarray(payload["values"], dtype=np.int64)
            solution = LPSolution(
                values=values,
                feasible=bool(payload["feasible"]),
                method=str(payload["method"]),
                max_violation=float(payload["max_violation"]),
                solve_seconds=0.0,
            )
        except (SummaryStoreError, KeyError, TypeError, ValueError) as error:
            self._c_corrupt.inc()
            logger.warning("component entry %s rejected on read: %s",
                           key[:12], error)
            return None
        self._touch("components", key)
        return solution

    def solution_cache(self, memory_size: int = DEFAULT_COMPONENT_MEMORY) -> "StoreSolutionCache":
        """A solver cache backend persisting through this store.

        The memory layer is never disabled (a caller tuning its plain LRU to
        ``cache_size=0`` still gets the persistent backend, with a minimal
        hot layer in front of it).
        """
        return StoreSolutionCache(self, memory_size=max(1, memory_size))

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def store_bytes(self) -> int:
        """Total bytes of all entry payloads (real file sizes on disk, the
        per-entry size estimates for a memory-only store).

        Served from the running counters — no directory walk; bytes written
        by other processes appear after reopening or compacting the store.
        """
        with self._lock:
            if self.root is None:
                return self._memory_bytes
            return self._disk_bytes

    def counters(self) -> Dict[str, int]:
        """Hit/miss/corruption/GC counters plus current occupancy."""
        with self._lock:
            if self.root is None:
                summaries = len(self._summaries)
                components = len(self._mem_components)
                occupancy = self._memory_bytes
            else:
                summaries = self._disk_entries["summaries"]
                components = self._disk_entries["components"]
                occupancy = self._disk_bytes
        self._g_bytes.set(occupancy)
        self._g_entries.labels(kind="summaries").set(summaries)
        self._g_entries.labels(kind="components").set(components)
        return {
            **self.stats,
            "summaries": summaries,
            "components": components,
            "store_bytes": occupancy,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.root) if self.root is not None else "memory"
        return f"SummaryStore({where!r}, {len(self.summary_fingerprints())} summaries)"


class StoreSolutionCache(SolutionCache):
    """Two-level LP solution cache: in-memory LRU over a summary store.

    Plugs into :class:`~repro.lp.solver.ParallelLPSolver` as ``cache_backend``
    so component solutions survive restarts and are shared across every
    process that mounts the same store directory.
    """

    def __init__(self, store: SummaryStore,
                 memory_size: int = DEFAULT_COMPONENT_MEMORY) -> None:
        self.store = store
        self.capacity = memory_size
        self._memory = LRUSolutionCache(memory_size)
        self.disk_hits = 0

    def get(self, key: str) -> Optional[LPSolution]:
        cached = self._memory.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        solution = self.store.get_component(key)
        if solution is not None:
            self.disk_hits += 1
            self._memory.put(key, solution)
        return solution

    def put(self, key: str, solution: LPSolution) -> None:
        self._memory.put(key, solution)
        self.store.put_component(key, solution)

    def clear(self) -> None:
        # Only the in-memory layer is dropped; the persistent entries are the
        # shared source of truth and stay available to other processes.
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)
