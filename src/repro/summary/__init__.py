"""Database summary generation: align/merge, view summaries, referential
consistency and relation summaries."""

from repro.summary.align import merge_subview_solutions
from repro.summary.consistency import ConsistencyReport, enforce_referential_consistency
from repro.summary.relation_summary import (
    DatabaseSummary,
    RelationSummary,
    build_relation_summary,
    summary_from_database,
    summary_from_table,
)
from repro.summary.solution import (
    SolutionRow,
    SubViewSolution,
    ViewSolution,
    subview_solutions,
)
from repro.summary.view_summary import ViewSummary, instantiate_view_summary

__all__ = [
    "SolutionRow",
    "SubViewSolution",
    "ViewSolution",
    "subview_solutions",
    "merge_subview_solutions",
    "ViewSummary",
    "instantiate_view_summary",
    "ConsistencyReport",
    "enforce_referential_consistency",
    "RelationSummary",
    "DatabaseSummary",
    "build_relation_summary",
    "summary_from_database",
    "summary_from_table",
]
