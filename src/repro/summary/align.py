"""Deterministic alignment and merging of sub-view solutions (Section 5.1).

DataSynth turns sub-view solutions into a full view solution by *sampling*
from the joint/conditional distributions, which is slow and introduces
probabilistic errors.  Hydra instead uses a deterministic two-step procedure:

* **Solution sorting** — both the accumulated view solution and the next
  sub-view solution are sorted on their common attributes;
* **Row splitting** — rows are split so that corresponding rows carry the
  same number of tuples, after which a position-based merge joins them.

The LP's consistency constraints guarantee that, within any value of the
common attributes, both solutions carry the same total number of tuples, so
the positional merge is well defined.  Small mismatches (possible only when
the solver had to fall back to a rounded continuous solution) are tolerated:
leftover tuples are merged with the last aligned row rather than dropped.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SummaryError
from repro.summary.solution import SolutionRow, SubViewSolution, ViewSolution


def merge_subview_solutions(relation: str, solutions: Sequence[SubViewSolution],
                            order: Sequence[int],
                            aligned_attributes: Optional[Sequence[str]] = None,
                            ) -> ViewSolution:
    """Merge sub-view solutions into the view solution following ``order``
    (a running-intersection-property order of the sub-views).

    ``aligned_attributes`` restricts the attributes used for grouping during
    alignment; it must match the attributes along which the LP enforced
    consistency (``ViewLP.aligned_attributes``), otherwise group totals would
    not be guaranteed to match.  ``None`` aligns on all common attributes.
    """
    aligned: Optional[Set[str]] = set(aligned_attributes) if aligned_attributes is not None else None
    view = ViewSolution(relation=relation, attributes=())
    for index in order:
        subview = solutions[index]
        if not view.attributes:
            view = ViewSolution(
                relation=relation,
                attributes=tuple(subview.attributes),
                rows=[SolutionRow(dict(r.intervals), r.count, r.label, dict(r.cells))
                      for r in subview.rows],
            )
            continue
        view = _merge_one(view, subview, aligned)
    return view


def _merge_one(view: ViewSolution, subview: SubViewSolution,
               aligned: Optional[Set[str]] = None) -> ViewSolution:
    common = tuple(sorted(set(view.attributes) & set(subview.attributes)))
    if aligned is not None:
        common = tuple(a for a in common if a in aligned)
    new_attributes = tuple(view.attributes) + tuple(
        a for a in subview.attributes if a not in view.attributes
    )

    view_groups = _group_rows(view.rows, common)
    sub_groups = _group_rows(subview.rows, common)

    merged: List[SolutionRow] = []
    for key in sorted(set(view_groups) | set(sub_groups)):
        left_rows = view_groups.get(key, [])
        right_rows = sub_groups.get(key, [])
        merged.extend(_align_and_join(left_rows, right_rows))
    return ViewSolution(relation=view.relation, attributes=new_attributes, rows=merged)


def _group_rows(rows: Sequence[SolutionRow], common: Tuple[str, ...],
                ) -> Dict[Tuple[int, ...], List[SolutionRow]]:
    groups: Dict[Tuple[int, ...], List[SolutionRow]] = defaultdict(list)
    for row in rows:
        groups[row.key(common)].append(row)
    return dict(groups)


def _align_and_join(left_rows: List[SolutionRow], right_rows: List[SolutionRow],
                    ) -> List[SolutionRow]:
    """Two-pointer row splitting followed by a positional join.

    ``left_rows`` carry the already-merged attributes, ``right_rows`` the new
    sub-view's attributes; both lists share the same totals when the LP was
    solved exactly.  Whichever side has leftover tuples is merged against the
    last row seen on the other side (or emitted as-is when that side is
    empty), so no tuples are ever lost.
    """
    out: List[SolutionRow] = []
    i = j = 0
    left_remaining = left_rows[0].count if left_rows else 0
    right_remaining = right_rows[0].count if right_rows else 0

    while i < len(left_rows) and j < len(right_rows):
        take = min(left_remaining, right_remaining)
        if take > 0:
            out.append(_combine(left_rows[i], right_rows[j], take))
        left_remaining -= take
        right_remaining -= take
        if left_remaining == 0:
            i += 1
            left_remaining = left_rows[i].count if i < len(left_rows) else 0
        if right_remaining == 0:
            j += 1
            right_remaining = right_rows[j].count if j < len(right_rows) else 0

    # Leftovers (only possible with approximate LP solutions): keep tuples.
    while i < len(left_rows):
        count = left_remaining if left_remaining else left_rows[i].count
        partner = right_rows[-1] if right_rows else None
        out.append(_combine(left_rows[i], partner, count) if partner
                   else SolutionRow(dict(left_rows[i].intervals), count, left_rows[i].label))
        i += 1
        left_remaining = 0
    while j < len(right_rows):
        count = right_remaining if right_remaining else right_rows[j].count
        partner = left_rows[-1] if left_rows else None
        out.append(_combine(partner, right_rows[j], count) if partner
                   else SolutionRow(dict(right_rows[j].intervals), count, right_rows[j].label))
        j += 1
        right_remaining = 0
    return out


def _combine(left: SolutionRow, right: SolutionRow, count: int) -> SolutionRow:
    intervals = dict(left.intervals)
    for attr, interval in right.intervals.items():
        intervals.setdefault(attr, interval)
    cells = dict(left.cells)
    for attr, cell in right.cells.items():
        cells.setdefault(attr, cell)
    return SolutionRow(intervals=intervals, count=count,
                       label=left.label | right.label, cells=cells)
