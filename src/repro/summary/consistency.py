"""Inter-view referential consistency (Section 5.3).

View solutions are computed independently per relation, so a child view may
contain value combinations (for the attributes it borrowed from a parent)
that do not occur in the parent's own view summary.  Hydra repairs this by
walking the referential dependency graph in topological order (dependents
first) and adding each missing combination to the parent with a tuple count
of one.  The number of added tuples — the *additive error* — depends only on
the constraints and the LP solution, never on the data scale, which is the
property Figure 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

import networkx as nx

from repro.errors import SummaryError
from repro.schema.schema import Schema
from repro.summary.view_summary import ViewSummary
from repro.views.viewdef import ViewSet


@dataclass
class ConsistencyReport:
    """Outcome of the referential-consistency pass: the number of extra
    tuples added per relation (Figure 11's metric)."""

    extra_tuples: Dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        """Total extra tuples added across all relations."""
        return sum(self.extra_tuples.values())


def enforce_referential_consistency(summaries: Mapping[str, ViewSummary],
                                    views: ViewSet, schema: Schema,
                                    ) -> ConsistencyReport:
    """Make the view summaries mutually consistent, in place.

    For every relation (processed so that dependents are handled before the
    relations they reference), each direct dependent's rows are projected
    onto the referenced view's attributes; missing combinations are appended
    to the referenced view with ``NumTuples = 1``.
    """
    report = ConsistencyReport(extra_tuples={name: 0 for name in summaries})

    # Dependents first: standard topological order of the dependency graph,
    # whose edges point from the dependent relation to the referenced one.
    order = list(nx.topological_sort(schema.dependency_graph))

    for target in order:
        if target not in summaries:
            continue
        target_summary = summaries[target]
        target_attrs = views.view(target).attributes
        known = set(values for values, _ in target_summary.rows)
        for dependent in schema.dependents_of(target):
            if dependent not in summaries:
                continue
            dependent_summary = summaries[dependent]
            for values, _count in dependent_summary.rows:
                combo = dependent_summary.project_row(values, target_attrs)
                if combo in known:
                    continue
                target_summary.add_row(combo, 1)
                known.add(combo)
                report.extra_tuples[target] = report.extra_tuples.get(target, 0) + 1
    return report
