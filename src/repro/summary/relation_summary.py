"""Relation summaries and the database summary (Section 5.4).

A relation summary ``R~`` keeps, for each distinct value combination of the
relation's non-key attributes and foreign keys, the number of tuples carrying
that combination.  Primary-key values are implicit: they are the row numbers
``1..N`` of the regenerated relation, so a summary of a handful of rows can
describe a relation of billions of tuples — the property that makes dynamic
regeneration possible.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # only needed for annotations; avoids an import cycle
    from repro.engine.database import Database

from repro.errors import SummaryError
from repro.schema.schema import Schema
from repro.summary.view_summary import ViewSummary
from repro.views.viewdef import ViewSet


@dataclass
class RelationSummary:
    """The summary of one relation.

    Attributes
    ----------
    relation:
        Relation name.
    primary_key:
        Name of the implicit primary-key column (values are row numbers).
    columns:
        The explicit columns: foreign keys first, then non-key attributes.
    rows:
        ``(values, num_tuples)`` pairs; ``values`` is aligned with
        ``columns``.
    """

    relation: str
    primary_key: str
    columns: Tuple[str, ...]
    rows: List[Tuple[Tuple[int, ...], int]] = field(default_factory=list)

    def total_rows(self) -> int:
        """Number of tuples the summary expands to."""
        return sum(count for _, count in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def prefix_counts(self) -> List[int]:
        """Cumulative tuple counts per summary row (inclusive)."""
        out: List[int] = []
        running = 0
        for _, count in self.rows:
            running += count
            out.append(running)
        return out

    def column_index(self, column: str) -> int:
        """Position of a column within the value tuples."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise SummaryError(
                f"relation summary {self.relation!r} has no column {column!r}"
            ) from None

    def nbytes(self) -> int:
        """Approximate size of the summary (8 bytes per stored integer)."""
        width = len(self.columns) + 1
        return 8 * width * len(self.rows)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable representation.

        Values are coerced to plain ``int`` — summary rows built from numpy
        arrays may carry ``np.int64`` scalars, which ``json`` rejects.
        """
        return {
            "relation": self.relation,
            "primary_key": self.primary_key,
            "columns": list(self.columns),
            "rows": [[[int(v) for v in values], int(count)] for values, count in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RelationSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            relation=str(data["relation"]),
            primary_key=str(data["primary_key"]),
            columns=tuple(data["columns"]),  # type: ignore[arg-type]
            rows=[(tuple(values), int(count)) for values, count in data["rows"]],  # type: ignore[misc]
        )


@dataclass
class DatabaseSummary:
    """The complete database summary: one relation summary per relation plus
    diagnostics gathered while building it.

    ``component_keys`` is build provenance: for each relation, the canonical
    keys (``lp.decompose.component_key``) of the constraint-graph components
    whose solutions produced that relation's piece of the summary.  It is the
    unit of incremental work — two epochs sharing a key reused the same
    cached component solution verbatim (see ``docs/INCREMENTAL.md``).
    """

    relations: Dict[str, RelationSummary] = field(default_factory=dict)
    extra_tuples: Dict[str, int] = field(default_factory=dict)
    lp_variable_counts: Dict[str, int] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    component_keys: Dict[str, List[str]] = field(default_factory=dict)

    def component_manifest(self) -> List[str]:
        """Sorted union of all component keys across relations."""
        manifest = set()
        for keys in self.component_keys.values():
            manifest.update(keys)
        return sorted(manifest)

    def content_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` without the wall-clock ``timings``.

        This is the summary's *result content*: two builds that produced the
        same summary (e.g. a cold build and an incremental rebuild of the
        same drifted workload) have byte-identical content dicts even though
        their build timings differ.
        """
        data = self.to_dict()
        data.pop("timings", None)
        return data

    def content_digest(self) -> str:
        """sha256 hex digest of :meth:`content_dict` (canonical JSON)."""
        import hashlib

        text = json.dumps(self.content_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def relation(self, name: str) -> RelationSummary:
        """Return the summary of one relation."""
        try:
            return self.relations[name]
        except KeyError:
            raise SummaryError(f"no summary for relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def total_rows(self) -> int:
        """Total number of tuples across all regenerated relations."""
        return sum(summary.total_rows() for summary in self.relations.values())

    def nbytes(self) -> int:
        """Approximate size of the whole summary in bytes."""
        return sum(summary.nbytes() for summary in self.relations.values())

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Return a JSON-serialisable representation."""
        return {
            "relations": {name: summary.to_dict() for name, summary in self.relations.items()},
            "extra_tuples": {name: int(v) for name, v in self.extra_tuples.items()},
            "lp_variable_counts": {name: int(v) for name, v in self.lp_variable_counts.items()},
            "timings": {name: float(v) for name, v in self.timings.items()},
            "component_keys": {
                name: [str(k) for k in keys]
                for name, keys in self.component_keys.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DatabaseSummary":
        """Rebuild a database summary from :meth:`to_dict` output."""
        return cls(
            relations={
                name: RelationSummary.from_dict(rel)  # type: ignore[arg-type]
                for name, rel in dict(data.get("relations", {})).items()
            },
            extra_tuples=dict(data.get("extra_tuples", {})),  # type: ignore[arg-type]
            lp_variable_counts=dict(data.get("lp_variable_counts", {})),  # type: ignore[arg-type]
            timings=dict(data.get("timings", {})),  # type: ignore[arg-type]
            component_keys={
                name: list(keys)
                for name, keys in dict(data.get("component_keys", {})).items()  # type: ignore[union-attr]
            },
        )

    def save(self, path: Path) -> None:
        """Write the summary to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Path) -> "DatabaseSummary":
        """Load a summary previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def summary_from_table(relation: str, primary_key: str, columns: Sequence[str],
                       matrix: "np.ndarray") -> RelationSummary:
    """Run-length encode a materialised relation into a summary.

    ``matrix`` holds the explicit (non-primary-key) columns as an ``(N, C)``
    integer array in tuple order.  Consecutive identical rows collapse into
    one summary row, so regenerating the summary reproduces the original
    relation byte-identically (primary keys are row numbers in both).  This
    is how instance-producing engines (DataSynth) are adapted to the
    summary-centric serving/API layer.
    """
    rows: List[Tuple[Tuple[int, ...], int]] = []
    n = int(matrix.shape[0])
    if n:
        changed = np.any(matrix[1:] != matrix[:-1], axis=1) if n > 1 else (
            np.zeros(0, dtype=bool))
        starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
        ends = np.concatenate([starts[1:], [n]])
        rows = [
            (tuple(int(v) for v in matrix[start]), int(end - start))
            for start, end in zip(starts, ends)
        ]
    return RelationSummary(relation=relation, primary_key=primary_key,
                           columns=tuple(columns), rows=rows)


def summary_from_database(database: "Database") -> DatabaseSummary:
    """Encode a fully materialised database as an exact database summary.

    Every relation's explicit columns (foreign keys first, then attributes —
    the :class:`RelationSummary` convention) are run-length encoded; primary
    keys must be the row numbers ``1..N``, which both pipelines guarantee.
    Regenerating the returned summary reproduces the database exactly.
    """
    schema = database.schema
    summary = DatabaseSummary()
    for relation in database.relations:
        rel = schema.relation(relation)
        table = database.table(relation)
        columns = tuple(fk.column for fk in rel.foreign_keys) + tuple(rel.attribute_names)
        if columns:
            matrix = np.column_stack(
                [table.column(c).astype(np.int64) for c in columns]
            )
        else:
            matrix = np.zeros((table.num_rows, 0), dtype=np.int64)
        summary.relations[relation] = summary_from_table(
            relation, rel.primary_key, columns, matrix
        )
    return summary


def build_relation_summary(relation: str, view_summaries: Mapping[str, ViewSummary],
                           views: ViewSet, schema: Schema) -> RelationSummary:
    """Extract one relation's summary from the (consistent) view summaries.

    Foreign-key values are synthesised as described in the paper: for each
    child row, project it onto the referenced view's attributes, locate that
    combination in the referenced view summary and use the cumulative tuple
    count up to (and including) that row as the key value — i.e. the last
    primary key of the referenced block, every tuple of which carries exactly
    the projected attribute values.
    """
    rel = schema.relation(relation)
    view = views.view(relation)
    view_summary = view_summaries[relation]

    fk_columns = tuple(fk.column for fk in rel.foreign_keys)
    attr_columns = tuple(rel.attribute_names)
    columns = fk_columns + attr_columns

    # Pre-compute lookup structures for every referenced view.
    lookups: Dict[str, Tuple[Dict[Tuple[int, ...], int], List[int], Tuple[str, ...]]] = {}
    for fk in rel.foreign_keys:
        target_summary = view_summaries.get(fk.target)
        if target_summary is None:
            raise SummaryError(
                f"relation {relation!r} references {fk.target!r} which has no view summary"
            )
        lookups[fk.target] = (
            target_summary.value_index(),
            target_summary.prefix_counts(),
            views.view(fk.target).attributes,
        )

    summary = RelationSummary(relation=relation, primary_key=rel.primary_key, columns=columns)
    attr_positions = [view_summary.attribute_index(a) for a in attr_columns]

    for values, count in view_summary.rows:
        fk_values: List[int] = []
        for fk in rel.foreign_keys:
            index, prefix, target_attrs = lookups[fk.target]
            combo = view_summary.project_row(values, target_attrs)
            row_position = index.get(combo)
            if row_position is None:
                raise SummaryError(
                    f"view summaries are not referentially consistent: combination {combo!r}"
                    f" required by {relation!r} is missing from {fk.target!r}"
                )
            fk_values.append(prefix[row_position])
        attr_values = [values[p] for p in attr_positions]
        summary.rows.append((tuple(fk_values + attr_values), count))
    return summary
