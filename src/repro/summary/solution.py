"""Solution containers used while building the database summary.

After LP solving, every positive variable becomes a *sub-view solution row*:
an interval per sub-view attribute plus the number of tuples assigned to it
(the "NumTuples" of Section 5).  Sub-view solutions are then aligned and
merged into *view solution rows* spanning all constrained attributes of the
view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SummaryError
from repro.lp.model import LPSolution, ViewLP
from repro.predicates.interval import Interval


@dataclass
class SolutionRow:
    """One row of a (sub-)view solution: an interval per attribute and the
    number of tuples that fall in the region represented by those intervals.

    ``cells`` records, for every *aligned* (shared) attribute, the index of
    the consistency cell the row falls into; alignment groups rows by these
    indices so that the grouping matches the LP's consistency constraints
    even when the cells are coarser than the raw interval boundaries.
    """

    intervals: Dict[str, Interval]
    count: int
    label: FrozenSet[int] = frozenset()
    cells: Dict[str, int] = field(default_factory=dict)

    def key(self, attributes: Sequence[str]) -> Tuple[int, ...]:
        """Group key for alignment: the consistency-cell index where known,
        otherwise the interval left boundary, along ``attributes``."""
        return tuple(
            self.cells[a] if a in self.cells else self.intervals[a].lo
            for a in attributes
        )

    def corner(self) -> Dict[str, int]:
        """Left boundaries of all intervals (the instantiation values)."""
        return {attr: interval.lo for attr, interval in self.intervals.items()}

    def split(self, amount: int) -> Tuple["SolutionRow", "SolutionRow"]:
        """Split the row into one carrying ``amount`` tuples and the rest."""
        if not 0 < amount < self.count:
            raise SummaryError(f"cannot split a row of {self.count} tuples at {amount}")
        first = SolutionRow(intervals=dict(self.intervals), count=amount,
                            label=self.label, cells=dict(self.cells))
        second = SolutionRow(intervals=dict(self.intervals), count=self.count - amount,
                             label=self.label, cells=dict(self.cells))
        return first, second


@dataclass
class SubViewSolution:
    """The LP solution restricted to one sub-view."""

    attributes: Tuple[str, ...]
    rows: List[SolutionRow] = field(default_factory=list)

    def total(self) -> int:
        """Total number of tuples across all rows."""
        return sum(row.count for row in self.rows)


@dataclass
class ViewSolution:
    """The merged solution of a complete view: rows spanning the union of the
    sub-views' attributes (Figure 8(c) in the paper)."""

    relation: str
    attributes: Tuple[str, ...]
    rows: List[SolutionRow] = field(default_factory=list)

    def total(self) -> int:
        """Total number of tuples across all rows."""
        return sum(row.count for row in self.rows)


def subview_solutions(view_lp: ViewLP, solution: LPSolution) -> List[SubViewSolution]:
    """Convert a solved view LP into per-sub-view solutions.

    Variables assigned zero tuples are dropped; each remaining variable
    contributes one row whose intervals come from the variable's first box
    (all boxes of a variable satisfy the same constraints and project into
    the same elementary segments along shared attributes, so any box is an
    equally valid representative).
    """
    out: List[SubViewSolution] = []
    for block in view_lp.blocks:
        rows: List[SolutionRow] = []
        for global_index, variable in zip(block.variable_indices, block.variables):
            count = solution.value(global_index)
            if count <= 0:
                continue
            if not variable.boxes:
                raise SummaryError("LP variable without boxes")
            box = variable.boxes[0]
            rows.append(
                SolutionRow(
                    intervals={attr: box.interval(attr) for attr in block.attributes},
                    count=count,
                    label=variable.label,
                    cells=dict(variable.shared_cell),
                )
            )
        out.append(SubViewSolution(attributes=block.attributes, rows=rows))
    return out
