"""View summaries (Section 5.2).

A *view summary* instantiates a view solution: every solution row becomes a
concrete value combination (the left boundary of each attribute interval)
with an associated tuple count.  Attributes of the view that never appear in
any cardinality constraint are filled with the smallest value of their
domain — the deterministic choice that, per the paper, minimises the extra
tuples later needed for referential integrity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SummaryError
from repro.summary.solution import ViewSolution
from repro.views.viewdef import ViewDefinition


@dataclass
class ViewSummary:
    """A summarised view: value combinations over all view attributes with
    their tuple counts ("NumTuples")."""

    relation: str
    attributes: Tuple[str, ...]
    rows: List[Tuple[Tuple[int, ...], int]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def total(self) -> int:
        """Total number of tuples represented by the summary."""
        return sum(count for _, count in self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def attribute_index(self, attribute: str) -> int:
        """Position of an attribute within the value tuples."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SummaryError(
                f"view summary of {self.relation!r} has no attribute {attribute!r}"
            ) from None

    def project_row(self, values: Sequence[int], attributes: Sequence[str]) -> Tuple[int, ...]:
        """Project one value combination onto a subset of attributes."""
        positions = [self.attribute_index(a) for a in attributes]
        return tuple(values[p] for p in positions)

    def value_index(self) -> Dict[Tuple[int, ...], int]:
        """Mapping from value combination to its row position."""
        return {values: i for i, (values, _) in enumerate(self.rows)}

    def prefix_counts(self) -> List[int]:
        """Cumulative tuple counts, aligned with rows (inclusive)."""
        out: List[int] = []
        running = 0
        for _, count in self.rows:
            running += count
            out.append(running)
        return out

    # ------------------------------------------------------------------ #
    # mutation (used by the referential-consistency pass)
    # ------------------------------------------------------------------ #
    def add_row(self, values: Tuple[int, ...], count: int = 1) -> None:
        """Append a value combination with the given tuple count."""
        if len(values) != len(self.attributes):
            raise SummaryError("value combination width does not match view attributes")
        self.rows.append((tuple(values), count))


def instantiate_view_summary(view: ViewDefinition, solution: Optional[ViewSolution],
                             total_rows: int) -> ViewSummary:
    """Instantiate the view summary from a merged view solution.

    Parameters
    ----------
    view:
        The view definition (provides the full attribute list and domains).
    solution:
        The merged view solution; ``None`` for views without any constrained
        attribute, in which case a single row carrying all ``total_rows``
        tuples at the domain minima is produced.
    total_rows:
        The view's total tuple count (used only when ``solution`` is absent
        or empty).
    """
    attributes = view.attributes
    defaults = {attr: view.domain(attr).lo for attr in attributes}

    summary = ViewSummary(relation=view.relation, attributes=attributes)
    if solution is None or not solution.rows:
        if total_rows > 0:
            summary.add_row(tuple(defaults[attr] for attr in attributes), total_rows)
        return summary

    merged: Dict[Tuple[int, ...], int] = {}
    order: List[Tuple[int, ...]] = []
    for row in solution.rows:
        corner = row.corner()
        values = tuple(
            corner.get(attr, defaults[attr]) for attr in attributes
        )
        if values not in merged:
            merged[values] = 0
            order.append(values)
        merged[values] += row.count
    for values in order:
        summary.add_row(values, merged[values])
    return summary
