"""Tuple generation from database summaries (dynamic and materialised)."""

from repro.tuplegen.generator import (
    DEFAULT_BATCH_SIZE,
    TupleGenerator,
    dynamic_database,
    materialize_database,
)

__all__ = [
    "TupleGenerator",
    "materialize_database",
    "dynamic_database",
    "DEFAULT_BATCH_SIZE",
]
