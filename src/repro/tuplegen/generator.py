"""The Tuple Generator (Section 6).

The tuple generator turns a :class:`~repro.summary.RelationSummary` into
actual rows.  Primary keys are row numbers; to produce the ``r``-th tuple the
generator locates the summary row whose cumulative ``NumTuples`` first
reaches ``r`` and copies its value combination.  Three access paths are
provided:

* :meth:`TupleGenerator.row` — random access to a single tuple,
* :meth:`TupleGenerator.stream` — streaming generation in batches (the
  on-demand scan used inside the engine instead of reading from disk),
* :meth:`TupleGenerator.materialize` — build the full columnar table.

All bulk paths are fully vectorised: the summary's value combinations are
kept as one ``(K, C)`` matrix, and a batch is produced with a single
``searchsorted`` + ``repeat`` + fancy-index sequence — no per-row Python
loop, so generation throughput is bounded by memory bandwidth rather than
the interpreter.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import GenerationError
from repro.obs.trace import get_tracer
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary, RelationSummary

#: Default number of tuples produced per streamed batch.
DEFAULT_BATCH_SIZE = 65_536


class TupleGenerator:
    """Generates tuples of one relation from its summary."""

    def __init__(self, summary: RelationSummary) -> None:
        self.summary = summary
        counts = np.array([count for _, count in summary.rows], dtype=np.int64)
        self._counts = counts
        #: Inclusive cumulative tuple counts per summary row.
        self._prefix = np.cumsum(counts) if counts.size else np.zeros(0, dtype=np.int64)
        self._total = int(self._prefix[-1]) if counts.size else 0
        if summary.rows:
            self._values = np.array([values for values, _ in summary.rows],
                                    dtype=np.int64)
        else:
            self._values = np.zeros((0, len(summary.columns)), dtype=np.int64)
        #: Diagnostics: how often the full relation was materialised in one
        #: shot, and how many streamed batches were produced.  The laziness
        #: tests assert dynamic databases never trip the former.
        self.full_materializations = 0
        self.batches_streamed = 0

    # ------------------------------------------------------------------ #
    # random access
    # ------------------------------------------------------------------ #
    @property
    def total_rows(self) -> int:
        """Number of tuples the relation expands to."""
        return self._total

    def row(self, r: int) -> Dict[str, int]:
        """Return the ``r``-th tuple (1-based), including its primary key."""
        if not 1 <= r <= self._total:
            raise GenerationError(
                f"row number {r} out of range 1..{self._total} for {self.summary.relation!r}"
            )
        position = int(np.searchsorted(self._prefix, r, side="left"))
        out = {self.summary.primary_key: r}
        out.update({
            column: int(self._values[position, i])
            for i, column in enumerate(self.summary.columns)
        })
        return out

    # ------------------------------------------------------------------ #
    # streaming generation
    # ------------------------------------------------------------------ #
    def stream(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[Table]:
        """Yield the relation as a sequence of columnar batches.

        This is the engine-facing access path: the executor consumes batches
        as they are produced instead of reading a materialised relation.
        Peak memory is one batch, independent of the relation's size.
        """
        return self.stream_range(batch_size=batch_size)

    def stream_range(self, start_row: int = 1, stop_row: Optional[int] = None,
                     batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[Table]:
        """Stream the contiguous row shard ``start_row..stop_row`` (1-based,
        inclusive; ``stop_row=None`` means the last row) in columnar batches.

        This is the handle concurrent consumers use to split one relation
        into disjoint shards — e.g. the regeneration service hands each
        client its own range, all served by the same shared generator (the
        generator keeps no cursor state, so ranges can be pulled from any
        number of threads at once).  Arguments are validated eagerly, at the
        call site rather than at first iteration.
        """
        if batch_size <= 0:
            raise GenerationError("batch size must be positive")
        stop_row = self._total if stop_row is None else stop_row
        if start_row < 1 or stop_row > self._total:
            raise GenerationError(
                f"row range {start_row}..{stop_row} out of bounds 1..{self._total}"
                f" for {self.summary.relation!r}"
            )
        return self._iter_range(start_row, stop_row, batch_size)

    def _iter_range(self, start: int, stop_row: int,
                    batch_size: int) -> Iterator[Table]:
        # The span is started (not entered) so it never becomes the consumer's
        # *current* span: a cursor's lifetime crosses yields, and leaving the
        # contextvar set between batches would corrupt the consumer's context.
        span = get_tracer().start_span(
            "tuplegen.stream_range", relation=self.summary.relation,
            start_row=start, stop_row=stop_row)
        batches = 0
        try:
            while start <= stop_row:
                stop = min(start + batch_size - 1, stop_row)
                yield self._batch(start, stop)
                batches += 1
                start = stop + 1
        except GeneratorExit:
            span.set_attribute("batches", batches)
            span.set_attribute("closed_early", True)
            span.finish()
            raise
        except BaseException as error:
            span.set_attribute("batches", batches)
            span.finish(error)
            raise
        span.set_attribute("batches", batches)
        span.finish()

    def _batch(self, start: int, stop: int) -> Table:
        """Build the batch of tuples with primary keys ``start..stop``
        (1-based, inclusive) in one vectorised pass."""
        batch: Dict[str, np.ndarray] = {
            self.summary.primary_key: np.arange(start, stop + 1, dtype=np.int64)
        }
        if self._values.shape[0]:
            # Summary rows overlapping the batch, with the boundary rows'
            # repeat counts trimmed to the batch window.
            lo = int(np.searchsorted(self._prefix, start, side="left"))
            hi = int(np.searchsorted(self._prefix, stop, side="left"))
            repeats = self._counts[lo:hi + 1].copy()
            before = int(self._prefix[lo - 1]) if lo > 0 else 0
            repeats[0] -= start - 1 - before
            repeats[-1] -= int(self._prefix[hi]) - stop
            rows = np.repeat(np.arange(lo, hi + 1, dtype=np.intp), repeats)
            for i, column in enumerate(self.summary.columns):
                batch[column] = self._values[rows, i]
        else:
            for column in self.summary.columns:
                batch[column] = np.empty(0, dtype=np.int64)
        self.batches_streamed += 1
        return Table(batch, name=self.summary.relation)

    def table_from_stream(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Table:
        """Assemble the full relation by concatenating streamed batches.

        Functionally equivalent to :meth:`materialize` but exercises the
        batched path (and therefore does not count as a full one-shot
        materialisation in the diagnostics).
        """
        batches = list(self.stream(batch_size=batch_size))
        if not batches:
            columns = (self.summary.primary_key,) + self.summary.columns
            return Table.empty(columns, name=self.summary.relation)
        return Table.concat(batches, name=self.summary.relation)

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def materialize(self) -> Table:
        """Materialise the full relation as a columnar table."""
        self.full_materializations += 1
        columns: Dict[str, np.ndarray] = {
            self.summary.primary_key: np.arange(1, self._total + 1, dtype=np.int64)
        }
        if self._values.shape[0]:
            expanded = np.repeat(self._values, self._counts, axis=0)
            for i, column in enumerate(self.summary.columns):
                columns[column] = expanded[:, i]
        else:
            for column in self.summary.columns:
                columns[column] = np.empty(0, dtype=np.int64)
        return Table(columns, name=self.summary.relation)


# ---------------------------------------------------------------------- #
# database-level helpers
# ---------------------------------------------------------------------- #
def materialize_database(summary: DatabaseSummary, schema: Schema,
                         name: str = "synthetic") -> Database:
    """Materialise every relation of a database summary into a
    :class:`~repro.engine.database.Database`."""
    database = Database(schema, name=name)
    for relation, relation_summary in summary.relations.items():
        database.attach(relation, TupleGenerator(relation_summary).materialize())
    return database


def dynamic_database(summary: DatabaseSummary, schema: Schema,
                     name: str = "synthetic-dynamic",
                     batch_size: int = DEFAULT_BATCH_SIZE) -> Database:
    """Build a database whose relations are generated on demand (the
    ``datagen`` mode of Section 6).

    Each relation is registered as a *batch stream*: nothing at all is
    generated until the relation is first scanned, and the scan itself is
    served by the vectorised :meth:`TupleGenerator.stream` path — the full
    relation is never built by an eager one-shot
    :meth:`TupleGenerator.materialize` call.
    """
    database = Database(schema, name=name)
    for relation, relation_summary in summary.relations.items():
        generator = TupleGenerator(relation_summary)

        def stream_factory(generator: TupleGenerator = generator) -> Iterator[Table]:
            return generator.stream(batch_size=batch_size)

        database.attach_stream(relation, stream_factory,
                               row_count=generator.total_rows)
    return database
