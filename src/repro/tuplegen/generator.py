"""The Tuple Generator (Section 6).

The tuple generator turns a :class:`~repro.summary.RelationSummary` into
actual rows.  Primary keys are row numbers; to produce the ``r``-th tuple the
generator locates the summary row whose cumulative ``NumTuples`` first
reaches ``r`` and copies its value combination.  Three access paths are
provided:

* :meth:`TupleGenerator.row` — random access to a single tuple,
* :meth:`TupleGenerator.stream` — streaming generation in batches (the
  on-demand scan used inside the engine instead of reading from disk),
* :meth:`TupleGenerator.materialize` — build the full columnar table.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import GenerationError
from repro.schema.schema import Schema
from repro.summary.relation_summary import DatabaseSummary, RelationSummary

#: Default number of tuples produced per streamed batch.
DEFAULT_BATCH_SIZE = 65_536


class TupleGenerator:
    """Generates tuples of one relation from its summary."""

    def __init__(self, summary: RelationSummary) -> None:
        self.summary = summary
        self._prefix = summary.prefix_counts()
        self._total = self._prefix[-1] if self._prefix else 0

    # ------------------------------------------------------------------ #
    # random access
    # ------------------------------------------------------------------ #
    @property
    def total_rows(self) -> int:
        """Number of tuples the relation expands to."""
        return self._total

    def row(self, r: int) -> Dict[str, int]:
        """Return the ``r``-th tuple (1-based), including its primary key."""
        if not 1 <= r <= self._total:
            raise GenerationError(
                f"row number {r} out of range 1..{self._total} for {self.summary.relation!r}"
            )
        position = bisect_left(self._prefix, r)
        values, _count = self.summary.rows[position]
        out = {self.summary.primary_key: r}
        out.update({column: value for column, value in zip(self.summary.columns, values)})
        return out

    # ------------------------------------------------------------------ #
    # streaming generation
    # ------------------------------------------------------------------ #
    def stream(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[Table]:
        """Yield the relation as a sequence of columnar batches.

        This is the engine-facing access path: the executor consumes batches
        as they are produced instead of reading a materialised relation.
        """
        if batch_size <= 0:
            raise GenerationError("batch size must be positive")
        columns = (self.summary.primary_key,) + self.summary.columns
        start_pk = 1
        row_index = 0
        consumed_in_row = 0
        while start_pk <= self._total:
            size = min(batch_size, self._total - start_pk + 1)
            batch = {c: np.empty(size, dtype=np.int64) for c in columns}
            batch[self.summary.primary_key] = np.arange(
                start_pk, start_pk + size, dtype=np.int64
            )
            filled = 0
            while filled < size:
                values, count = self.summary.rows[row_index]
                available = count - consumed_in_row
                take = min(available, size - filled)
                for column, value in zip(self.summary.columns, values):
                    batch[column][filled:filled + take] = value
                filled += take
                consumed_in_row += take
                if consumed_in_row == count:
                    row_index += 1
                    consumed_in_row = 0
            yield Table(batch, name=self.summary.relation)
            start_pk += size

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def materialize(self) -> Table:
        """Materialise the full relation as a columnar table."""
        counts = np.array([count for _, count in self.summary.rows], dtype=np.int64)
        columns: Dict[str, np.ndarray] = {
            self.summary.primary_key: np.arange(1, self._total + 1, dtype=np.int64)
        }
        if len(self.summary.rows):
            matrix = np.array([values for values, _ in self.summary.rows], dtype=np.int64)
            for i, column in enumerate(self.summary.columns):
                columns[column] = np.repeat(matrix[:, i], counts)
        else:
            for column in self.summary.columns:
                columns[column] = np.empty(0, dtype=np.int64)
        return Table(columns, name=self.summary.relation)


# ---------------------------------------------------------------------- #
# database-level helpers
# ---------------------------------------------------------------------- #
def materialize_database(summary: DatabaseSummary, schema: Schema,
                         name: str = "synthetic") -> Database:
    """Materialise every relation of a database summary into a
    :class:`~repro.engine.database.Database`."""
    database = Database(schema, name=name)
    for relation, relation_summary in summary.relations.items():
        database.attach(relation, TupleGenerator(relation_summary).materialize())
    return database


def dynamic_database(summary: DatabaseSummary, schema: Schema,
                     name: str = "synthetic-dynamic") -> Database:
    """Build a database whose relations are generated on demand (the
    ``datagen`` mode of Section 6): nothing is materialised until a relation
    is first scanned by the executor."""
    database = Database(schema, name=name)
    for relation, relation_summary in summary.relations.items():
        generator = TupleGenerator(relation_summary)
        database.attach_dynamic(relation, generator.materialize)
    return database
