"""View construction and CC rewriting (the DataSynth preprocessor reused by
Hydra)."""

from repro.views.preprocess import Preprocessor, SubView, ViewConstraint, ViewTask
from repro.views.viewdef import ViewDefinition, ViewSet

__all__ = [
    "ViewDefinition",
    "ViewSet",
    "Preprocessor",
    "ViewConstraint",
    "SubView",
    "ViewTask",
]
