"""The preprocessor: rewriting CCs onto views and decomposing views into
sub-views.

This is the module marked orange in the paper's Figure 2 (sourced from
DataSynth and shared by both pipelines):

1. rewrite every cardinality constraint over a relation or join expression
   into a selection constraint over the root relation's view;
2. build a *view-graph* per view (one node per constrained attribute, an edge
   when two attributes appear together in some CC), chordalise it, and use
   its maximal cliques as the sub-views over which partitioning and LP
   formulation operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.constraints.cc import CardinalityConstraint
from repro.constraints.workload import ConstraintSet
from repro.errors import ViewError
from repro.predicates.dnf import DNFPredicate
from repro.schema.schema import Schema
from repro.views.viewdef import ViewDefinition, ViewSet


@dataclass(frozen=True)
class ViewConstraint:
    """A cardinality constraint rewritten onto a view: a DNF predicate over
    view attributes and the target row count."""

    predicate: DNFPredicate
    cardinality: int
    query_id: Optional[str] = None

    @property
    def attributes(self) -> Tuple[str, ...]:
        """Attributes of the view mentioned by the predicate."""
        return self.predicate.attributes

    @property
    def is_size_constraint(self) -> bool:
        """``True`` for the unconditional view-size constraint."""
        return self.predicate.is_true


@dataclass
class SubView:
    """A sub-view: a subset of the view's constrained attributes (a maximal
    clique of the chordalised view-graph) plus the indices of the view
    constraints that fall entirely within its scope."""

    attributes: Tuple[str, ...]
    constraint_indices: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        self.attributes = tuple(sorted(self.attributes))

    def shares_with(self, other: "SubView") -> Tuple[str, ...]:
        """Attributes shared with another sub-view."""
        return tuple(sorted(set(self.attributes) & set(other.attributes)))


@dataclass
class ViewTask:
    """Everything the LP formulator needs for one view: the view definition,
    its rewritten constraints, the sub-view decomposition and the clique-tree
    edges along which consistency must be enforced."""

    view: ViewDefinition
    constraints: List[ViewConstraint] = field(default_factory=list)
    subviews: List[SubView] = field(default_factory=list)
    consistency_edges: List[Tuple[int, int]] = field(default_factory=list)
    total_rows: int = 0

    @property
    def relation(self) -> str:
        """The relation whose view this task regenerates."""
        return self.view.relation

    @property
    def constrained_attributes(self) -> Tuple[str, ...]:
        """View attributes mentioned by at least one constraint."""
        names: Set[str] = set()
        for vc in self.constraints:
            names.update(vc.attributes)
        return tuple(sorted(names))

    def merge_order(self) -> List[int]:
        """Sub-view indices in an order satisfying the running-intersection
        property (Section 5.1.1), derived from the clique-tree edges."""
        if not self.subviews:
            return []
        graph = nx.Graph()
        graph.add_nodes_from(range(len(self.subviews)))
        graph.add_edges_from(self.consistency_edges)
        order: List[int] = []
        for component in nx.connected_components(graph):
            start = min(component)
            order.extend(nx.dfs_preorder_nodes(graph.subgraph(component), source=start))
        return order


class Preprocessor:
    """Builds :class:`ViewTask` objects from a schema and a constraint set."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.views = ViewSet(schema)

    # ------------------------------------------------------------------ #
    # constraint rewriting
    # ------------------------------------------------------------------ #
    def rewrite_constraint(self, cc: CardinalityConstraint) -> ViewConstraint:
        """Rewrite a relation/join CC into a constraint over the root view."""
        view = self.views.view(cc.relation)
        for attr in cc.predicate.attributes:
            if not view.has_attribute(attr):
                raise ViewError(
                    f"constraint on {cc.relation!r} mentions attribute {attr!r} which is"
                    f" not part of its view (joined relations: {cc.joined_relations!r})"
                )
        return ViewConstraint(
            predicate=cc.predicate,
            cardinality=cc.cardinality,
            query_id=cc.query_id,
        )

    # ------------------------------------------------------------------ #
    # sub-view decomposition
    # ------------------------------------------------------------------ #
    def build_task(self, relation: str, constraints: Sequence[CardinalityConstraint]) -> ViewTask:
        """Build the :class:`ViewTask` for one relation from its CCs."""
        view = self.views.view(relation)
        view_constraints = [self.rewrite_constraint(cc) for cc in constraints]

        total_rows = 0
        for vc in view_constraints:
            if vc.is_size_constraint:
                total_rows = max(total_rows, vc.cardinality)
        if total_rows == 0:
            total_rows = self.schema.relation(relation).row_count
            if total_rows:
                view_constraints.append(
                    ViewConstraint(predicate=DNFPredicate.true(), cardinality=total_rows)
                )

        task = ViewTask(view=view, constraints=view_constraints, total_rows=total_rows)
        self._decompose(task)
        return task

    def build_tasks(self, ccs: ConstraintSet) -> Dict[str, ViewTask]:
        """Build one :class:`ViewTask` per relation appearing in the CCs."""
        tasks: Dict[str, ViewTask] = {}
        for relation, constraints in ccs.by_relation().items():
            tasks[relation] = self.build_task(relation, constraints)
        return tasks

    def _decompose(self, task: ViewTask) -> None:
        """Build the view-graph, chordalise it and extract maximal cliques."""
        constrained = task.constrained_attributes
        if not constrained:
            task.subviews = []
            task.consistency_edges = []
            return

        graph = nx.Graph()
        graph.add_nodes_from(constrained)
        for vc in task.constraints:
            attrs = vc.attributes
            for i, a in enumerate(attrs):
                for b in attrs[i + 1:]:
                    graph.add_edge(a, b)

        chordal = self._chordalize(graph)
        cliques = [tuple(sorted(c)) for c in nx.find_cliques(chordal)]
        cliques.sort()

        subviews: List[SubView] = []
        for clique in cliques:
            clique_set = set(clique)
            indices = tuple(
                i for i, vc in enumerate(task.constraints)
                if set(vc.attributes) <= clique_set
            )
            subviews.append(SubView(attributes=clique, constraint_indices=indices))
        task.subviews = subviews
        task.consistency_edges = self._clique_tree_edges(subviews)

    @staticmethod
    def _chordalize(graph: "nx.Graph") -> "nx.Graph":
        """Return a chordal completion of the view-graph."""
        if graph.number_of_nodes() == 0:
            return graph.copy()
        if nx.is_chordal(graph):
            return graph.copy()
        chordal, _alpha = nx.complete_to_chordal_graph(graph)
        return chordal

    @staticmethod
    def _clique_tree_edges(subviews: Sequence[SubView]) -> List[Tuple[int, int]]:
        """Return clique-tree edges (maximum-weight spanning tree on clique
        intersection sizes), which carry the consistency constraints."""
        if len(subviews) <= 1:
            return []
        weighted = nx.Graph()
        weighted.add_nodes_from(range(len(subviews)))
        for i in range(len(subviews)):
            for j in range(i + 1, len(subviews)):
                shared = subviews[i].shares_with(subviews[j])
                if shared:
                    weighted.add_edge(i, j, weight=len(shared))
        edges: List[Tuple[int, int]] = []
        for component in nx.connected_components(weighted):
            subgraph = weighted.subgraph(component)
            tree = nx.maximum_spanning_tree(subgraph, weight="weight")
            edges.extend((min(u, v), max(u, v)) for u, v in tree.edges())
        return sorted(edges)
