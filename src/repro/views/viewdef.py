"""View definitions.

The DataSynth preprocessor (reused by Hydra, Section 3.2) replaces every
relation by a denormalised *view* consisting of the relation's own non-key
attributes plus the non-key attributes of every relation it references
through foreign keys, directly or transitively.  Cardinality constraints over
PK-FK join expressions then become plain selection constraints over the root
relation's view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ViewError
from repro.predicates.interval import Interval
from repro.schema.schema import Schema


@dataclass(frozen=True)
class ViewDefinition:
    """The view associated with one relation.

    Parameters
    ----------
    relation:
        The relation this view summarises (the "many" side).
    own_attributes:
        The relation's own non-key attributes.
    borrowed_attributes:
        Non-key attributes inherited from referenced relations (transitively),
        in dependency order.
    attribute_sources:
        For every view attribute, the relation that originally declares it.
    domains:
        Integer domain of every view attribute.
    direct_dependencies:
        The relations referenced directly through a foreign key, in FK
        declaration order (used for referential-consistency processing and
        foreign-key synthesis).
    """

    relation: str
    own_attributes: Tuple[str, ...]
    borrowed_attributes: Tuple[str, ...]
    attribute_sources: Mapping[str, str]
    domains: Mapping[str, Interval]
    direct_dependencies: Tuple[str, ...]

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All view attributes: own first, then borrowed."""
        return self.own_attributes + self.borrowed_attributes

    def has_attribute(self, name: str) -> bool:
        """Return ``True`` if ``name`` is a view attribute."""
        return name in self.domains

    def domain(self, attribute: str) -> Interval:
        """Return the integer domain of a view attribute."""
        try:
            return self.domains[attribute]
        except KeyError:
            raise ViewError(
                f"view for {self.relation!r} has no attribute {attribute!r}"
            ) from None

    def source_of(self, attribute: str) -> str:
        """Return the relation that originally declares ``attribute``."""
        try:
            return self.attribute_sources[attribute]
        except KeyError:
            raise ViewError(
                f"view for {self.relation!r} has no attribute {attribute!r}"
            ) from None


class ViewSet:
    """All views of a schema, keyed by relation name."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._views: Dict[str, ViewDefinition] = {}
        for relation in schema.relation_names:
            self._views[relation] = self._build_view(relation)

    def _build_view(self, relation: str) -> ViewDefinition:
        rel = self.schema.relation(relation)
        own = tuple(rel.attribute_names)
        sources: Dict[str, str] = {name: relation for name in own}
        domains: Dict[str, Interval] = {a.name: a.domain for a in rel.attributes}

        borrowed: List[str] = []
        for dependency in self.schema.referenced_closure(relation):
            dep_rel = self.schema.relation(dependency)
            for attr in dep_rel.attributes:
                if attr.name in domains:
                    raise ViewError(
                        f"attribute {attr.name!r} borrowed twice while building the view"
                        f" of {relation!r}; attribute names must be globally unique"
                    )
                borrowed.append(attr.name)
                sources[attr.name] = dependency
                domains[attr.name] = attr.domain

        return ViewDefinition(
            relation=relation,
            own_attributes=own,
            borrowed_attributes=tuple(borrowed),
            attribute_sources=sources,
            domains=domains,
            direct_dependencies=tuple(fk.target for fk in rel.foreign_keys),
        )

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def view(self, relation: str) -> ViewDefinition:
        """Return the view of ``relation``."""
        try:
            return self._views[relation]
        except KeyError:
            raise ViewError(f"no view for relation {relation!r}") from None

    def __getitem__(self, relation: str) -> ViewDefinition:
        return self.view(relation)

    def __contains__(self, relation: str) -> bool:
        return relation in self._views

    def __iter__(self):
        return iter(self._views.values())

    @property
    def relations(self) -> Tuple[str, ...]:
        """The relations with views, in schema order."""
        return tuple(self._views)
