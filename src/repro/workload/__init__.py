"""Query and workload model plus random workload generation."""

from repro.workload.generator import WorkloadGenerator, WorkloadProfile
from repro.workload.query import Query, Workload

__all__ = ["Query", "Workload", "WorkloadGenerator", "WorkloadProfile"]
