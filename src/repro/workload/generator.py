"""Random workload generation.

The paper evaluates Hydra on workloads derived from TPC-DS (131 queries,
"WLc"), a simplified variant ("WLs") and the JOB benchmark (260 queries).
Those query sets are not redistributable, so this module synthesises
workloads with the same structural profile: star/snowflake PK-FK joins rooted
at fact relations, DNF filter predicates over non-key attributes, and a
controllable amount of constant diversity (which is what drives the grid
blow-up of the DataSynth formulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.predicates.conjunct import Conjunct
from repro.predicates.dnf import DNFPredicate
from repro.predicates.interval import IntervalSet
from repro.schema.schema import Schema
from repro.workload.query import Query, Workload


@dataclass
class WorkloadProfile:
    """Knobs controlling the shape of a generated workload.

    Parameters
    ----------
    num_queries:
        Number of queries to generate.
    root_relations:
        Relations eligible as query roots (typically the fact tables); when
        empty, every relation with at least one foreign key qualifies.
    max_joined_dimensions:
        Upper bound on how many referenced relations a query joins in
        (snowflake chains count every hop).
    max_filters_per_query:
        Upper bound on the number of relations that receive a filter.
    max_attributes_per_filter:
        Upper bound on the number of attributes constrained in one relation's
        filter — larger values grow the attribute cliques and therefore the
        grid size of the DataSynth formulation.
    max_total_filter_attributes:
        Upper bound on the number of attributes filtered across the whole
        query.  Join constraints conjoin every filter of the query, so this
        caps the size of the attribute cliques (and keeps the region
        partitioning tractable, as in the paper's TPC-DS-derived workloads).
    distinct_constants:
        Number of distinct cut points the generator may use per attribute;
        small values (the "simple" workload) keep grids tractable, large
        values (the "complex" workload) explode them.
    disjunct_probability:
        Probability that a filter is a two-conjunct DNF instead of a plain
        conjunction.
    dimension_filter_probability:
        Probability that any given joined dimension receives a filter.
    attribute_affinity:
        Skew of the per-relation attribute choice.  Real benchmark workloads
        filter a small set of popular attributes over and over (``d_year``,
        ``i_category``, ...), which keeps the view-graph sparse and its
        cliques small; ``0.0`` picks attributes uniformly, larger values
        concentrate the choice on the first attributes of each relation.
    """

    num_queries: int = 100
    root_relations: Tuple[str, ...] = ()
    max_joined_dimensions: int = 4
    max_filters_per_query: int = 3
    max_attributes_per_filter: int = 2
    max_total_filter_attributes: int = 5
    distinct_constants: int = 6
    disjunct_probability: float = 0.1
    dimension_filter_probability: float = 0.7
    attribute_affinity: float = 2.0


class WorkloadGenerator:
    """Deterministic (seeded) generator of star/snowflake SPJ workloads."""

    def __init__(self, schema: Schema, profile: WorkloadProfile, seed: int = 0) -> None:
        self.schema = schema
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        self._cut_points: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self, name: str = "workload") -> Workload:
        """Generate a workload with the configured profile."""
        roots = self._eligible_roots()
        workload = Workload(name=name)
        for index in range(self.profile.num_queries):
            root = roots[int(self.rng.integers(0, len(roots)))]
            workload.add(self._generate_query(f"q{index + 1}", root))
        workload.validate(self.schema)
        return workload

    # ------------------------------------------------------------------ #
    # query construction
    # ------------------------------------------------------------------ #
    def _eligible_roots(self) -> List[str]:
        if self.profile.root_relations:
            return list(self.profile.root_relations)
        roots = [rel.name for rel in self.schema.relations if rel.foreign_keys]
        if not roots:
            raise WorkloadError("schema has no relation with foreign keys to use as root")
        return roots

    def _generate_query(self, query_id: str, root: str) -> Query:
        relations = self._pick_join_relations(root)
        filters: Dict[str, DNFPredicate] = {}

        filterable = [r for r in relations if self.schema.relation(r).attributes]
        self.rng.shuffle(filterable)
        budget = int(self.rng.integers(1, self.profile.max_filters_per_query + 1))
        attribute_budget = self.profile.max_total_filter_attributes
        for relation in filterable:
            if len(filters) >= budget or attribute_budget <= 0:
                break
            if relation != root and self.rng.random() > self.profile.dimension_filter_probability:
                continue
            predicate = self._make_filter(relation, attribute_budget)
            if predicate is not None:
                filters[relation] = predicate
                attribute_budget -= len(predicate.attributes)

        # Guarantee at least one filter so that every query constrains data.
        if not filters and filterable:
            predicate = self._make_filter(filterable[0], self.profile.max_total_filter_attributes)
            if predicate is not None:
                filters[filterable[0]] = predicate

        return Query(query_id=query_id, root=root, relations=tuple(relations), filters=filters)

    def _pick_join_relations(self, root: str) -> List[str]:
        relations = [root]
        frontier = [root]
        budget = int(self.rng.integers(1, self.profile.max_joined_dimensions + 1))
        while frontier and len(relations) - 1 < budget:
            current = frontier.pop(0)
            targets = [fk.target for fk in self.schema.relation(current).foreign_keys
                       if fk.target not in relations]
            self.rng.shuffle(targets)
            for target in targets:
                if len(relations) - 1 >= budget:
                    break
                relations.append(target)
                frontier.append(target)
        return relations

    # ------------------------------------------------------------------ #
    # filter construction
    # ------------------------------------------------------------------ #
    def _make_filter(self, relation: str,
                     attribute_budget: Optional[int] = None) -> Optional[DNFPredicate]:
        rel = self.schema.relation(relation)
        if not rel.attributes:
            return None
        cap = min(self.profile.max_attributes_per_filter, len(rel.attributes))
        if attribute_budget is not None:
            cap = min(cap, attribute_budget)
        if cap <= 0:
            return None
        num_attrs = int(self.rng.integers(1, cap + 1))
        weights = self._attribute_weights(len(rel.attributes))
        picked = self.rng.choice(len(rel.attributes), size=num_attrs, replace=False, p=weights)
        attributes = [rel.attributes[i] for i in picked]

        conjunct = Conjunct(
            {attr.name: self._random_range(attr.name, attr.domain.lo, attr.domain.hi)
             for attr in attributes}
        )
        predicate = DNFPredicate.of(conjunct)
        if self.rng.random() < self.profile.disjunct_probability:
            other = Conjunct(
                {attr.name: self._random_range(attr.name, attr.domain.lo, attr.domain.hi)
                 for attr in attributes}
            )
            predicate = predicate.disjoin(DNFPredicate.of(other))
        return predicate

    def _attribute_weights(self, count: int) -> "np.ndarray":
        """Zipf-like weights over a relation's attributes (popular-first)."""
        ranks = np.arange(1, count + 1, dtype=float)
        weights = ranks ** (-self.profile.attribute_affinity) if self.profile.attribute_affinity > 0 \
            else np.ones(count)
        return weights / weights.sum()

    def _random_range(self, attribute: str, lo: int, hi: int) -> IntervalSet:
        """Pick a half-open range whose endpoints come from the attribute's
        pool of distinct constants (controlling constant diversity)."""
        points = self._constants_for(attribute, lo, hi)
        if len(points) < 2:
            return IntervalSet.single(lo, hi)
        first, second = sorted(
            self.rng.choice(len(points), size=2, replace=False).tolist()
        )
        start, end = points[first], points[second]
        if start == end:
            end = start + 1
        return IntervalSet.single(int(start), int(end))

    def _constants_for(self, attribute: str, lo: int, hi: int) -> List[int]:
        if attribute not in self._cut_points:
            width = hi - lo
            count = min(self.profile.distinct_constants, max(width, 1))
            if width <= count:
                points = list(range(lo, hi + 1))
            else:
                offsets = self.rng.choice(width, size=count, replace=False)
                points = sorted({lo + int(o) for o in offsets} | {lo, hi})
            self._cut_points[attribute] = points
        return self._cut_points[attribute]
