"""Workload query model.

A query in this framework (matching the paper's assumptions, Section 2.2) is
a select-project-join block over a connected set of relations:

* joins are PK-FK joins following the schema's dependency graph, rooted at a
  single "many"-side relation (the fact table of a star/snowflake pattern),
* filters are DNF predicates over non-key attributes, attached per relation.

This is exactly the query class the Hydra/DataSynth pipelines support after
workload preparation (the paper keeps only non-key filter predicates and
PK-FK joins and splits nested queries into independent sub-queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.predicates.dnf import DNFPredicate
from repro.schema.schema import Schema


@dataclass
class Query:
    """A select-project-join query over PK-FK joins with DNF filters.

    Parameters
    ----------
    query_id:
        Workload-unique identifier (e.g. ``"q17"``).
    root:
        The relation at the "many" end of every join in the query.
    relations:
        All relations referenced, including ``root``.  They must form a
        connected subgraph of the schema dependency graph reachable from the
        root via foreign keys.
    filters:
        Optional DNF filter per relation.  Relations without an entry are
        unfiltered.
    """

    query_id: str
    root: str
    relations: Tuple[str, ...]
    filters: Dict[str, DNFPredicate] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.root not in self.relations:
            self.relations = (self.root,) + tuple(self.relations)
        seen = set()
        ordered: List[str] = []
        for rel in self.relations:
            if rel not in seen:
                seen.add(rel)
                ordered.append(rel)
        self.relations = tuple(ordered)
        for rel in self.filters:
            if rel not in seen:
                raise WorkloadError(
                    f"query {self.query_id!r} filters relation {rel!r} it does not reference"
                )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_single_relation(self) -> bool:
        """``True`` for queries without joins."""
        return len(self.relations) == 1

    def filter_for(self, relation: str) -> DNFPredicate:
        """Return the filter for ``relation`` (true when unfiltered)."""
        return self.filters.get(relation, DNFPredicate.true())

    def filtered_relations(self) -> Tuple[str, ...]:
        """Relations that carry a non-trivial filter."""
        return tuple(r for r in self.relations if not self.filter_for(r).is_true)

    def validate(self, schema: Schema) -> None:
        """Check the query against the schema.

        Raises :class:`WorkloadError` when a relation is unknown, the join
        graph is not reachable from the root, or a filter mentions key
        attributes or attributes of a different relation.
        """
        for rel in self.relations:
            if rel not in schema:
                raise WorkloadError(f"query {self.query_id!r}: unknown relation {rel!r}")
        for rel in self.relations:
            if rel == self.root:
                continue
            path = schema.join_path(self.root, rel)
            if path is None:
                raise WorkloadError(
                    f"query {self.query_id!r}: relation {rel!r} is not reachable from"
                    f" root {self.root!r} via foreign keys"
                )
            for step in path:
                if step not in self.relations:
                    raise WorkloadError(
                        f"query {self.query_id!r}: join path to {rel!r} passes through"
                        f" {step!r}, which the query does not reference"
                    )
        for rel, predicate in self.filters.items():
            relation = schema.relation(rel)
            for attr in predicate.attributes:
                if not relation.has_attribute(attr):
                    raise WorkloadError(
                        f"query {self.query_id!r}: filter attribute {attr!r} is not a"
                        f" non-key attribute of relation {rel!r}"
                    )

    def join_order(self, schema: Schema) -> List[Tuple[str, str, str]]:
        """Return the joins as ``(child, fk_column, parent)`` triples in a
        breadth-first order starting from the root.

        The resulting order guarantees that when a parent is joined, the FK
        column pointing at it is already available in the intermediate result.
        """
        order: List[Tuple[str, str, str]] = []
        visited = {self.root}
        frontier = [self.root]
        remaining = set(self.relations) - visited
        while frontier:
            next_frontier: List[str] = []
            for child in frontier:
                child_rel = schema.relation(child)
                for fk in child_rel.foreign_keys:
                    if fk.target in remaining:
                        order.append((child, fk.column, fk.target))
                        visited.add(fk.target)
                        remaining.discard(fk.target)
                        next_frontier.append(fk.target)
            frontier = next_frontier
        if remaining:
            raise WorkloadError(
                f"query {self.query_id!r}: relations {sorted(remaining)!r} are not"
                " connected to the root via foreign keys within the query"
            )
        return order


@dataclass
class Workload:
    """An ordered collection of queries forming a client workload."""

    name: str
    queries: List[Query] = field(default_factory=list)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def add(self, query: Query) -> None:
        """Append a query to the workload."""
        self.queries.append(query)

    def validate(self, schema: Schema) -> None:
        """Validate every query against the schema."""
        ids = set()
        for query in self.queries:
            if query.query_id in ids:
                raise WorkloadError(f"duplicate query id {query.query_id!r}")
            ids.add(query.query_id)
            query.validate(schema)

    def relations(self) -> Tuple[str, ...]:
        """All relations referenced anywhere in the workload, sorted."""
        names = set()
        for query in self.queries:
            names.update(query.relations)
        return tuple(sorted(names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workload({self.name!r}, {len(self.queries)} queries)"
