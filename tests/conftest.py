"""Shared fixtures: the paper's toy schema (Figure 1), the Person example of
Figures 3/4, and a small TPC-DS-like client environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchdata.datagen import generate_database
from repro.benchdata.tpcds import simple_workload, tpcds_schema
from repro.engine.database import Database
from repro.engine.table import Table
from repro.hydra.client import extract_constraints
from repro.predicates.interval import Interval
from repro.schema.relation import Attribute, ForeignKey, Relation
from repro.schema.schema import Schema
from repro.views.preprocess import ViewConstraint
from repro.predicates.dnf import DNFPredicate
from repro.predicates.conjunct import Conjunct
from repro.predicates.interval import IntervalSet


# ---------------------------------------------------------------------- #
# Figure 1 toy scenario: R(R_pk, S_fk, T_fk), S(S_pk, A, B), T(T_pk, C)
# ---------------------------------------------------------------------- #
@pytest.fixture
def toy_schema() -> Schema:
    """The R/S/T schema of the paper's Figure 1(a)."""
    return Schema(
        [
            Relation(
                name="S", primary_key="S_pk", row_count=700,
                attributes=[
                    Attribute("A", Interval(0, 100)),
                    Attribute("B", Interval(0, 50)),
                ],
            ),
            Relation(
                name="T", primary_key="T_pk", row_count=1500,
                attributes=[Attribute("C", Interval(0, 10))],
            ),
            Relation(
                name="R", primary_key="R_pk", row_count=80_000,
                foreign_keys=[
                    ForeignKey(column="S_fk", target="S"),
                    ForeignKey(column="T_fk", target="T"),
                ],
                attributes=[],
            ),
        ],
        name="toy",
    )


@pytest.fixture
def toy_database(toy_schema: Schema) -> Database:
    """A concrete instance of the toy schema engineered so that the query of
    Figure 1(b) produces exactly the annotated cardinalities of Figure 1(c)."""
    rng = np.random.default_rng(42)

    # S: 700 rows, 400 of which have A in [20, 60).
    s_a = np.concatenate([
        rng.integers(20, 60, size=400),
        rng.integers(60, 100, size=300),
    ]).astype(np.int64)
    s_b = rng.integers(0, 50, size=700).astype(np.int64)
    s_table = Table({"S_pk": np.arange(1, 701), "A": s_a, "B": s_b}, name="S")

    # T: 1500 rows, 900 of which have C in [2, 3).
    t_c = np.concatenate([
        np.full(900, 2), rng.integers(3, 10, size=600)
    ]).astype(np.int64)
    t_table = Table({"T_pk": np.arange(1, 1501), "C": t_c}, name="T")

    # R: 80000 rows.  50000 reference S rows with A in [20,60); of those,
    # 30000 also reference T rows with C in [2,3).  The remaining rows
    # reference the "non-qualifying" halves so the plan cardinalities are
    # exactly 50000 and 30000.
    s_fk = np.concatenate([
        rng.integers(1, 401, size=50_000),      # join survivors of sigma(S)
        rng.integers(401, 701, size=30_000),    # filtered out at the S join
    ]).astype(np.int64)
    t_fk = np.concatenate([
        rng.integers(1, 901, size=30_000),      # survive sigma(T) as well
        rng.integers(901, 1501, size=20_000),   # dropped at the T join
        rng.integers(1, 1501, size=30_000),     # already dropped earlier
    ]).astype(np.int64)
    r_table = Table(
        {"R_pk": np.arange(1, 80_001), "S_fk": s_fk, "T_fk": t_fk}, name="R"
    )

    database = Database(toy_schema, name="toy-client")
    database.attach("S", s_table)
    database.attach("T", t_table)
    database.attach("R", r_table)
    return database


# ---------------------------------------------------------------------- #
# Person example (Figures 3 and 4)
# ---------------------------------------------------------------------- #
@pytest.fixture
def person_domains():
    """Domains of the Person view's two attributes."""
    return {"age": Interval(0, 100), "salary": Interval(0, 100_000)}


@pytest.fixture
def person_constraints():
    """The three CCs of the Person example (Section 3.2)."""
    c1 = ViewConstraint(
        predicate=DNFPredicate.of(Conjunct({
            "age": IntervalSet.single(0, 40),
            "salary": IntervalSet.single(0, 40_000),
        })),
        cardinality=1000,
    )
    c2 = ViewConstraint(
        predicate=DNFPredicate.of(Conjunct({
            "age": IntervalSet.single(20, 60),
            "salary": IntervalSet.single(20_000, 60_000),
        })),
        cardinality=2000,
    )
    c3 = ViewConstraint(predicate=DNFPredicate.true(), cardinality=8000)
    return [c1, c2, c3]


# ---------------------------------------------------------------------- #
# small TPC-DS-like client environment
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def small_tpcds_schema() -> Schema:
    """A tiny TPC-DS-like schema usable for end-to-end tests."""
    return tpcds_schema(scale_factor=0.0002)


@pytest.fixture(scope="session")
def small_tpcds_database(small_tpcds_schema: Schema) -> Database:
    """A materialised client instance of the tiny schema."""
    return generate_database(small_tpcds_schema, seed=7)


@pytest.fixture(scope="session")
def small_tpcds_constraints(small_tpcds_schema, small_tpcds_database):
    """CCs extracted from a small simple workload on the tiny instance."""
    workload = simple_workload(small_tpcds_schema, num_queries=25, seed=3)
    return extract_constraints(small_tpcds_database, workload).constraints


# ---------------------------------------------------------------------- #
# small JOB-like client environment
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def small_job_schema() -> Schema:
    """A tiny JOB-like schema usable for end-to-end tests."""
    from repro.benchdata.job import job_schema

    return job_schema(scale_factor=0.001)


@pytest.fixture(scope="session")
def small_job_constraints(small_job_schema):
    """CCs extracted from a small JOB workload on a tiny instance."""
    from repro.benchdata.job import job_workload

    database = generate_database(small_job_schema, seed=19)
    workload = job_workload(small_job_schema, num_queries=20, seed=23)
    return extract_constraints(database, workload).constraints
