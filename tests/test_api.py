"""Tests of the unified ``repro.api`` surface.

Covers the acceptance bar of the facade redesign:

* ``Session``-driven end-to-end runs (extract → summarize → regenerate →
  verify) produce byte-identical summaries and AQP results to the legacy
  entry points, for both engines, property-tested across batch sizes;
* ``RegenConfig`` consolidates the knobs, derives the legacy configs
  loss-lessly and namespaces store fingerprints (result-affecting knobs
  split the store, performance knobs never do, old-style and new-style
  spellings of the same config collide on the same fingerprint);
* the backend registry routes both ``Session`` and ``RegenerationService``,
  including user-registered engines;
* ``max_pending`` backpressure rejects cold submissions with
  ``ServiceOverloadedError`` while warm/deduped requests stay admitted;
* the deprecation shims (``Hydra(schema, workers=...)``, ``repro.service``
  CLI) warn once and produce results equal to the new path.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DataSynth,
    DataSynthConfig,
    Executor,
    Hydra,
    HydraConfig,
    Query,
    Workload,
    col,
    evaluate_on_database,
    materialize_database,
)
from repro.api import (
    BackendBuild,
    PipelineBackend,
    RegenConfig,
    Session,
    available_backends,
    register_backend,
)
from repro.errors import (
    ConfigError,
    ServiceError,
    ServiceOverloadedError,
    UnknownBackendError,
)
from repro.service.fingerprint import workload_fingerprint
from repro.service.service import RegenerationService
from repro.service.store import SummaryStore
from repro.summary.relation_summary import DatabaseSummary, RelationSummary


# ---------------------------------------------------------------------- #
# module-scoped toy environment (hypothesis-safe)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def env(request):
    """Schema, client database, workload and constraints of the toy scenario."""
    from repro.benchdata.datagen import generate_database
    from repro.hydra.client import extract_constraints
    from repro.predicates.interval import Interval
    from repro.schema.relation import Attribute, ForeignKey, Relation
    from repro.schema.schema import Schema

    schema = Schema([
        Relation("S", primary_key="S_pk", row_count=700,
                 attributes=[Attribute("A", Interval(0, 100)),
                             Attribute("B", Interval(0, 50))]),
        Relation("T", primary_key="T_pk", row_count=1500,
                 attributes=[Attribute("C", Interval(0, 10))]),
        Relation("R", primary_key="R_pk", row_count=80_000,
                 foreign_keys=[ForeignKey("S_fk", "S"),
                               ForeignKey("T_fk", "T")]),
    ], name="toy")
    database = generate_database(schema, seed=11)
    workload = Workload(name="api-toy", queries=[
        Query(query_id="q1", root="R", relations=("R", "S", "T"),
              filters={"S": col("A").between(20, 60),
                       "T": col("C").between(2, 3)}),
        Query(query_id="q2", root="R", relations=("R", "S")),
        Query(query_id="q3", root="S", relations=("S",),
              filters={"S": col("B").between(0, 25)}),
    ])
    constraints = extract_constraints(database, workload).constraints
    return schema, database, workload, constraints


def _relations_json(summary: DatabaseSummary) -> str:
    """Canonical JSON of the summary's data content (timings excluded)."""
    return json.dumps(summary.to_dict()["relations"], sort_keys=True)


def _cardinalities(plans):
    return [plan.operator_cardinalities() for plan in plans]


# ---------------------------------------------------------------------- #
# RegenConfig
# ---------------------------------------------------------------------- #
class TestRegenConfig:
    def test_frozen(self):
        config = RegenConfig()
        with pytest.raises(Exception):
            config.workers = 9  # type: ignore[misc]

    def test_replace_returns_new_config(self):
        config = RegenConfig()
        other = config.replace(workers=5)
        assert other.workers == 5 and config.workers == 2
        assert other is not config

    @pytest.mark.parametrize("knobs", [
        {"strategy": "diagonal"},
        {"executor_mode": "vectorized"},
        {"workers": 0},
        {"max_workers": 0},
        {"batch_size": 0},
        {"cache_size": -1},
        {"max_pending": -1},
    ])
    def test_validation(self, knobs):
        with pytest.raises(ConfigError):
            RegenConfig(**knobs)

    def test_hydra_config_round_trip(self):
        original = HydraConfig(strategy="grid", prefer_integer=False,
                               milp_variable_limit=123, time_limit=1.5,
                               workers=7, cache_size=9, use_processes=True,
                               strict=True)
        lifted = RegenConfig.from_hydra_config(original)
        assert lifted.hydra_config() == original

    def test_datasynth_config_round_trip(self):
        original = DataSynthConfig(max_grid_variables=777, seed=13,
                                   time_limit=2.0, workers=3, cache_size=5)
        lifted = RegenConfig.from_datasynth_config(original)
        assert lifted.datasynth_config() == original
        assert lifted.engine == "datasynth"


# ---------------------------------------------------------------------- #
# Session end-to-end equivalence with the legacy entry points
# ---------------------------------------------------------------------- #
class TestSessionEquivalence:
    def test_hydra_summary_byte_identical(self, env):
        schema, _, _, constraints = env
        handle = Session(schema).summarize(constraints)
        legacy = Hydra(schema).build_summary(constraints)
        assert _relations_json(handle.summary) == _relations_json(legacy.summary)
        assert handle.engine == "hydra" and not handle.from_store
        assert handle.fingerprint == Hydra(schema).request_fingerprint(constraints)

    def test_datasynth_database_byte_identical(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints, engine="datasynth")
        regenerated = session.regenerate(handle).database
        legacy = DataSynth(schema, DataSynthConfig()).generate(constraints).database
        for relation in legacy.relations:
            ours, theirs = regenerated.table(relation), legacy.table(relation)
            assert ours.column_names == theirs.column_names
            for column in theirs.column_names:
                assert np.array_equal(ours.column(column), theirs.column(column)), \
                    (relation, column)

    @settings(deadline=None, max_examples=6)
    @given(engine=st.sampled_from(["hydra", "datasynth"]),
           batch_size=st.sampled_from([1, 7, 65_536]))
    def test_aqp_results_match_legacy_paths(self, env, engine, batch_size):
        """The acceptance property: session-driven execution produces the
        same AQP cardinalities as the legacy entry points, at any batch
        size, for both engines."""
        schema, _, workload, constraints = env
        session = Session(schema, config=RegenConfig(engine=engine))
        handle = session.summarize(constraints)
        database = session.regenerate(handle, batch_size=batch_size)
        plans = database.execute(workload)

        if engine == "hydra":
            legacy_db = materialize_database(
                Hydra(schema).build_summary(constraints).summary, schema)
        else:
            legacy_db = DataSynth(schema, DataSynthConfig()).generate(
                constraints).database
        legacy_plans = Executor(legacy_db, mode="materialize").execute_workload(workload)
        assert _cardinalities(plans) == _cardinalities(legacy_plans)

    def test_extract_matches_legacy(self, env):
        schema, database, workload, constraints = env
        extracted = Session(schema).extract(database, workload)
        assert {str(cc) for cc in extracted} == {str(cc) for cc in constraints}

    def test_verify_matches_evaluate_on_database(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        database = session.regenerate(handle)
        report = session.verify(database)
        legacy = evaluate_on_database(
            constraints, materialize_database(handle.summary, schema))
        assert [r.actual for r in report.results] == [r.actual for r in legacy.results]
        # analytic (scale-free) verification agrees on the summary handle
        analytic = session.verify(handle)
        assert [r.actual for r in analytic.results] == [r.actual for r in legacy.results]

    def test_verify_without_constraints_requires_provenance(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        bare = session.regenerate(handle.summary)  # raw summary: no provenance
        with pytest.raises(ServiceError):
            session.verify(bare)


# ---------------------------------------------------------------------- #
# scaled regeneration
# ---------------------------------------------------------------------- #
class TestScaledRegeneration:
    def test_verify_scales_the_default_constraints(self, env):
        """A scaled regeneration verifies against the correspondingly scaled
        cardinalities (Section 7.4 arithmetic), not the originals."""
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        base_error = session.verify(session.regenerate(handle)).max_error()
        scaled_error = session.verify(
            session.regenerate(handle, scale=3.0)).max_error()
        assert scaled_error == pytest.approx(base_error, abs=1e-9)
        # explicit constraints are evaluated as given: 3x the rows -> 2.0 error
        explicit = session.verify(session.regenerate(handle, scale=3.0),
                                  constraints)
        assert explicit.max_error() == pytest.approx(2.0)

    def test_scale_multiplies_volume_and_keeps_integrity(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        base = session.regenerate(handle).row_counts()
        scaled = session.regenerate(handle, scale=3.0)
        counts = scaled.row_counts()
        for relation, rows in base.items():
            assert counts[relation] == 3 * rows
        # foreign keys stay within the scaled parents
        r_table = scaled.materialize("R")
        assert r_table.column("S_fk").max() <= counts["S"]
        assert r_table.column("T_fk").max() <= counts["T"]
        assert r_table.column("S_fk").min() >= 1

    def test_downscale(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        half = session.regenerate(handle, scale=0.5)
        base_total = handle.total_rows()
        # every summary row keeps >= 1 tuple, so the volume roughly halves
        assert 0 < half.database.total_rows() <= base_total
        r_table = half.materialize("R")
        assert r_table.column("S_fk").max() <= half.row_counts()["S"]

    def test_invalid_factor(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        handle = session.summarize(constraints)
        with pytest.raises(Exception):
            session.regenerate(handle, scale=0.0)


# ---------------------------------------------------------------------- #
# RegenConfig fingerprint integration with the store
# ---------------------------------------------------------------------- #
class TestFingerprintIntegration:
    def test_old_and_new_spellings_hit_the_same_fingerprint(self, env):
        schema, _, _, constraints = env
        legacy = Hydra(schema, HydraConfig(milp_variable_limit=2_000))
        session = Session(schema, config=RegenConfig(milp_variable_limit=2_000))
        assert legacy.request_fingerprint(constraints) == session.fingerprint(constraints)

    def test_old_kwargs_spelling_hits_the_same_fingerprint(self, env):
        schema, _, _, constraints = env
        with pytest.warns(DeprecationWarning):
            legacy = Hydra(schema, milp_variable_limit=2_000)
        session = Session(schema, config=RegenConfig(milp_variable_limit=2_000))
        assert legacy.request_fingerprint(constraints) == session.fingerprint(constraints)

    def test_result_affecting_knobs_never_share_store_entries(self, env, tmp_path):
        schema, _, _, constraints = env
        store = SummaryStore(tmp_path / "store")
        exact = Session(schema, config=RegenConfig(), store=store)
        rounded = Session(schema, config=RegenConfig(prefer_integer=False),
                          store=store)
        first = exact.summarize(constraints)
        second = rounded.summarize(constraints)
        assert first.fingerprint != second.fingerprint
        assert not second.from_store
        assert len(store.summary_fingerprints()) == 2

    def test_performance_knobs_share_store_entries(self, env, tmp_path):
        schema, _, _, constraints = env
        store = SummaryStore(tmp_path / "store")
        one = Session(schema, config=RegenConfig(workers=1, cache_size=4,
                                                 batch_size=128), store=store)
        two = Session(schema, config=RegenConfig(workers=4, cache_size=64),
                      store=store)
        first = one.summarize(constraints)
        second = two.summarize(constraints)
        assert first.fingerprint == second.fingerprint
        assert second.from_store  # warm: served without running the pipeline
        assert _relations_json(first.summary) == _relations_json(second.summary)
        assert len(store.summary_fingerprints()) == 1

    def test_engines_are_namespaced(self, env):
        schema, _, _, constraints = env
        session = Session(schema)
        assert (session.fingerprint(constraints, engine="hydra")
                != session.fingerprint(constraints, engine="datasynth"))

    def test_load_rehydrates_stored_summary(self, env, tmp_path):
        schema, _, _, constraints = env
        session = Session(schema, store=tmp_path / "store")
        handle = session.summarize(constraints)
        loaded = session.load(handle.fingerprint)
        assert loaded.from_store
        assert _relations_json(loaded.summary) == _relations_json(handle.summary)
        with pytest.raises(ServiceError):
            session.load("0" * 64)


# ---------------------------------------------------------------------- #
# backend registry
# ---------------------------------------------------------------------- #
class _ConstantBackend(PipelineBackend):
    """Test backend: returns a fixed one-relation summary, optionally
    blocking until released (for backpressure tests)."""

    name = "constant-test"

    def __init__(self, schema, config, store=None,
                 gate: "threading.Event | None" = None) -> None:
        self.schema = schema
        self.config = config
        self.gate = gate
        self.builds = 0
        # deliberately no .pipeline/.solver: the minimal backend contract is
        # fingerprint() + build(); service.stats() must not crash on it

    def fingerprint(self, constraints, relations=None):
        return workload_fingerprint(self.schema, constraints,
                                    relations=relations,
                                    profile=[self.name])

    def build(self, constraints, relations=None):
        if self.gate is not None:
            self.gate.wait(timeout=30)
        self.builds += 1
        summary = DatabaseSummary()
        summary.relations["S"] = RelationSummary(
            relation="S", primary_key="S_pk", columns=("A", "B"),
            rows=[((1, 2), len(constraints))],
        )
        return BackendBuild(summary=summary)


class TestBackendRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "hydra" in names and "datasynth" in names

    def test_unknown_engine(self, env):
        schema, _, _, constraints = env
        with pytest.raises(UnknownBackendError):
            Session(schema).summarize(constraints, engine="no-such-engine")
        with pytest.raises(UnknownBackendError):
            RegenerationService(schema, engine="no-such-engine")

    def test_custom_backend_via_session_and_service(self, env):
        schema, _, _, constraints = env
        register_backend("constant-test", _ConstantBackend)
        config = RegenConfig(engine="constant-test")
        handle = Session(schema, config=config).summarize(constraints)
        assert handle.engine == "constant-test"
        assert handle.summary.relation("S").total_rows() == len(constraints)
        with RegenerationService(schema, config=config) as service:
            summary = service.summarize(constraints, timeout=30)
            assert summary.relation("S").total_rows() == len(constraints)
            # observability must survive a backend without a solver pipeline
            stats = service.stats()
            assert stats["pipeline_runs"] == 1
            assert stats["solver_components_solved"] == 0


# ---------------------------------------------------------------------- #
# max_pending backpressure
# ---------------------------------------------------------------------- #
class TestBackpressure:
    def test_cold_submissions_rejected_above_max_pending(self, env):
        schema, _, _, constraints = env
        gate = threading.Event()
        register_backend(
            "blocking-test",
            lambda schema, config, store=None: _ConstantBackend(
                schema, config, store, gate=gate),
        )
        other = constraints.scaled(2.0)  # different fingerprint
        config = RegenConfig(engine="blocking-test")
        with RegenerationService(schema, config=config, max_workers=1,
                                 max_pending=1) as service:
            ticket = service.submit(constraints)      # occupies the only slot
            # identical request: in-flight dedup is always admitted
            again = service.submit(constraints)
            assert again.fingerprint == ticket.fingerprint
            with pytest.raises(ServiceOverloadedError):
                service.submit(other)                  # cold: over the limit
            stats = service.stats()
            assert stats["rejected_submissions"] == 1
            assert stats["inflight_dedup"] == 1
            gate.set()
            ticket.result(timeout=30)
            # capacity freed: the previously rejected request is admitted
            service.submit(other).result(timeout=30)
        assert service.stats()["rejected_submissions"] == 1

    def test_session_serve_threads_max_pending(self, env):
        schema, _, _, constraints = env
        gate = threading.Event()
        gate.set()
        register_backend(
            "blocking-test",
            lambda schema, config, store=None: _ConstantBackend(
                schema, config, store, gate=gate),
        )
        session = Session(schema, config=RegenConfig(engine="blocking-test",
                                                     max_pending=0))
        with session.serve() as service:
            assert service.max_pending == 0
            with pytest.raises(ServiceOverloadedError):
                service.submit(constraints)
        with session.serve(max_pending=5) as service:
            assert service.max_pending == 5
            service.submit(constraints).result(timeout=30)

    def test_warm_requests_admitted_at_zero_capacity(self, env, tmp_path):
        schema, _, _, constraints = env
        store = tmp_path / "store"
        Session(schema, store=store).summarize(constraints)  # warm the store
        with RegenerationService(schema, store=store, max_pending=0) as service:
            ticket = service.submit(constraints)
            assert ticket.warm
            assert service.stats()["rejected_submissions"] == 0


# ---------------------------------------------------------------------- #
# deprecation shims
# ---------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_hydra_kwargs_warn_and_match_config_path(self, env):
        schema, _, _, constraints = env
        with pytest.warns(DeprecationWarning, match="deprecated"):
            shimmed = Hydra(schema, workers=1, cache_size=8)
        assert shimmed.config == HydraConfig(workers=1, cache_size=8)
        reference = Hydra(schema, HydraConfig(workers=1, cache_size=8))
        assert (_relations_json(shimmed.build_summary(constraints).summary)
                == _relations_json(reference.build_summary(constraints).summary))

    def test_hydra_rejects_config_plus_kwargs(self, env):
        schema = env[0]
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                Hydra(schema, HydraConfig(), workers=2)

    def test_datasynth_kwargs_warn_and_match_config_path(self, env):
        schema, _, _, constraints = env
        with pytest.warns(DeprecationWarning, match="deprecated"):
            shimmed = DataSynth(schema, seed=13)
        assert shimmed.config == DataSynthConfig(seed=13)

    def test_service_cli_warns_and_delegates(self, tmp_path, capsys):
        from repro.cli import main as unified_main
        from repro.service import cli as legacy_cli

        store = str(tmp_path / "store")
        SummaryStore(store)  # create an empty store
        with pytest.warns(DeprecationWarning, match="python -m repro"):
            assert legacy_cli.main(["stats", "--store", store]) == 0
        legacy_out = capsys.readouterr().out
        assert unified_main(["stats", "--store", store]) == 0
        assert capsys.readouterr().out == legacy_out


# ---------------------------------------------------------------------- #
# unified CLI round trip against a store warmed by the legacy CLI
# ---------------------------------------------------------------------- #
class TestUnifiedCLIRoundTrip:
    @staticmethod
    def run_cli(module: str, *argv: str):
        import os
        import subprocess
        import sys as _sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [_sys.executable, "-m", module, *argv],
            capture_output=True, text=True, env=env, cwd=repo, timeout=300,
        )

    def test_unified_serve_round_trips_legacy_warm(self, tmp_path):
        store = str(tmp_path / "store")
        flags = ["--store", store, "--scale", "0.0002", "--queries", "5"]

        warm = self.run_cli("repro.service", "warm", *flags)
        assert warm.returncode == 0, warm.stderr
        fingerprint = warm.stdout.splitlines()[0].split("=", 1)[1]

        serve = self.run_cli("repro", "serve", *flags, "--relation",
                             "store_sales", "--max-batches", "2",
                             "--require-warm")
        assert serve.returncode == 0, serve.stderr
        assert f"fingerprint={fingerprint}" in serve.stdout
        assert "warm=True" in serve.stdout
        assert "pipeline_runs=0" in serve.stdout
        assert "solver_components_solved=0" in serve.stdout

        stats = self.run_cli("repro", "stats", "--store", store, "--entries")
        assert stats.returncode == 0 and "summaries=1" in stats.stdout

    def test_unified_summarize_then_regenerate(self, tmp_path):
        store = str(tmp_path / "store")
        flags = ["--store", store, "--scale", "0.0002", "--queries", "5"]

        summarize = self.run_cli("repro", "summarize", *flags)
        assert summarize.returncode == 0, summarize.stderr
        assert "pipeline_runs=1" in summarize.stdout

        regen = self.run_cli("repro", "regenerate", *flags,
                             "--relation", "store_sales", "--max-batches", "1")
        assert regen.returncode == 0, regen.stderr
        assert "warm=True" in regen.stdout  # served from the warmed store
        assert "streamed relation=store_sales" in regen.stdout

    def test_gc_churn_evicts_lru_keeps_fresh(self, tmp_path):
        # The CI service-smoke churn phase, in-repo: warm two workloads,
        # cap the store to one entry, gc, and assert `serve --require-warm`
        # still exits 0 for the fresh entry but 3 for the evicted one.
        store = str(tmp_path / "store")
        base = ["--store", store, "--scale", "0.0002"]
        old = self.run_cli("repro", "summarize", *base, "--queries", "4",
                           "--tenant", "old-tenant")
        assert old.returncode == 0, old.stderr
        assert "tenant=old-tenant admitted=1" in old.stdout
        fresh = self.run_cli("repro", "summarize", *base, "--queries", "5")
        assert fresh.returncode == 0, fresh.stderr

        gc = self.run_cli("repro", "gc", "--store", store, "--max-entries", "1")
        assert gc.returncode == 0, gc.stderr
        assert "evicted=1" in gc.stdout and "summaries=1" in gc.stdout

        kept = self.run_cli("repro", "serve", *base, "--queries", "5",
                            "--relation", "store_sales", "--max-batches", "1",
                            "--require-warm")
        assert kept.returncode == 0, kept.stderr
        evicted = self.run_cli("repro", "serve", *base, "--queries", "4",
                               "--relation", "store_sales", "--max-batches",
                               "1", "--require-warm")
        assert evicted.returncode == 3
        assert "refusing" in evicted.stderr
