"""Tier-1 enforcement of the public-API surface lock (tools/check_api.py).

The snapshot in ``tools/api_surface.json`` is the reviewed public surface;
any accidental addition, removal or signature change of ``repro.__all__`` /
``repro.api`` fails here (and in the CI ``docs`` job) until it is blessed
with ``python tools/check_api.py --update``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_check_api():
    spec = importlib.util.spec_from_file_location(
        "check_api", REPO_ROOT / "tools" / "check_api.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def test_public_surface_matches_snapshot():
    check_api = _load_check_api()
    errors = check_api.check()
    assert errors == [], "\n".join(errors)


def test_snapshot_covers_the_session_facade():
    check_api = _load_check_api()
    surface = check_api.current_surface()
    assert "Session" in surface["repro_all"]
    assert "RegenConfig" in surface["repro_all"]
    session = surface["repro_api_signatures"]["Session"]
    for verb in ("extract", "summarize", "regenerate", "verify", "serve"):
        assert verb in session["methods"], f"Session.{verb} missing"
