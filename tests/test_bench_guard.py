"""Tier-1 benchmark-coverage drift check.

Runs the same guard as the CI ``bench-trajectory`` job
(``tools/check_bench.py``): every ``benchmarks/bench_*.py`` must route its
measurements through the ``bench`` fixture and keep a valid, quick-scale
``BENCH_*.json`` baseline committed next to it, with no orphan baselines —
so the perf trajectory cannot silently grow holes.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "tools" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_benchmark_is_tracked():
    checker = _load_checker()
    assert checker.check() == []


def test_docs_point_at_the_trajectory():
    """README and the benchmarks doc reference the gate and each other."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/BENCHMARKS.md" in readme
    benchmarks_doc = (REPO_ROOT / "docs" / "BENCHMARKS.md").read_text()
    assert "bench_compare.py" in benchmarks_doc
    assert "BENCH_QUICK" in benchmarks_doc
