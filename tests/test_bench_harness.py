"""Tests of the benchmark telemetry layer (``repro.bench``).

Covers the harness contract the perf-trajectory gate relies on:

* schema round-trip: a recorded ``BENCH_*.json`` loads back with every
  metric's value, unit, direction and tolerances intact;
* atomic persistence: a crash mid-write can never leave a torn JSON at the
  target path, and torn/malformed records fail ``load_record`` loudly;
* classification: better / within-noise / regressed / missing-metric /
  new-metric verdicts honour the direction and tolerance declared at record
  time, and quick-vs-full environments are never compared;
* the ``tools/bench_compare.py`` gate: exit 0 against an identical run,
  exit 2 when a timing metric degrades beyond its declared tolerance.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    CLASS_BETTER,
    CLASS_MISSING_BENCHMARK,
    CLASS_MISSING_METRIC,
    CLASS_NEW_BENCHMARK,
    CLASS_NEW_METRIC,
    CLASS_REGRESSED,
    CLASS_SKIPPED,
    CLASS_WITHIN_NOISE,
    BenchRecorder,
    Metric,
    classify_metric,
    compare_dirs,
    compare_records,
    load_record,
    markdown_report,
    record_filename,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_recorder(quick: bool = True) -> BenchRecorder:
    recorder = BenchRecorder("demo", quick=quick)
    recorder.record_seconds("build_seconds", 1.5)
    recorder.record("tuples_per_second", 5000.0, unit="tuples/s",
                    direction="higher", tolerance=0.5, abs_tolerance=1000.0)
    recorder.record("region_variables", 1620, unit="vars", direction="lower")
    recorder.record("cc_count", 523, unit="constraints", direction="info")
    return recorder


class TestSchemaRoundTrip:
    def test_write_then_load_preserves_everything(self, tmp_path):
        recorder = make_recorder(quick=True)
        target = recorder.write(tmp_path)
        assert target == tmp_path / record_filename("demo")

        payload = load_record(target)
        assert payload["schema_version"] == 1
        assert payload["benchmark"] == "demo"
        assert payload["environment"]["scale"] == "quick"
        assert set(payload["environment"]) >= {"scale", "python", "cpu_count"}
        metrics = {name: Metric.from_dict(name, entry)
                   for name, entry in payload["metrics"].items()}
        assert metrics == recorder.metrics

    def test_full_scale_tag(self, tmp_path):
        recorder = make_recorder(quick=False)
        payload = load_record(recorder.write(tmp_path))
        assert payload["environment"]["scale"] == "full"

    def test_time_contextmanager_records_wall_clock(self):
        recorder = BenchRecorder("demo")
        with recorder.time("span_seconds"):
            pass
        metric = recorder.metrics["span_seconds"]
        assert metric.unit == "s"
        assert metric.direction == "lower"
        assert 0.0 <= metric.value < 1.0

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            Metric(name="bad", value=1.0, direction="sideways")
        with pytest.raises(ValueError):
            Metric(name="bad", value=1.0, tolerance=-0.1)
        with pytest.raises(ValueError):
            Metric(name="bad", value=True)
        with pytest.raises((TypeError, ValueError)):
            BenchRecorder("demo").record("bad", "fast")  # type: ignore[arg-type]


class TestAtomicWrite:
    def test_failed_replace_leaves_previous_record_intact(self, tmp_path, monkeypatch):
        recorder = make_recorder()
        target = recorder.write(tmp_path)
        before = target.read_text()

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        recorder.record("build_seconds", 99.0)
        with pytest.raises(OSError):
            recorder.write(tmp_path)
        monkeypatch.undo()

        # The committed record is byte-identical and no temp litter remains.
        assert target.read_text() == before
        assert list(tmp_path.iterdir()) == [target]
        load_record(target)

    def test_torn_json_fails_loudly(self, tmp_path):
        recorder = make_recorder()
        target = recorder.write(tmp_path)
        target.write_text(target.read_text()[: 40])  # simulate a torn write
        with pytest.raises(ValueError, match="not valid JSON"):
            load_record(target)

    def test_wrong_schema_version_rejected(self, tmp_path):
        recorder = make_recorder()
        target = recorder.write(tmp_path)
        payload = json.loads(target.read_text())
        payload["schema_version"] = 99
        target.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema_version"):
            load_record(target)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"schema_version": 1, "benchmark": "x"}))
        with pytest.raises(ValueError, match="missing field"):
            load_record(path)

    def test_wrongly_typed_fields_rejected(self, tmp_path):
        # A present-but-mistyped 'environment'/'benchmark' must take the
        # ValueError -> exit-1 "invalid record" path, not crash the
        # comparison with an AttributeError later on.
        recorder = make_recorder()
        target = recorder.write(tmp_path)
        good = json.loads(target.read_text())

        bad = dict(good, environment=["quick"])
        target.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="'environment' must be an object"):
            load_record(target)

        bad = dict(good, benchmark=7)
        target.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="'benchmark' must be a string"):
            load_record(target)


class TestClassification:
    def lower(self, value, tolerance=0.10, abs_tolerance=0.0):
        return Metric(name="m", value=value, direction="lower",
                      tolerance=tolerance, abs_tolerance=abs_tolerance)

    def higher(self, value, tolerance=0.10):
        return Metric(name="m", value=value, direction="higher",
                      tolerance=tolerance)

    def test_lower_direction(self):
        baseline = self.lower(10.0)
        assert classify_metric(baseline, self.lower(10.5))[0] == CLASS_WITHIN_NOISE
        assert classify_metric(baseline, self.lower(12.0))[0] == CLASS_REGRESSED
        assert classify_metric(baseline, self.lower(8.0))[0] == CLASS_BETTER

    def test_higher_direction(self):
        baseline = self.higher(10.0)
        assert classify_metric(baseline, self.higher(9.5))[0] == CLASS_WITHIN_NOISE
        assert classify_metric(baseline, self.higher(8.0))[0] == CLASS_REGRESSED
        assert classify_metric(baseline, self.higher(12.0))[0] == CLASS_BETTER

    def test_abs_tolerance_shields_near_zero_baselines(self):
        # 0.1s -> 0.3s is a 3x relative jump but inside the absolute band
        # that keeps sub-second timings from regressing on timer noise.
        baseline = self.lower(0.1, tolerance=0.5, abs_tolerance=0.25)
        assert classify_metric(
            baseline, self.lower(0.3, tolerance=0.5, abs_tolerance=0.25)
        )[0] == CLASS_WITHIN_NOISE
        assert classify_metric(
            baseline, self.lower(0.5, tolerance=0.5, abs_tolerance=0.25)
        )[0] == CLASS_REGRESSED

    def test_info_metrics_never_regress(self):
        baseline = Metric(name="m", value=10.0, direction="info")
        fresh = Metric(name="m", value=1000.0, direction="info")
        assert classify_metric(baseline, fresh)[0] == CLASS_WITHIN_NOISE

    def test_missing_and_new_metric(self):
        metric = self.lower(1.0)
        assert classify_metric(metric, None)[0] == CLASS_MISSING_METRIC
        assert classify_metric(None, metric)[0] == CLASS_NEW_METRIC
        with pytest.raises(ValueError):
            classify_metric(None, None)

    def test_zero_tolerance_is_exact(self):
        baseline = self.lower(1620, tolerance=0.0)
        assert classify_metric(baseline, self.lower(1620, tolerance=0.0))[0] \
            == CLASS_WITHIN_NOISE
        assert classify_metric(baseline, self.lower(1621, tolerance=0.0))[0] \
            == CLASS_REGRESSED

    def test_scale_mismatch_skips_comparison(self):
        quick = make_recorder(quick=True).to_dict()
        full = make_recorder(quick=False).to_dict()
        verdicts = compare_records(full, quick)
        assert [v.verdict for v in verdicts] == [CLASS_SKIPPED]
        assert "scale" in verdicts[0].detail

    def test_compare_dirs_missing_and_new_benchmarks(self, tmp_path):
        baseline_dir, fresh_dir = tmp_path / "a", tmp_path / "b"
        make_recorder().write(baseline_dir)
        other = BenchRecorder("other", quick=True)
        other.record("x", 1.0)
        other.write(fresh_dir)

        comparison = compare_dirs(baseline_dir, fresh_dir)
        verdicts = {v.benchmark: v.verdict for v in comparison.verdicts}
        assert verdicts["demo"] == CLASS_MISSING_BENCHMARK
        assert verdicts["other"] == CLASS_NEW_BENCHMARK
        assert not comparison.ok  # a vanished benchmark fails the gate

    def test_identical_dirs_are_ok(self, tmp_path):
        baseline_dir, fresh_dir = tmp_path / "a", tmp_path / "b"
        make_recorder().write(baseline_dir)
        make_recorder().write(fresh_dir)
        comparison = compare_dirs(baseline_dir, fresh_dir)
        assert comparison.ok
        assert set(comparison.by_class()) == {CLASS_WITHIN_NOISE}
        report = markdown_report(comparison)
        assert "| demo |" in report
        assert "REGRESSED" not in report


class TestBenchCompareCli:
    """Subprocess tests of the actual CI gate."""

    def run_gate(self, baseline_dir, fresh_dir=None):
        argv = [sys.executable, str(REPO_ROOT / "tools" / "bench_compare.py"),
                "--baseline", str(baseline_dir)]
        if fresh_dir is not None:
            argv += ["--fresh", str(fresh_dir)]
        return subprocess.run(
            argv, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )

    def test_identical_run_exits_zero(self, tmp_path):
        baseline_dir, fresh_dir = tmp_path / "a", tmp_path / "b"
        make_recorder().write(baseline_dir)
        make_recorder().write(fresh_dir)
        result = self.run_gate(baseline_dir, fresh_dir)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_slowed_metric_exits_two(self, tmp_path):
        baseline_dir, fresh_dir = tmp_path / "a", tmp_path / "b"
        make_recorder().write(baseline_dir)
        slowed = make_recorder()
        # 1.5s -> 9s: far beyond the 50% + 0.25s band declared at record time.
        slowed.record_seconds("build_seconds", 9.0)
        slowed.write(fresh_dir)

        result = self.run_gate(baseline_dir, fresh_dir)
        assert result.returncode == 2, result.stdout + result.stderr
        assert "REGRESSED" in result.stdout
        assert "build_seconds" in result.stdout

    def test_broken_comparison_exits_one(self, tmp_path):
        result = self.run_gate(tmp_path / "missing_a", tmp_path / "missing_b")
        assert result.returncode == 1

    def test_missing_fresh_flag_exits_one(self, tmp_path):
        # A bare invocation used to self-compare the baselines (guaranteed
        # pass); it must refuse instead of pretending a regression check ran.
        make_recorder().write(tmp_path)
        result = self.run_gate(tmp_path)
        assert result.returncode == 1
        assert "--fresh is required" in result.stderr

    def test_self_comparison_warns(self, tmp_path):
        make_recorder().write(tmp_path)
        result = self.run_gate(tmp_path, tmp_path)
        assert result.returncode == 0
        assert "self-comparison always passes" in result.stderr
