"""Tests for the benchmark environments (TPC-DS-like, JOB-like) and the
random data / workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchdata.datagen import generate_database
from repro.benchdata.job import job_schema, job_workload
from repro.benchdata.tpcds import (
    FACT_RELATIONS,
    LARGEST_RELATIONS,
    complex_workload,
    simple_workload,
    tpcds_schema,
)
from repro.hydra.client import extract_constraints
from repro.workload.generator import WorkloadGenerator, WorkloadProfile


class TestSchemas:
    def test_tpcds_schema_validates_and_scales(self):
        schema = tpcds_schema(scale_factor=1.0)
        assert len(schema) == 16
        assert schema.relation("store_sales").row_count == 288_000_000
        small = tpcds_schema(scale_factor=0.001)
        assert small.relation("store_sales").row_count == 288_000
        # dimension scale defaults to the fact scale when below 1
        assert small.relation("item").row_count < 204_000
        for relation in FACT_RELATIONS:
            assert schema.relation(relation).foreign_keys
        for relation in LARGEST_RELATIONS:
            assert relation in schema.relation_names

    def test_tpcds_is_a_dag_with_snowflake(self):
        schema = tpcds_schema(0.001)
        assert not schema.is_tree_structured()  # shared dimensions => DAG
        assert schema.join_path("store_sales", "customer_address") == [
            "store_sales", "customer", "customer_address",
        ]

    def test_job_schema_validates(self):
        schema = job_schema(scale_factor=0.001)
        assert len(schema) == 14
        assert schema.relation("cast_info").foreign_key_to("title") is not None
        assert schema.join_path("movie_companies", "company_type") is not None


class TestDataGenerator:
    def test_referential_integrity_of_generated_data(self):
        schema = tpcds_schema(scale_factor=0.0001)
        database = generate_database(schema, seed=2)
        for relation in schema.relations:
            table = database.table(relation.name)
            assert table.num_rows == relation.row_count
            for fk in relation.foreign_keys:
                parent = database.table(fk.target)
                fks = table.column(fk.column)
                assert fks.min() >= 1
                assert fks.max() <= parent.num_rows

    def test_attribute_values_within_domain(self):
        schema = tpcds_schema(scale_factor=0.0001)
        database = generate_database(schema, seed=2, skew=1.5)
        for relation in schema.relations:
            table = database.table(relation.name)
            for attribute in relation.attributes:
                values = table.column(attribute.name)
                assert values.min() >= attribute.domain.lo
                assert values.max() < attribute.domain.hi

    def test_determinism(self):
        schema = tpcds_schema(scale_factor=0.0001)
        a = generate_database(schema, seed=5)
        b = generate_database(schema, seed=5)
        assert np.array_equal(a.table("item").column("i_category"),
                              b.table("item").column("i_category"))


class TestWorkloads:
    def test_complex_workload_shape(self):
        schema = tpcds_schema(scale_factor=0.0002)
        workload = complex_workload(schema, num_queries=131)
        assert len(workload) == 131
        workload.validate(schema)
        assert all(q.root in FACT_RELATIONS for q in workload)
        assert all(q.filtered_relations() for q in workload)

    def test_simple_workload_uses_few_constants(self):
        schema = tpcds_schema(scale_factor=0.0002)
        workload = simple_workload(schema, num_queries=50)
        constants = set()
        for query in workload:
            for predicate in query.filters.values():
                for conjunct in predicate.conjuncts:
                    for values in conjunct.constraints.values():
                        constants.update(values.boundaries())
        # far fewer distinct constants than the complex workload would use
        assert len(constants) < 120

    def test_workload_determinism(self):
        schema = tpcds_schema(scale_factor=0.0002)
        a = complex_workload(schema, num_queries=20, seed=9)
        b = complex_workload(schema, num_queries=20, seed=9)
        assert [q.relations for q in a] == [q.relations for q in b]
        assert [q.filters for q in a] == [q.filters for q in b]

    def test_job_workload_constraint_volume(self):
        schema = job_schema(scale_factor=0.0005)
        workload = job_workload(schema, num_queries=60)
        database = generate_database(schema, seed=4)
        package = extract_constraints(database, workload)
        # roughly two CCs per query as in the paper's JOB setup
        assert len(package.constraints) > 60

    def test_generator_respects_attribute_budget(self):
        schema = tpcds_schema(scale_factor=0.0002)
        profile = WorkloadProfile(num_queries=30, root_relations=FACT_RELATIONS,
                                  max_total_filter_attributes=3,
                                  max_attributes_per_filter=2)
        workload = WorkloadGenerator(schema, profile, seed=1).generate()
        for query in workload:
            total = sum(len(p.attributes) for p in query.filters.values())
            assert total <= 3
