"""The replicated store fleet: change log, hash ring, leader/follower.

In-process tests cover the :class:`ChangeLog` durability contract (dense
offsets, segment rotation, torn-tail recovery, retention gaps), the
:class:`HashRing` placement properties, and the full leader/follower loop —
bootstrap, read-your-writes, restart resume, lineage-change resync, delete
replication and the request-body cap.  A final two-process test mirrors the
CI ``cluster-smoke`` phase over the real CLI: a leader subprocess, two
follower serving front-ends on empty directories, one of which is killed
mid-run while the other keeps serving with zero LP solves.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.cluster import (
    ChangeLog,
    DiskBackend,
    HashRing,
    LeaderClient,
    ReplicatedStore,
    StoreServer,
)
from repro.cluster.server import STORE_WIRE_VERSION
from repro.errors import ChangeLogError, ClusterError, LeaderUnavailableError
from repro.service.store import SummaryStore

from tests.test_server_cli import cli_env, read_line, run_cli
from tests.test_store_backend import fp, make_solution, make_summary


class TestChangeLog:
    def test_offsets_are_dense_and_durable(self, tmp_path):
        log = ChangeLog(tmp_path / "log")
        assert log.last_offset == 0
        assert log.append("put", "summaries", "k1", {"a": 1}) == 1
        assert log.append("delete", "summaries", "k1") == 2
        records = log.read(1)
        assert [r["offset"] for r in records] == [1, 2]
        assert records[0]["payload"] == {"a": 1}
        assert records[1]["op"] == "delete"
        log.close()
        # reopen: same lineage, same tail
        reopened = ChangeLog(tmp_path / "log")
        assert reopened.last_offset == 2
        assert reopened.log_id == log.log_id
        assert reopened.append("put", "components", "c", {}) == 3

    def test_segment_rotation_and_cross_segment_read(self, tmp_path):
        log = ChangeLog(tmp_path / "log", segment_max_bytes=200)
        for i in range(1, 21):
            log.append("put", "summaries", f"k{i}", {"n": i})
        segments = sorted((tmp_path / "log").glob("segment-*.jsonl"))
        assert len(segments) > 1
        records = log.read(1, max_records=100)
        assert [r["offset"] for r in records] == list(range(1, 21))
        # positioned read starts mid-log, spanning segments
        assert [r["offset"] for r in log.read(9, max_records=5)] \
            == [9, 10, 11, 12, 13]

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        log = ChangeLog(tmp_path / "log")
        log.append("put", "summaries", "k1", {})
        log.append("put", "summaries", "k2", {})
        log.close()
        tail = sorted((tmp_path / "log").glob("segment-*.jsonl"))[-1]
        with open(tail, "ab") as handle:
            handle.write(b'{"offset": 3, "op": "put", "ki')  # crash mid-append
        reopened = ChangeLog(tmp_path / "log")
        assert reopened.last_offset == 2
        # the torn line is gone and the next append reuses its offset
        assert reopened.append("put", "summaries", "k3", {}) == 3
        assert [r["key"] for r in reopened.read(1)] == ["k1", "k2", "k3"]

    def test_pruned_history_raises_gap(self, tmp_path):
        log = ChangeLog(tmp_path / "log", segment_max_bytes=200)
        for i in range(1, 21):
            log.append("put", "summaries", f"k{i}", {"n": i})
        log.close()
        segments = sorted((tmp_path / "log").glob("segment-*.jsonl"))
        segments[0].unlink()  # simulate retention pruning the oldest segment
        reopened = ChangeLog(tmp_path / "log", segment_max_bytes=200)
        assert reopened.first_offset > 1
        with pytest.raises(ChangeLogError):
            reopened.read(1)
        assert reopened.read(reopened.first_offset)

    def test_rejects_bad_input(self, tmp_path):
        log = ChangeLog(tmp_path / "log")
        with pytest.raises(ChangeLogError):
            log.append("merge", "summaries", "k")
        with pytest.raises(ChangeLogError):
            log.read(0)
        log.close()
        with pytest.raises(ChangeLogError):
            log.append("put", "summaries", "k", {})


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = [fp(f"k{i}") for i in range(200)]
        a = HashRing(["n1", "n2", "n3"])
        b = HashRing(["n1", "n2", "n3"])
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_virtual_nodes_spread_keys(self):
        ring = HashRing(["n1", "n2", "n3"])
        keys = [fp(f"k{i}") for i in range(600)]
        owners = [ring.node_for(k) for k in keys]
        counts = {node: owners.count(node) for node in ring.nodes}
        assert set(counts) == {"n1", "n2", "n3"}
        assert min(counts.values()) > 600 // 10  # no starved shard

    def test_resize_only_remaps_adjacent_keys(self):
        keys = [fp(f"k{i}") for i in range(500)]
        ring = HashRing(["n1", "n2", "n3"])
        before = {k: ring.node_for(k) for k in keys}
        ring.add_node("n4")
        after = {k: ring.node_for(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # every moved key moved TO the new node, and roughly 1/4 moved
        assert all(after[k] == "n4" for k in moved)
        assert 0 < len(moved) < len(keys) // 2
        # removing it restores the original placement exactly
        ring.remove_node("n4")
        assert {k: ring.node_for(k) for k in keys} == before

    def test_invalid_states(self):
        with pytest.raises(ClusterError):
            HashRing([])
        with pytest.raises(ClusterError):
            HashRing(["a"], vnodes=0)
        ring = HashRing(["a"])
        with pytest.raises(ClusterError):
            ring.add_node("a")
        with pytest.raises(ClusterError):
            ring.remove_node("b")


@pytest.fixture
def leader(tmp_path):
    """A started leader over a disk store, torn down cleanly."""
    store = DiskBackend(tmp_path / "leader")
    server = StoreServer(store, port=0).start()
    yield server
    server.shutdown()


def follower(server: StoreServer, root, **kwargs) -> ReplicatedStore:
    kwargs.setdefault("poll_interval", 0.05)
    kwargs.setdefault("start_tailer", False)
    return ReplicatedStore(server.url, root, **kwargs)


class TestReplication:
    def test_bootstrap_seeds_full_history(self, tmp_path):
        """A leader opened on a store with pre-server history logs it all,
        so an empty-directory follower catches up without a snapshot."""
        store = DiskBackend(tmp_path / "leader")
        key = fp("pre-existing")
        store.put_summary(key, make_summary(rows=40))
        store.put_component("c" * 64, make_solution())
        with StoreServer(store, port=0) as server:
            assert server.log.last_offset == 2
            replica = follower(server, tmp_path / "replica")
            replica.catch_up()
            assert replica.applied_offset == 2
            fetched = replica.local.get_summary(key)
            assert fetched is not None
            assert fetched.total_rows() == 40
            assert replica.local.get_component("c" * 64) is not None
            replica.close()

    def test_read_your_writes_through_leader(self, tmp_path, leader):
        writer = follower(leader, tmp_path / "writer")
        reader = follower(leader, tmp_path / "reader")
        key = fp("ryw")
        writer.put_summary(key, make_summary(rows=80))
        # the writer sees its own write locally without any further poll
        assert writer.local.has_summary(key)
        # a second replica needs one catch-up, then reads locally
        reader.catch_up()
        assert reader.local.has_summary(key)
        assert reader.get_summary(key).total_rows() == 80
        writer.close()
        reader.close()

    def test_restart_resumes_from_applied_offset(self, tmp_path, leader):
        key = fp("resume")
        replica = follower(leader, tmp_path / "replica")
        replica.put_summary(key, make_summary())
        applied = replica.applied_offset
        replica.close()
        # a new process over the same directory resumes, not resyncs
        reopened = follower(leader, tmp_path / "replica")
        assert reopened.applied_offset == applied
        leader.store.put_summary(fp("while-down"), make_summary())
        reopened.catch_up()
        assert reopened.applied_offset == applied + 1
        assert reopened.local.has_summary(fp("while-down"))
        assert reopened.registry.snapshot().get(
            "repro_cluster_resyncs_total", 0) == 0
        reopened.close()

    def test_lineage_change_forces_full_resync(self, tmp_path):
        store = DiskBackend(tmp_path / "leader")
        key = fp("lineage")
        server = StoreServer(store, port=0).start()
        replica = follower(server, tmp_path / "replica")
        replica.put_summary(key, make_summary())
        server.shutdown()
        # rebuild the leader's log from scratch: new log_id, new offsets
        for path in sorted((tmp_path / "leader" / "changelog").iterdir()):
            path.unlink()
        server = StoreServer(store, port=0).start()
        try:
            replica.client = LeaderClient(server.url)
            replica.leader_url = server.url
            store.put_summary(fp("after-rebuild"), make_summary())
            replica.catch_up()
            assert replica.local.has_summary(key)
            assert replica.local.has_summary(fp("after-rebuild"))
            assert replica.registry.snapshot()[
                "repro_cluster_resyncs_total"] == 1
            replica.close()
        finally:
            server.shutdown()

    def test_delete_and_compact_replicate(self, tmp_path, leader):
        replica = follower(leader, tmp_path / "replica")
        keep, drop = fp("keep"), fp("drop")
        replica.put_summary(keep, make_summary())
        replica.put_summary(drop, make_summary())
        assert replica.delete_entry("summaries", drop) is True
        assert not replica.local.has_summary(drop)
        # leader-side compaction deletions flow through the log too
        leader.store.put_summary(fp("evictme"), make_summary())
        replica.catch_up()
        leader.store.compact(max_entries=1)
        replica.catch_up()
        assert (set(replica.local.summary_fingerprints())
                == set(leader.store.summary_fingerprints()))
        replica.close()

    def test_leader_down_reads_stay_local(self, tmp_path):
        store = DiskBackend(tmp_path / "leader")
        server = StoreServer(store, port=0).start()
        replica = follower(server, tmp_path / "replica")
        key = fp("offline")
        replica.put_summary(key, make_summary(rows=32))
        server.shutdown()
        # reads keep serving from the replica; writes fail loudly
        assert replica.get_summary(key).total_rows() == 32
        assert replica.has_summary(key)
        with pytest.raises(LeaderUnavailableError):
            replica.put_summary(fp("unwritable"), make_summary())
        replica.close()


class TestStoreServerWire:
    def test_oversized_put_answers_413(self, tmp_path):
        store = DiskBackend(tmp_path / "leader")
        server = StoreServer(store, port=0, max_request_bytes=512).start()
        try:
            body = json.dumps({"version": 1, "payload": {
                "format": 1, "pad": "x" * 2048}}).encode()
            request = urllib.request.Request(
                f"{server.url}/v1/entry/summaries/{fp('big')}",
                data=body, method="PUT",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            assert info.value.code == 413
            # the counter increments just after the response is written —
            # give the handler thread a moment to get there
            key = ('repro_cluster_server_requests_total'
                   '{endpoint="entry_put",code="413"}')
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.registry.snapshot().get(key) == 1:
                    break
                time.sleep(0.02)
            assert server.registry.snapshot()[key] == 1
        finally:
            server.shutdown()

    def test_wire_version_mismatch_answers_400(self, tmp_path, leader):
        body = json.dumps({"version": 99, "payload": {}}).encode()
        request = urllib.request.Request(
            f"{leader.url}/v1/entry/summaries/{fp('ver')}",
            data=body, method="PUT",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_log_endpoint_signals_resync_when_ahead(self, tmp_path, leader):
        leader.store.put_summary(fp("one"), make_summary())
        client = LeaderClient(leader.url)
        batch = client.request("GET", "/v1/log?from=999")
        assert batch["resync"] is True
        assert batch["records"] == []
        ok = client.request("GET", "/v1/log?from=1")
        assert ok["resync"] is False
        assert len(ok["records"]) == 1

    def test_healthz_and_stats(self, tmp_path, leader):
        with urllib.request.urlopen(leader.url + "/healthz", timeout=10) as r:
            health = json.loads(r.read())
        assert health["role"] == "leader"
        assert health["log_id"] == leader.log.log_id
        stats = LeaderClient(leader.url).request("GET", "/v1/stats")
        assert stats["counters"]["summaries"] == 0
        assert stats["first_offset"] == 1

    def test_memory_store_refused(self):
        with pytest.raises(ClusterError):
            StoreServer(SummaryStore(None))


class TestServiceOverReplicatedStore:
    def test_service_mounts_replicated_store(self, tmp_path, toy_schema):
        """A RegenerationService given store_url serves warm fingerprints
        from the replica with zero pipeline runs."""
        from repro.api.config import RegenConfig
        from repro.service.service import RegenerationService

        leader_store = DiskBackend(tmp_path / "leader")
        key = fp("served")
        leader_store.put_summary(key, make_summary(rows=48))
        with StoreServer(leader_store, port=0) as server:
            config = RegenConfig(store_url=server.url, store_role="follower")
            service = RegenerationService(
                toy_schema, store=str(tmp_path / "replica"), config=config)
            try:
                assert isinstance(service.store, ReplicatedStore)
                assert service.store.has_summary(key)
                replicated = service.store.get_summary(key)
                assert replicated.total_rows() == 48
                # the replica regenerates the exact table the leader would
                import numpy as np

                from repro.tuplegen.generator import TupleGenerator

                ours = TupleGenerator(replicated.relation("S")).materialize()
                theirs = TupleGenerator(
                    leader_store.get_summary(key).relation("S")).materialize()
                assert ours.column_names == theirs.column_names
                for column in ours.column_names:
                    assert np.array_equal(ours.column(column),
                                          theirs.column(column))
                assert service.stats()["pipeline_runs"] == 0
            finally:
                service.close()
                service.store.close()


FLAGS = ["--scale", "0.0002", "--queries", "3", "--workload", "simple"]


class TestClusterSmokeCLI:
    def test_leader_two_followers_kill_one(self, tmp_path):
        """The CI cluster-smoke phase, in-repo: warm a leader, bring up two
        follower serving front-ends on empty directories, verify both serve
        the fingerprint with zero LP solves, kill one mid-run, and check the
        survivor still serves."""
        leader_dir = str(tmp_path / "leader")

        warm = run_cli("summarize", "--store", leader_dir, *FLAGS)
        assert warm.returncode == 0, warm.stderr
        fingerprint = next(
            line.split("=", 1)[1] for line in warm.stdout.splitlines()
            if line.startswith("fingerprint="))

        procs = []
        try:
            leader = subprocess.Popen(
                [sys.executable, "-m", "repro", "store", "serve",
                 "--store", leader_dir, "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
                env=cli_env())
            procs.append(leader)
            banner = read_line(leader, timeout=60)
            assert banner.startswith("listening on http://")
            leader_url = banner.split()[2]

            followers = []
            for name in ("f1", "f2"):
                proc = subprocess.Popen(
                    [sys.executable, "-m", "repro", "serve",
                     "--store", str(tmp_path / name),
                     "--store-url", leader_url,
                     "--fingerprint", fingerprint, *FLAGS,
                     "--require-warm", "--listen", "127.0.0.1:0"],
                    stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                    text=True, env=cli_env())
                procs.append(proc)
                followers.append(proc)

            urls = []
            for proc in followers:
                banner = read_line(proc, timeout=120)
                assert f"fingerprint={fingerprint}" in banner
                assert "warm=True" in banner
                urls.append(banner.split()[2])

            for url in urls:
                with urllib.request.urlopen(url + "/metrics",
                                            timeout=30) as r:
                    metrics = r.read().decode()
                assert "repro_lp_components_solved_total 0" in metrics

            # kill follower 1 mid-run; follower 2 keeps serving
            followers[0].kill()
            followers[0].wait(timeout=30)
            with urllib.request.urlopen(urls[1] + "/healthz", timeout=30) as r:
                assert json.loads(r.read())["status"] == "ok"
            with urllib.request.urlopen(
                    urls[1] + f"/v1/stream/{fingerprint}/item",
                    timeout=60) as r:
                total = int(r.headers["X-Repro-Total-Rows"])
                rows = [json.loads(line) for line in r.read().splitlines()]
            assert total and len(rows) == total
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=30)
