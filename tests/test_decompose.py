"""Tests for the constraint-graph decomposer, the component solution cache
and the :class:`~repro.lp.solver.ParallelLPSolver`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InfeasibleLPError, LPError
from repro.hydra.pipeline import Hydra, HydraConfig
from repro.lp.decompose import (
    component_key,
    decompose_model,
    stitch_solutions,
)
from repro.lp.formulate import formulate_view_lp
from repro.lp.model import LPModel, LPSolution
from repro.lp.solver import LPSolver, ParallelLPSolver
from repro.views.preprocess import Preprocessor


def two_block_model() -> LPModel:
    """A model with two independent blocks, one free variable and one
    variable-free (orphan) constraint."""
    model = LPModel(name="blocks", num_variables=5)
    model.add_constraint([0, 1], 10)
    model.add_constraint([1], 4)
    model.add_constraint([2, 3], 7)
    model.add_constraint([], 0)
    return model


class TestDecomposer:
    def test_components_are_independent_blocks(self):
        decomposition = decompose_model(two_block_model())
        memberships = sorted(c.variable_indices for c in decomposition.components)
        assert memberships == [(0, 1), (2, 3)]
        assert decomposition.free_variables == (4,)
        assert len(decomposition.orphan_constraints) == 1

    def test_components_sorted_largest_first(self):
        model = LPModel(name="sizes", num_variables=6)
        model.add_constraint([0], 1)
        model.add_constraint([1, 2, 3], 5)
        model.add_constraint([4, 5], 2)
        decomposition = decompose_model(model)
        sizes = [c.num_variables for c in decomposition.components]
        assert sizes == sorted(sizes, reverse=True)

    def test_chained_constraints_merge_components(self):
        # 0-1 and 1-2 share variable 1 -> a single component {0, 1, 2}.
        model = LPModel(name="chain", num_variables=3)
        model.add_constraint([0, 1], 5)
        model.add_constraint([1, 2], 6)
        decomposition = decompose_model(model)
        assert len(decomposition.components) == 1
        assert decomposition.components[0].variable_indices == (0, 1, 2)

    def test_local_models_are_self_contained(self):
        decomposition = decompose_model(two_block_model())
        for component in decomposition.components:
            local = component.model
            assert local.num_variables == len(component.variable_indices)
            for constraint in local.constraints:
                assert all(0 <= v < local.num_variables for v in constraint.variables)

    def test_nonzero_orphan_constraint_flags_infeasibility(self):
        model = LPModel(name="orphan", num_variables=1)
        model.add_constraint([0], 3)
        model.constraints.append(model.constraints[0].__class__(
            variables=(), rhs=5, kind="cardinality"
        ))
        decomposition = decompose_model(model)
        assert decomposition.orphan_violation == 5.0
        solutions = [LPSolver().solve(c.model) for c in decomposition.components]
        stitched = stitch_solutions(decomposition, solutions)
        assert not stitched.feasible
        assert stitched.max_violation >= 5.0

    def test_stitch_requires_matching_solutions(self):
        decomposition = decompose_model(two_block_model())
        with pytest.raises(LPError):
            stitch_solutions(decomposition, [])

    def test_stitch_recomposes_feasible_solution(self):
        model = two_block_model()
        decomposition = decompose_model(model)
        solutions = [LPSolver().solve(c.model) for c in decomposition.components]
        stitched = stitch_solutions(decomposition, solutions)
        a, b = model.matrix()
        assert np.abs(a.dot(stitched.values.astype(float)) - b).max() == 0.0
        assert stitched.values[4] == 0  # free variable pinned to zero


class TestComponentKey:
    def test_key_ignores_names_and_tags(self):
        one = LPModel(name="one", num_variables=2)
        one.add_constraint([0, 1], 9, tag="cc0@sv0")
        two = LPModel(name="two", num_variables=2)
        two.add_constraint([0, 1], 9, tag="something-else")
        assert component_key(one) == component_key(two)

    def test_key_distinguishes_rhs_and_structure(self):
        base = LPModel(name="m", num_variables=2)
        base.add_constraint([0, 1], 9)
        different_rhs = LPModel(name="m", num_variables=2)
        different_rhs.add_constraint([0, 1], 8)
        different_vars = LPModel(name="m", num_variables=2)
        different_vars.add_constraint([0], 9)
        keys = {component_key(base), component_key(different_rhs),
                component_key(different_vars)}
        assert len(keys) == 3


class TestParallelLPSolver:
    def test_matches_serial_solver_on_person_lp(self):
        from repro.constraints.cc import CardinalityConstraint
        from repro.predicates.dnf import DNFPredicate, col
        from repro.predicates.interval import Interval
        from repro.schema.relation import Attribute, Relation
        from repro.schema.schema import Schema

        person_schema = Schema([
            Relation(
                name="person", primary_key="p_id", row_count=8000,
                attributes=[
                    Attribute("age", Interval(0, 100)),
                    Attribute("salary", Interval(0, 100_000)),
                ],
            )
        ])
        ccs = [
            CardinalityConstraint(relation="person", cardinality=1000,
                                  predicate=(col("age") < 40).conjoin(col("salary") < 40_000)),
            CardinalityConstraint(relation="person", cardinality=8000,
                                  predicate=DNFPredicate.true()),
        ]
        task = Preprocessor(person_schema).build_task("person", ccs)
        view_lp = formulate_view_lp(task)
        parallel = ParallelLPSolver(workers=2).solve(view_lp.model)
        serial = LPSolver().solve(view_lp.model)
        a, b = view_lp.model.matrix()
        for solution in (parallel, serial):
            assert solution.feasible
            assert solution.max_violation == 0.0
            assert np.abs(a.dot(solution.values.astype(float)) - b).max() == 0.0

    def test_repeated_solve_hits_cache(self):
        solver = ParallelLPSolver(workers=2, cache_size=16)
        model = two_block_model()
        first = solver.solve(model)
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_misses == 2
        second = solver.solve(model)
        assert solver.stats.cache_hits == 2
        assert solver.stats.components_solved == 2  # nothing re-solved
        assert np.array_equal(first.values, second.values)
        assert second.solve_seconds == 0.0  # cache hits cost no solve time

    def test_cache_disabled(self):
        solver = ParallelLPSolver(workers=1, cache_size=0)
        model = two_block_model()
        solver.solve(model)
        solver.solve(model)
        assert solver.stats.cache_hits == 0
        assert solver.stats.components_solved == 4

    def test_cache_evicts_least_recently_used(self):
        solver = ParallelLPSolver(workers=1, cache_size=1)
        solver.solve(two_block_model())  # two components, capacity one
        assert solver.cache_info["size"] == 1

    def test_solve_many_deduplicates_across_models(self):
        solver = ParallelLPSolver(workers=2, cache_size=16)
        solutions = solver.solve_many([two_block_model(), two_block_model()])
        assert len(solutions) == 2
        assert solver.stats.components_solved == 2  # shared across the batch
        assert np.array_equal(solutions[0].values, solutions[1].values)

    def test_strict_mode_raises_on_conflicting_ccs(self):
        model = LPModel(name="conflict", num_variables=1)
        model.add_constraint([0], 10)
        model.add_constraint([0], 20)
        with pytest.raises(InfeasibleLPError):
            ParallelLPSolver(workers=2, strict=True).solve(model)

    def test_non_strict_mode_reports_violation(self):
        model = LPModel(name="conflict", num_variables=1)
        model.add_constraint([0], 10)
        model.add_constraint([0], 20)
        solution = ParallelLPSolver(workers=2).solve(model)
        assert not solution.feasible
        assert solution.max_violation >= 5.0

    def test_process_pool_backend(self):
        solver = ParallelLPSolver(workers=2, use_processes=True)
        solution = solver.solve(two_block_model())
        assert solution.feasible
        assert solution.max_violation == 0.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(LPError):
            ParallelLPSolver(workers=0)
        with pytest.raises(LPError):
            ParallelLPSolver(cache_size=-1)

    def test_empty_model(self):
        solution = ParallelLPSolver().solve(LPModel(name="empty"))
        assert solution.feasible
        assert solution.values.size == 0


class TestTierOneWorkloads:
    """Component solutions must recompose to feasible full solutions on the
    tier-1 client environments (TPC-DS-like and JOB-like)."""

    def _check_views(self, schema, constraints):
        preprocessor = Preprocessor(schema)
        solver = ParallelLPSolver(workers=2)
        by_relation = constraints.by_relation()
        checked = 0
        for relation, ccs in by_relation.items():
            task = preprocessor.build_task(relation, ccs)
            if not task.subviews:
                continue
            view_lp = formulate_view_lp(task)
            decomposition = decompose_model(view_lp.model)
            solution = solver.solve(view_lp.model)
            a, b = view_lp.model.matrix()
            residual = np.abs(a.dot(solution.values.astype(float)) - b).max() if b.size else 0.0
            assert solution.max_violation == 0.0, relation
            assert residual == 0.0, relation
            assert (solution.values >= 0).all()
            # decomposition covers every variable exactly once
            seen = sorted(
                v for c in decomposition.components for v in c.variable_indices
            ) + sorted(decomposition.free_variables)
            assert sorted(seen) == list(range(view_lp.model.num_variables))
            checked += 1
        assert checked > 0

    def test_tpcds_views_recompose_feasibly(self, small_tpcds_schema,
                                            small_tpcds_constraints):
        self._check_views(small_tpcds_schema, small_tpcds_constraints)

    def test_job_views_recompose_feasibly(self, small_job_schema,
                                          small_job_constraints):
        self._check_views(small_job_schema, small_job_constraints)

    def test_hydra_rebuild_hits_cache(self, small_tpcds_schema, small_tpcds_constraints):
        hydra = Hydra(small_tpcds_schema, HydraConfig(workers=2, cache_size=512))
        first = hydra.build_summary(small_tpcds_constraints)
        components = hydra.solver.stats.components_solved
        assert components > 0
        second = hydra.build_summary(small_tpcds_constraints)
        assert hydra.solver.stats.components_solved == components  # all cached
        assert hydra.solver.stats.cache_hits >= components
        assert second.solver_stats["cache_hits"] >= components
        for relation in first.summary.relations:
            assert first.summary.relation(relation).rows == \
                second.summary.relation(relation).rows
