"""Tier-1 documentation drift checks.

Runs the same checks as the CI ``docs`` job (``tools/check_docs.py``):
every ``src/repro`` module must carry a module docstring, and every fenced
python snippet in README/docs must compile — with ``>>>`` blocks executed
as doctests — so the documentation layer cannot silently rot.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_module_has_a_docstring():
    checker = _load_checker()
    assert checker.check_module_docstrings() == []


def test_fenced_doc_snippets_compile_and_doctests_pass():
    checker = _load_checker()
    assert checker.check_fenced_snippets() == []


def test_docs_reference_each_other():
    """README links the docs pages and each docs page links back."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in readme and "docs/SERVING.md" in readme
    assert "docs/API.md" in readme
    for page in ("ARCHITECTURE.md", "SERVING.md", "API.md"):
        text = (REPO_ROOT / "docs" / page).read_text()
        assert "README" in text or "repro.api" in text
