"""Unit tests for the columnar table, database container and executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.database import Database
from repro.engine.executor import Executor
from repro.engine.plan import FilterNode, JoinNode, ScanNode
from repro.engine.table import Table
from repro.errors import EngineError
from repro.predicates.dnf import DNFPredicate, col
from repro.workload.query import Query


# ---------------------------------------------------------------------- #
# Table
# ---------------------------------------------------------------------- #
class TestTable:
    def test_construction_and_shape(self):
        t = Table({"a": np.array([1, 2, 3]), "b": np.array([4, 5, 6])}, name="t")
        assert t.num_rows == 3
        assert t.column_names == ("a", "b")
        assert t.row(1) == {"a": 2, "b": 5}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EngineError):
            Table({"a": np.array([1, 2]), "b": np.array([1])})

    def test_needs_columns(self):
        with pytest.raises(EngineError):
            Table({})

    def test_from_rows_and_empty(self):
        t = Table.from_rows(["a", "b"], [(1, 2), (3, 4)])
        assert t.num_rows == 2
        assert list(t.column("b")) == [2, 4]
        e = Table.from_rows(["a"], [])
        assert e.num_rows == 0

    def test_from_rows_width_mismatch(self):
        with pytest.raises(EngineError):
            Table.from_rows(["a", "b"], [(1, 2, 3)])

    def test_select_take_project(self):
        t = Table({"a": np.arange(5), "b": np.arange(5) * 10})
        sel = t.select(np.array([True, False, True, False, True]))
        assert list(sel.column("a")) == [0, 2, 4]
        taken = t.take(np.array([1, 1, 3]))
        assert list(taken.column("b")) == [10, 10, 30]
        proj = t.project(["b"])
        assert proj.column_names == ("b",)

    def test_with_columns(self):
        t = Table({"a": np.arange(3)})
        t2 = t.with_columns({"b": np.arange(3) * 2})
        assert t2.column_names == ("a", "b")
        with pytest.raises(EngineError):
            t2.with_columns({"a": np.arange(3)})

    def test_evaluate_predicates(self):
        t = Table({"a": np.array([1, 5, 9]), "b": np.array([2, 2, 7])})
        assert t.count(col("a") >= 5) == 2
        assert t.count((col("a") >= 5).conjoin(col("b") == 2)) == 1
        assert t.count(DNFPredicate.true()) == 3
        assert t.count(DNFPredicate.false()) == 0
        # predicate on a missing column never matches
        assert t.count(col("zzz") >= 0) == 0

    def test_row_bounds(self):
        t = Table({"a": np.arange(3)})
        with pytest.raises(EngineError):
            t.row(3)

    def test_missing_column(self):
        t = Table({"a": np.arange(3)})
        with pytest.raises(EngineError):
            t.column("b")


# ---------------------------------------------------------------------- #
# Database
# ---------------------------------------------------------------------- #
class TestDatabase:
    def test_attach_validates_columns(self, toy_schema):
        db = Database(toy_schema)
        with pytest.raises(EngineError):
            db.attach("S", Table({"S_pk": np.arange(3)}))  # missing A, B

    def test_dynamic_attachment(self, toy_schema):
        db = Database(toy_schema)
        calls = []

        def factory():
            calls.append(1)
            return Table({"T_pk": np.arange(1, 4), "C": np.array([1, 2, 3])}, name="T")

        db.attach_dynamic("T", factory)
        assert db.is_dynamic("T")
        table = db.table("T")
        assert table.num_rows == 3
        assert not db.is_dynamic("T")
        db.table("T")
        assert len(calls) == 1  # factory invoked only once

    def test_missing_table(self, toy_schema):
        db = Database(toy_schema)
        with pytest.raises(EngineError):
            db.table("R")

    def test_dump_and_load_roundtrip(self, toy_schema, toy_database, tmp_path):
        paths = toy_database.dump(tmp_path)
        assert set(paths) == {"R", "S", "T"}
        loaded = Database.load(toy_schema, tmp_path)
        for name in ("R", "S", "T"):
            original = toy_database.table(name)
            copy = loaded.table(name)
            assert copy.num_rows == original.num_rows
            for column in original.column_names:
                assert np.array_equal(copy.column(column), original.column(column))

    def test_row_counts_and_bytes(self, toy_database):
        counts = toy_database.row_counts()
        assert counts["R"] == 80_000
        assert toy_database.total_rows() == sum(counts.values())
        assert toy_database.nbytes() > 0


# ---------------------------------------------------------------------- #
# Executor on the paper's Figure 1 scenario
# ---------------------------------------------------------------------- #
class TestExecutorToyScenario:
    def _figure1_query(self):
        return Query(
            query_id="fig1",
            root="R",
            relations=("R", "S", "T"),
            filters={
                "S": col("A").between(20, 60),
                "T": col("C").between(2, 3),
            },
        )

    def test_annotated_cardinalities_match_figure_1c(self, toy_database):
        result = Executor(toy_database).execute(self._figure1_query())
        plan = result.plan
        assert result.table.num_rows == 30_000
        cardinalities = {}
        for node in plan.nodes():
            if isinstance(node, FilterNode):
                cardinalities[f"filter:{node.relation}"] = node.cardinality
            elif isinstance(node, JoinNode):
                cardinalities[f"join:{node.parent_relation}"] = node.cardinality
            elif isinstance(node, ScanNode):
                cardinalities[f"scan:{node.relation}"] = node.cardinality
        assert cardinalities["scan:R"] == 80_000
        assert cardinalities["scan:S"] == 700
        assert cardinalities["scan:T"] == 1_500
        assert cardinalities["filter:S"] == 400
        assert cardinalities["filter:T"] == 900
        assert cardinalities["join:S"] == 50_000
        assert cardinalities["join:T"] == 30_000

    def test_join_carries_parent_attributes(self, toy_database):
        result = Executor(toy_database).execute(self._figure1_query())
        assert result.table.has_column("A")
        assert result.table.has_column("C")
        # every surviving row satisfies both dimension filters
        assert result.table.count(col("A").between(20, 60)) == result.table.num_rows
        assert result.table.count(col("C").between(2, 3)) == result.table.num_rows

    def test_plan_pretty_rendering(self, toy_database):
        plan = Executor(toy_database).execute(self._figure1_query()).plan
        text = plan.pretty()
        assert "Join" in text and "Filter" in text and "rows=30000" in text

    def test_single_relation_query(self, toy_database):
        query = Query(query_id="q", root="S", relations=("S",),
                      filters={"S": col("A").between(20, 60)})
        result = Executor(toy_database).execute(query)
        assert result.plan.output_cardinality() == 400

    def test_unfiltered_join_preserves_fact_rows(self, toy_database):
        query = Query(query_id="q", root="R", relations=("R", "S"))
        result = Executor(toy_database).execute(query)
        assert result.plan.output_cardinality() == 80_000
